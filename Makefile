# Development targets.  Tiers:
#   lint        tier-0: project static analysis (rules LNT001-LNT005)
#   test        tier-1: the unit/integration suite under tests/
#   bench-smoke tier-2: hot-path perf smoke gated on benchmarks/BENCH_hotpaths.json
#   bench       the full pytest benchmark suite (paper tables/figures)
#   load-smoke  scale-out gate: 4-worker sharded pool under Zipf load +
#               chaos must hold its SLOs (zero errors, p99, rung budget)
#   proc-smoke  process-isolation gate: SIGKILL/hang chaos against a
#               4-worker *subprocess* pool with supervision must end
#               with zero errors and every victim respawned

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench bench-smoke bench-hotpaths baseline train-resume train-fused-smoke serve-smoke load-smoke proc-smoke obs-smoke retrieval-smoke concurrency-smoke

lint:
	$(PYTHON) -m repro.lint src tests benchmarks examples

test: lint
	$(PYTHON) -m pytest -x -q

# Concurrency gate: the whole-program lock-discipline pass
# (LNT006-LNT010) must exit 0 over src/, and the threaded test subset
# must run clean under the lockset race/deadlock sanitizer.
concurrency-smoke:
	$(PYTHON) -m repro.lint --concurrency src
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -q \
		tests/testing/test_lockset.py tests/serve/test_concurrency.py \
		tests/perf/test_thread_safety.py tests/analysis

bench-smoke:
	$(PYTHON) -m repro.bench smoke

bench-hotpaths:
	$(PYTHON) -m pytest benchmarks/bench_hotpaths.py -q -s

baseline:
	$(PYTHON) -m repro.bench smoke --update-baseline

bench:
	$(PYTHON) -m pytest benchmarks -q -s

# Checkpoint/resume smoke: train 4 epochs with snapshots, then resume the
# same run from the newest snapshot and extend it to 8 epochs.
train-resume:
	rm -rf .ckpt-smoke
	$(PYTHON) -m repro run --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 4 --batch-size 256 \
		--checkpoint-dir .ckpt-smoke --checkpoint-every 2
	$(PYTHON) -m repro run --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 8 --batch-size 256 \
		--checkpoint-dir .ckpt-smoke --resume
	rm -rf .ckpt-smoke

# Training-at-speed smoke: the fused + data-parallel execution path
# must train end to end and stay bit-identical to the serial eager
# loop.  The differential subset proves the bits; the CLI run proves
# the flags wire through.  Hard wall-clock timeouts so a barrier
# regression cannot hang CI.
train-fused-smoke:
	timeout 600 $(PYTHON) -m pytest -q \
		tests/nn/test_fusion_diff.py tests/train/test_dp_equivalence.py
	timeout 120 $(PYTHON) -m repro run --dataset hetrec-del \
		--method BPRMF --scale 0.02 --epochs 2 --batch-size 256 \
		--fused --dp-workers 2

# Serving smoke: train a tiny model, answer a request stream with crash
# and latency chaos injected mid-run, and fail unless every request was
# answered (degraded, never erroring) and the breaker opened + recovered.
# The second run serves through the cluster-routed retrieval tier and
# fails unless indexed answers were actually served.
serve-smoke:
	$(PYTHON) -m repro.serve --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 2 --batch-size 256 \
		--requests 40 --deadline-ms 50 --chaos
	$(PYTHON) -m repro.serve --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 2 --batch-size 256 \
		--requests 40 --deadline-ms 50 --retrieval --n-probe 2

# Scale-out load smoke: train a tiny model, fan it out over a 4-worker
# sharded pool (jump-hash routing + per-worker micro-batching), and
# drive a seeded Zipf trace through it while a worker crash and a
# scoring latency spike are armed mid-run.  Fails unless every request
# is answered (zero errors), p99 stays inside the SLO, and the
# degradation-rung budget holds; the run's operating point is written
# to a scratch BENCH file to exercise the bench-out path end to end.
load-smoke:
	$(PYTHON) -m repro.serve --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 2 --batch-size 256 \
		--workers 4 --rps 400 --requests 240 --chaos \
		--bench-out .load-smoke-bench.json
	rm -f .load-smoke-bench.json

# Process-isolation smoke: the SIGKILL chaos acceptance suite — a Zipf
# trace against a 4-worker pool of forked subprocesses while workers
# are SIGKILL'd and stalled mid-run.  Fails unless the run ends with
# zero errors, every victim is respawned by the supervisor (or
# circuit-disabled), and the supervision counters export cleanly.  The
# hard wall-clock timeout guards against a supervision regression
# turning into a hung CI job.
proc-smoke:
	timeout 300 $(PYTHON) -m pytest tests/serve/test_proc_load.py -q
	timeout 120 $(PYTHON) -m repro.serve --dataset hetrec-del \
		--method BPRMF --scale 0.02 --epochs 2 --batch-size 256 \
		--backend process --workers 4 --rps 400 --requests 240 --chaos

# Retrieval smoke: build a cluster-routed index over a small catalogue
# and assert the correctness spine — full-probe routing reproduces exact
# evaluation, recall is monotone in n_probe, cold users get candidates,
# thin shortlists escalate, and the index round-trips through a
# checkpoint directory.
retrieval-smoke:
	$(PYTHON) -m repro.retrieval smoke

# Observability smoke: run a 1-epoch traced training, then prove the
# artifacts are machine-readable — the trace renders through the report
# CLI and the Prometheus exposition parses back.
obs-smoke:
	rm -rf .obs-smoke && mkdir -p .obs-smoke
	$(PYTHON) -m repro run --dataset hetrec-del --method BPRMF \
		--scale 0.02 --epochs 1 --batch-size 256 \
		--trace-out .obs-smoke/trace.jsonl \
		--metrics-out .obs-smoke/metrics.prom
	$(PYTHON) -m repro.obs report .obs-smoke/trace.jsonl \
		--metrics .obs-smoke/metrics.prom
	rm -rf .obs-smoke
