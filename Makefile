# Development targets.  Tiers:
#   test        tier-1: the unit/integration suite under tests/
#   bench-smoke tier-2: hot-path perf smoke gated on benchmarks/BENCH_hotpaths.json
#   bench       the full pytest benchmark suite (paper tables/figures)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-hotpaths baseline

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m repro.bench smoke

bench-hotpaths:
	$(PYTHON) -m pytest benchmarks/bench_hotpaths.py -q -s

baseline:
	$(PYTHON) -m repro.bench smoke --update-baseline

bench:
	$(PYTHON) -m pytest benchmarks -q -s
