#!/usr/bin/env python3
"""Quickstart: train L-IMCAT on a small dataset and recommend items.

Walks the full public API end to end:

1. generate a calibrated synthetic dataset (HetRec-Del preset);
2. split interactions 7:1:2 (the paper's protocol);
3. build a LightGCN backbone and wrap it with IMCAT;
4. train with the two-phase schedule (pre-train, then activate the
   self-supervised tag clustering);
5. evaluate Recall@20 / NDCG@20 on the test set and print the top-10
   recommendations for a sample user.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.eval import Evaluator, rank_items
from repro.models import LightGCN


def main() -> None:
    # 1. Data: a scaled-down HetRec-Delicious with planted intents.
    dataset = generate_preset("hetrec-del", scale=0.12, seed=7)
    print(f"dataset: {dataset}")

    # 2. Per-user 7:1:2 split.
    split = split_dataset(dataset, seed=7)
    print(
        f"split: train={split.train.num_interactions} "
        f"valid={split.valid.num_interactions} "
        f"test={split.test.num_interactions}"
    )

    # 3. Backbone + IMCAT wrapper.
    rng = np.random.default_rng(7)
    backbone = LightGCN(
        dataset.num_users,
        dataset.num_items,
        (split.train.user_ids, split.train.item_ids),
        embed_dim=32,
        rng=rng,
    )
    config = IMCATConfig(num_intents=4, pretrain_epochs=5, delta=0.7)
    model = IMCAT(backbone, dataset, split.train, config, rng=rng)
    print(f"model parameters: {model.num_parameters():,}")

    # 4. Two-phase training with early stopping on validation Recall@20.
    trainer = IMCATTrainer(
        model,
        split,
        IMCATTrainConfig(epochs=60, batch_size=512, eval_every=5, patience=4,
                         verbose=True),
    )
    result = trainer.fit()
    print(
        f"training: best valid Recall@20={result.best_metric:.4f} at "
        f"epoch {result.best_epoch} ({result.wall_time:.1f}s)"
    )

    # 5. Test evaluation + a sample recommendation list.
    evaluator = Evaluator(
        split.train, split.test, top_n=(10, 20), metrics=("recall", "ndcg")
    )
    test_result = evaluator.evaluate(model)
    print(f"test: {test_result.summary()}")

    user = int(evaluator.eval_users[0])
    scores = model.all_scores(np.array([user]))[0]
    train_items = set(split.train.items_of_user()[user].tolist())
    top10 = rank_items(scores, train_items, 10)
    held_out = set(split.test.items_of_user()[user].tolist())
    marks = ["HIT " if item in held_out else "     " for item in top10]
    print(f"\ntop-10 recommendations for user {user}:")
    for rank, (item, mark) in enumerate(zip(top10, marks), start=1):
        print(f"  {rank:2d}. item {item:5d}  {mark}")


if __name__ == "__main__":
    main()
