#!/usr/bin/env python3
"""Intent discovery on a restaurant scenario (the paper's Fig. 1/2 story).

The paper motivates IMCAT with restaurant recommendation: a user may
visit a restaurant for its *taste*, its *service*, its *price*, or its
*ambience* — distinct intents that should map to distinct tag clusters.

This example builds a synthetic restaurant dataset whose tag vocabulary
is organised into exactly those four named families, trains B-IMCAT with
K=4 intents, and then inspects:

- which named tags the self-supervised clustering groups together
  (cluster purity against the known families);
- the per-intent relatedness weights ``M_{j,k}`` of a few restaurants
  (Eq. 9), i.e. "this place is mostly about taste".

Run:  python examples/restaurant_intents.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.core.alignment import relatedness_weights
from repro.data import SyntheticConfig, generate, split_dataset
from repro.models import BPRMF

TAG_FAMILIES = {
    0: ["delicious", "yummy", "amazing-dessert", "tasty", "great-menu",
        "fresh", "flavourful", "juicy", "savory", "crispy"],
    1: ["friendly-waiter", "feel-at-home", "fast-service", "attentive",
        "welcoming", "helpful-staff", "quick-seating", "polite",
        "responsive", "caring"],
    2: ["cheap", "good-value", "affordable", "happy-hour", "big-portions",
        "fair-prices", "free-refills", "student-deal", "coupons",
        "lunch-special"],
    3: ["cozy", "romantic", "nice-view", "quiet", "live-music",
        "candle-light", "garden-seating", "modern-decor", "rooftop",
        "fireplace"],
}
FAMILY_NAMES = {0: "taste", 1: "service", 2: "price", 3: "ambience"}


def main() -> None:
    num_factors = 4
    tags_per_family = 10
    config = SyntheticConfig(
        name="restaurants",
        num_users=250,
        num_items=500,
        num_tags=num_factors * tags_per_family,
        num_factors=num_factors,
        mean_user_degree=18,
        mean_item_tags=4,
        user_concentration=0.15,  # focused users: 1-2 intents each
        tag_offtopic=0.08,
    )
    dataset, truth = generate(config, seed=21, return_ground_truth=True)
    # Name every tag by its ground-truth family for readability.
    tag_names = {}
    counters = {f: 0 for f in range(num_factors)}
    for tag in range(dataset.num_tags):
        family = truth.tag_factors[tag]
        tag_names[tag] = TAG_FAMILIES[family][counters[family] % tags_per_family]
        counters[family] += 1

    split = split_dataset(dataset, seed=21)
    rng = np.random.default_rng(21)
    backbone = BPRMF(dataset.num_users, dataset.num_items, 32, rng)
    model = IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=4, pretrain_epochs=8, gamma=0.5),
        rng=rng,
    )
    print("training B-IMCAT with K=4 intents on the restaurant dataset...")
    result = IMCATTrainer(
        model, split,
        IMCATTrainConfig(epochs=50, batch_size=512, learning_rate=5e-3,
                         eval_every=5, patience=4),
    ).fit()
    print(f"best valid Recall@20: {result.best_metric:.4f}\n")

    # --- inspect the learned tag clusters -----------------------------
    clusters = model.tag_clusters
    print("learned tag clusters (sample of members):")
    for k in range(4):
        members = np.where(clusters == k)[0]
        family_votes = np.bincount(
            truth.tag_factors[members], minlength=4
        )
        dominant = FAMILY_NAMES[int(family_votes.argmax())]
        purity = family_votes.max() / max(len(members), 1)
        sample = ", ".join(tag_names[t] for t in members[:6])
        print(
            f"  cluster {k}: {len(members):2d} tags, "
            f"dominant family={dominant!r} (purity {purity:.0%})"
        )
        print(f"      e.g. {sample}")

    overall = np.mean([
        np.bincount(truth.tag_factors[clusters == k], minlength=4).max()
        / max((clusters == k).sum(), 1)
        for k in range(4) if (clusters == k).sum() > 0
    ])
    print(f"\nmean cluster purity vs. ground-truth families: {overall:.0%} "
          f"(chance = 25%)")

    # --- intent-level explanation of one recommendation ---------------
    from repro.core import cluster_summary, explain_pair

    user = 0
    train_items = set(split.train.items_of_user()[user].tolist())
    top = model.backbone.recommend(user, top_n=3, exclude=train_items)
    print("\nwhy were these recommended to user 0?")
    summaries = {s["intent"]: s["tags"][:3] for s in cluster_summary(model, tag_names)}
    for item in top:
        explanation = explain_pair(model, user, int(item))
        dominant = explanation.dominant_intent
        share = explanation.shares()[dominant]
        print(
            f"  restaurant {int(item)}: dominant intent {dominant} "
            f"({share:.0%} share), cluster tags ~ {summaries[dominant]}"
        )

    # --- per-item intent relatedness (Eq. 9) --------------------------
    tags_of_item = dataset.tags_of_item()
    print("\nintent relatedness M_j (Eq. 9) for three restaurants:")
    shown = 0
    for item in range(dataset.num_items):
        tags = tags_of_item[item]
        if len(tags) < 4:
            continue
        counts = np.bincount(clusters[tags], minlength=4)[None, :]
        weights = relatedness_weights(counts)[0]
        named = ", ".join(tag_names[t] for t in tags[:5])
        profile = ", ".join(
            f"intent{k}={weights[k]:.2f}" for k in range(4)
        )
        print(f"  restaurant {item}: tags=[{named}]")
        print(f"      {profile}")
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
