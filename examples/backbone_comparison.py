#!/usr/bin/env python3
"""Backbone compatibility: a miniature slice of Table II.

IMCAT is model-agnostic (the paper demonstrates it on BPRMF, NeuMF, and
LightGCN).  This example trains all three backbones with and without
IMCAT on one dataset and prints the six-row comparison, plus training
wall times — a small-scale rehearsal of the Table II / Fig. 9 story:
each backbone improves when wrapped, and N-IMCAT approaches GNN-level
quality at lower cost.

Run:  python examples/backbone_comparison.py
"""

from __future__ import annotations

from repro.bench import BenchSettings, METHODS, prepare_split, run_recipe
from repro.bench.tables import format_table


def main() -> None:
    settings = BenchSettings(scale=0.08, embed_dim=32, epochs=50, batch_size=512)
    dataset, split = prepare_split("hetrec-del", settings)
    print(f"dataset: {dataset}\n")

    rows = []
    for method in ("BPRMF", "B-IMCAT", "NeuMF", "N-IMCAT", "LightGCN", "L-IMCAT"):
        print(f"training {method}...")
        cell = run_recipe(METHODS[method], dataset, split, method, settings)
        rows.append(
            [method, 100 * cell.recall, 100 * cell.ndcg, cell.wall_time]
        )

    print()
    print(
        format_table(
            ["Model", "R@20 (%)", "N@20 (%)", "train time (s)"],
            rows,
            title="Backbone comparison (Table II slice, hetrec-del @ 0.08 scale)",
        )
    )
    print(
        "\nExpected shape (paper, full scale): each *-IMCAT row beats its "
        "backbone row and L-IMCAT is best overall.  At this miniature "
        "scale the N-/L-IMCAT gains are within noise of their backbones "
        "and grow with scale and epoch budget (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
