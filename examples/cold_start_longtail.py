#!/usr/bin/env python3
"""Long-tail and cold-start analysis (the paper's Fig. 7 and Fig. 8).

Trains plain LightGCN and L-IMCAT on the same split, then compares:

- per-popularity-group contributions to Recall@20 (items split into
  five equal groups G1..G5 by training degree, Fig. 7);
- Recall@20 restricted to sparse users with fewer than 10 training
  interactions (Fig. 8).

The expected shape, reproduced here: L-IMCAT's advantage concentrates
on the long-tail groups and on cold users, because the ISA module
multiplies the supervision those entities receive.

Run:  python examples/cold_start_longtail.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.eval import (
    Evaluator,
    group_recall_contributions,
    popularity_groups,
    sparse_user_subset,
)
from repro.models import LightGCN, TrainConfig, fit_bpr


def build_lightgcn(dataset, split, seed=13):
    rng = np.random.default_rng(seed)
    return LightGCN(
        dataset.num_users, dataset.num_items,
        (split.train.user_ids, split.train.item_ids),
        embed_dim=32, rng=rng,
    )


def main() -> None:
    dataset = generate_preset("citeulike", scale=0.05, seed=13)
    split = split_dataset(dataset, seed=13)
    print(f"dataset: {dataset}\n")

    print("training plain LightGCN...")
    lightgcn = build_lightgcn(dataset, split)
    fit_bpr(
        lightgcn, split,
        TrainConfig(epochs=60, batch_size=512, eval_every=5, patience=4),
    )

    print("training L-IMCAT...")
    rng = np.random.default_rng(13)
    backbone = build_lightgcn(dataset, split)
    imcat = IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=4, pretrain_epochs=5, delta=0.5),
        rng=rng,
    )
    IMCATTrainer(
        imcat, split,
        IMCATTrainConfig(epochs=60, batch_size=512, eval_every=5, patience=4),
    ).fit()

    # ------------------------------------------------------------------
    # Fig. 7: long-tail group contributions
    # ------------------------------------------------------------------
    groups = popularity_groups(split.train, num_groups=5)
    degrees = split.train.item_degrees()
    print("\nitem groups by training popularity:")
    for g, members in enumerate(groups, start=1):
        print(
            f"  G{g}: {len(members)} items, "
            f"degree range [{degrees[members].min()}, {degrees[members].max()}]"
        )

    print("\nper-group contribution to Recall@20 (Fig. 7):")
    print(f"  {'model':10s} " + " ".join(f"{f'G{g}':>7s}" for g in range(1, 6)))
    results = {}
    for name, model in (("LightGCN", lightgcn), ("L-IMCAT", imcat)):
        contributions = group_recall_contributions(
            model, split.train, split.test, groups, top_n=20
        )
        results[name] = contributions
        row = " ".join(f"{c:7.4f}" for c in contributions)
        print(f"  {name:10s} {row}   (sum={contributions.sum():.4f})")

    tail_gain = results["L-IMCAT"][:3].sum() - results["LightGCN"][:3].sum()
    print(f"\nlong-tail (G1-G3) contribution gain of L-IMCAT: {tail_gain:+.4f}")

    # ------------------------------------------------------------------
    # Fig. 8: cold-start users
    # ------------------------------------------------------------------
    sparse_users = sparse_user_subset(split.train, max_interactions=10)
    print(f"\ncold-start users (<10 training interactions): {len(sparse_users)}")
    if len(sparse_users):
        cold_eval = Evaluator(
            split.train, split.test, top_n=(20,), metrics=("recall",),
            user_subset=sparse_users,
        )
        for name, model in (("LightGCN", lightgcn), ("L-IMCAT", imcat)):
            recall = cold_eval.evaluate(model)["recall@20"]
            print(f"  {name:10s} cold-user Recall@20 = {recall:.4f}")
    else:
        print("  (none at this scale; increase scale or lower the threshold)")


if __name__ == "__main__":
    main()
