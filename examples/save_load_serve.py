#!/usr/bin/env python3
"""Persist a trained model and serve explained recommendations.

The downstream-adoption workflow: train once, save the weights, reload
into a fresh process, and answer top-N queries with intent-level
explanations — without retraining.

Run:  python examples/save_load_serve.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import load_model, save_model
from repro.core import (
    IMCAT,
    IMCATConfig,
    IMCATTrainConfig,
    IMCATTrainer,
    cluster_summary,
    explain_pair,
)
from repro.data import generate_preset, split_dataset
from repro.eval import evaluate_diversity
from repro.models import LightGCN


def build(dataset, split, seed=3):
    rng = np.random.default_rng(seed)
    backbone = LightGCN(
        dataset.num_users, dataset.num_items,
        (split.train.user_ids, split.train.item_ids), 32, rng=rng,
    )
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=4, pretrain_epochs=5), rng=rng,
    )


def main() -> None:
    dataset = generate_preset("hetrec-fm", scale=0.1, seed=3)
    split = split_dataset(dataset, seed=3)
    print(f"dataset: {dataset}")

    # --- train and save ------------------------------------------------
    model = build(dataset, split)
    print("training L-IMCAT...")
    IMCATTrainer(
        model, split,
        IMCATTrainConfig(epochs=40, batch_size=512, eval_every=5, patience=4),
    ).fit()

    path = os.path.join(tempfile.gettempdir(), "imcat_hetrec_fm.npz")
    save_model(model, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"saved to {path} ({size_kb:.0f} KiB)")

    # --- reload into a fresh instance ----------------------------------
    served = build(dataset, split, seed=99)  # different init
    load_model(served, path)
    consistent = np.allclose(
        model.all_scores(np.array([0])), served.all_scores(np.array([0]))
    )
    print(f"reloaded model scores identical: {consistent}")

    # --- serve ----------------------------------------------------------
    user = 3
    train_items = set(split.train.items_of_user()[user].tolist())
    recommendations = served.backbone.recommend(user, top_n=5, exclude=train_items)
    print(f"\ntop-5 for user {user} (with intent attribution):")
    for rank, item in enumerate(recommendations, start=1):
        explanation = explain_pair(served, user, int(item))
        print(
            f"  {rank}. item {int(item):4d}  score={explanation.total_score:+.3f}  "
            f"dominant intent={explanation.dominant_intent} "
            f"(share {explanation.shares().max():.0%})"
        )

    print("\ntag clusters anchoring the intents:")
    for summary in cluster_summary(served, top=4):
        print(f"  intent {summary['intent']}: {summary['size']} tags, "
              f"central: {summary['tags']}")

    report = evaluate_diversity(served, split.train, split.test, top_n=20)
    print(
        f"\nbeyond-accuracy @20: coverage={report.coverage:.2f} "
        f"ILD={report.intra_list_diversity:.2f} "
        f"novelty={report.novelty:.2f} bits "
        f"tag-entropy={report.tag_entropy:.2f} bits"
    )


if __name__ == "__main__":
    main()
