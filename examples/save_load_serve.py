#!/usr/bin/env python3
"""Persist a trained model and serve it through the resilient layer.

The downstream-adoption workflow: train once, save the weights, reload
into a fresh process, and answer top-N queries behind ``repro.serve`` —
deadlines, a circuit breaker, and a degradation ladder — with
intent-level explanations on the live answers.  Midway the example
injects a scoring outage to show the ladder degrade (stale cache, then
popularity) and recover, without a single request erroring.

Run:  python examples/save_load_serve.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import load_model, save_model, testing
from repro.core import (
    IMCAT,
    IMCATConfig,
    IMCATTrainConfig,
    IMCATTrainer,
    cluster_summary,
    explain_pair,
)
from repro.data import generate_preset, split_dataset
from repro.eval import evaluate_diversity
from repro.models import LightGCN
from repro.serve import CircuitBreaker, RecommendationService, RetryPolicy


def build(dataset, split, seed=3):
    rng = np.random.default_rng(seed)
    backbone = LightGCN(
        dataset.num_users, dataset.num_items,
        (split.train.user_ids, split.train.item_ids), 32, rng=rng,
    )
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=4, pretrain_epochs=5), rng=rng,
    )


def show_response(response, served=None):
    print(
        f"  level={response.level:<10s} breaker={response.breaker_state:<9s} "
        f"retries={response.retries} items={response.items.tolist()}"
    )
    if served is not None and response.level == "live":
        for rank, item in enumerate(response.items[:3], start=1):
            explanation = explain_pair(served, response.user, int(item))
            print(
                f"    {rank}. item {int(item):4d}  "
                f"score={explanation.total_score:+.3f}  "
                f"dominant intent={explanation.dominant_intent} "
                f"(share {explanation.shares().max():.0%})"
            )


def main() -> None:
    dataset = generate_preset("hetrec-fm", scale=0.1, seed=3)
    split = split_dataset(dataset, seed=3)
    print(f"dataset: {dataset}")

    # --- train and save ------------------------------------------------
    model = build(dataset, split)
    print("training L-IMCAT...")
    IMCATTrainer(
        model, split,
        IMCATTrainConfig(epochs=40, batch_size=512, eval_every=5, patience=4),
    ).fit()

    path = os.path.join(tempfile.gettempdir(), "imcat_hetrec_fm.npz")
    save_model(model, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"saved to {path} ({size_kb:.0f} KiB)")

    # --- reload into a fresh instance ----------------------------------
    served = build(dataset, split, seed=99)  # different init
    load_model(served, path)
    consistent = np.allclose(
        model.all_scores(np.array([0])), served.all_scores(np.array([0]))
    )
    print(f"reloaded model scores identical: {consistent}")

    # --- serve behind the resilient layer ------------------------------
    service = RecommendationService.from_model(
        served, split.train,
        default_top_n=5,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        breaker=CircuitBreaker(failure_threshold=2, recovery_time=0.2),
    )
    user = 3
    train_items = set(split.train.items_of_user()[user].tolist())

    print(f"\ntop-5 for user {user}, live (with intent attribution):")
    show_response(service.recommend(user, exclude=train_items), served)

    # Simulated outage: every hit on the serve:score fault site raises.
    # The service answers anyway — first from the stale cache (the live
    # response above), and for never-seen users from popularity.
    print("\nscoring outage injected (serve:score armed):")
    with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
        show_response(service.recommend(user, exclude=train_items))
        show_response(service.recommend(user + 1))  # cold: popularity rung
        show_response(service.recommend(user, exclude=train_items))
    print(f"health during outage: {service.health()['status']}")

    time.sleep(0.25)  # let the breaker reach half-open
    print("\noutage over — breaker probes and recovers:")
    show_response(service.recommend(user, exclude=train_items), served)
    health = service.health()
    print(f"health after recovery: {health['status']} "
          f"(breaker={health['breaker']})")

    print("\ntag clusters anchoring the intents:")
    for summary in cluster_summary(served, top=4):
        print(f"  intent {summary['intent']}: {summary['size']} tags, "
              f"central: {summary['tags']}")

    report = evaluate_diversity(served, split.train, split.test, top_n=20)
    print(
        f"\nbeyond-accuracy @20: coverage={report.coverage:.2f} "
        f"ILD={report.intra_list_diversity:.2f} "
        f"novelty={report.novelty:.2f} bits "
        f"tag-entropy={report.tag_entropy:.2f} bits"
    )


if __name__ == "__main__":
    main()
