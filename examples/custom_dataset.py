#!/usr/bin/env python3
"""Bring your own data: TSV files in, trained IMCAT out.

Shows the full adoption path for a dataset that is *not* one of the
seven presets: two tab-separated files (``user item`` interactions and
``item tag`` assignments) are parsed, preprocessed with the paper's
protocol (10-core filtering, tag min-support), split 7:1:2, and used to
train N-IMCAT.  For the demo the TSVs themselves are synthesised, but
the code path is exactly what real files would follow.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import compute_statistics, load_pairs_dataset, split_dataset
from repro.eval import Evaluator
from repro.models import NeuMF


def write_demo_files(directory: str, seed: int = 5) -> tuple[str, str]:
    """Synthesise plausible raw TSVs (stand-ins for your own export)."""
    rng = np.random.default_rng(seed)
    n_users, n_items, n_tags = 120, 200, 40
    interactions_path = os.path.join(directory, "interactions.tsv")
    with open(interactions_path, "w", encoding="utf-8") as handle:
        for user in range(n_users):
            degree = max(int(rng.lognormal(3.2, 0.5)), 20)
            items = rng.choice(n_items, size=min(degree, n_items), replace=False)
            for item in items:
                handle.write(f"{user}\t{item}\n")
    tags_path = os.path.join(directory, "item_tags.tsv")
    with open(tags_path, "w", encoding="utf-8") as handle:
        for item in range(n_items):
            for tag in rng.choice(n_tags, size=4, replace=False):
                handle.write(f"{item}\t{tag}\n")
    return interactions_path, tags_path


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        interactions_path, tags_path = write_demo_files(directory)
        print(f"raw files: {interactions_path}, {tags_path}")

        # Parse + preprocess (rating binarisation is skipped for implicit
        # pairs; 10-core filtering and tag min-support apply).
        dataset = load_pairs_dataset(interactions_path, tags_path, "my-shop")
        print(f"after preprocessing: {dataset}")
        print("Table I row:", compute_statistics(dataset).as_row())

        split = split_dataset(dataset, seed=5)
        rng = np.random.default_rng(5)
        backbone = NeuMF(dataset.num_users, dataset.num_items, 32, rng=rng)
        model = IMCAT(
            backbone, dataset, split.train,
            IMCATConfig(num_intents=4, pretrain_epochs=5), rng=rng,
        )
        print("\ntraining N-IMCAT on the custom dataset...")
        result = IMCATTrainer(
            model, split,
            IMCATTrainConfig(epochs=30, batch_size=512, eval_every=5,
                             patience=4),
        ).fit()
        evaluator = Evaluator(
            split.train, split.test, top_n=(10, 20), metrics=("recall", "ndcg")
        )
        print(f"validation best: {result.best_metric:.4f}")
        print(f"test: {evaluator.evaluate(model).summary()}")


if __name__ == "__main__":
    main()
