"""Model persistence: save/load parameter state as compressed ``.npz``.

Works with any :class:`repro.nn.Module` via its ``state_dict`` —
backbones, baselines, and the full IMCAT wrapper.  IMCAT's non-parameter
training state (hard tag clusters, clustering-phase flag) is stored
alongside so a reloaded model scores identically and can resume
cluster-dependent behaviour.
"""

from __future__ import annotations

import os

import numpy as np

from .nn import Module

_META_PREFIX = "__meta__"


def save_model(model: Module, path: str) -> None:
    """Serialise ``model``'s parameters (and IMCAT state) to ``path``."""
    payload = dict(model.state_dict())
    if hasattr(model, "tag_clusters"):
        payload[f"{_META_PREFIX}tag_clusters"] = np.asarray(model.tag_clusters)
        payload[f"{_META_PREFIX}clustering_active"] = np.asarray(
            getattr(model, "clustering_active", False)
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model``.

    The module must have the same architecture (same parameter names
    and shapes).  Returns the model for chaining.
    """
    if not path.endswith(".npz") and not os.path.exists(path):
        path = f"{path}.npz"
    with np.load(path) as archive:
        state = {}
        for key in archive.files:
            if key.startswith(_META_PREFIX):
                continue
            state[key] = archive[key]
        model.load_state_dict(state)
        clusters_key = f"{_META_PREFIX}tag_clusters"
        if clusters_key in archive.files and hasattr(model, "tag_clusters"):
            model.tag_clusters = archive[clusters_key].astype(np.int64)
            model.clustering_active = bool(
                archive[f"{_META_PREFIX}clustering_active"]
            )
    return model
