"""Model persistence: save/load parameter state as compressed ``.npz``.

Works with any :class:`repro.nn.Module` via its ``state_dict`` —
backbones, baselines, and the full IMCAT wrapper.  Non-parameter state
that inference needs rides along: IMCAT's hard tag clusters and
clustering-phase flag, plus any model's ``persistent_buffers()`` (e.g.
RippleNet's sampled ripple sets).  After loading, models that derive
caches from their parameters (KGAT attention, DGCF intent routing) are
refreshed so a reloaded model scores identically to the saved one.

Paths are normalised once: both helpers append the ``.npz`` suffix if
missing and tolerate callers that append it twice (``np.savez`` would
otherwise silently write ``name.npz`` while a later
``load_model(model, "name.npz.npz")`` missed it).  Full training-state
snapshots (optimizer, RNG streams, counters) live in :mod:`repro.ckpt`;
this module intentionally stores only what inference needs.
"""

from __future__ import annotations

import os

import numpy as np

from .nn import Module

_META_PREFIX = "__meta__"
_BUFFER_PREFIX = "__buf__"
_SUFFIX = ".npz"


def _normalize_path(path: str) -> str:
    """Collapse repeated ``.npz`` suffixes and ensure exactly one."""
    while path.endswith(_SUFFIX + _SUFFIX):
        path = path[: -len(_SUFFIX)]
    if not path.endswith(_SUFFIX):
        path = f"{path}{_SUFFIX}"
    return path


def _resolve_existing(path: str) -> str:
    """The on-disk file for a load request, however the caller spelled it.

    Tries the normalised name first (what :func:`save_model` writes),
    then the caller's literal spelling, so pre-normalisation archives
    saved under bare names keep loading.
    """
    normalized = _normalize_path(path)
    if os.path.exists(normalized):
        return normalized
    if os.path.exists(path):
        return path
    return normalized  # let np.load raise a precise FileNotFoundError


def save_model(model: Module, path: str) -> str:
    """Serialise ``model``'s parameters (and IMCAT state) to ``path``.

    Returns the normalised path actually written (always one ``.npz``
    suffix, regardless of how the caller spelled it).
    """
    payload = dict(model.state_dict())
    if hasattr(model, "tag_clusters"):
        payload[f"{_META_PREFIX}tag_clusters"] = np.asarray(model.tag_clusters)
        payload[f"{_META_PREFIX}clustering_active"] = np.asarray(
            getattr(model, "clustering_active", False)
        )
    if hasattr(model, "persistent_buffers"):
        for name, array in model.persistent_buffers().items():
            payload[f"{_BUFFER_PREFIX}{name}"] = np.asarray(array)
    path = _normalize_path(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model``.

    The module must have the same architecture (same parameter names
    and shapes).  Returns the model for chaining.
    """
    with np.load(_resolve_existing(path)) as archive:
        state = {}
        buffers = {}
        for key in archive.files:
            if key.startswith(_META_PREFIX):
                continue
            if key.startswith(_BUFFER_PREFIX):
                buffers[key[len(_BUFFER_PREFIX):]] = archive[key]
                continue
            state[key] = archive[key]
        model.load_state_dict(state)
        if hasattr(model, "load_persistent_buffers"):
            model.load_persistent_buffers(buffers)
        elif buffers:
            raise ValueError(
                f"archive carries buffers {sorted(buffers)} but "
                f"{type(model).__name__} cannot load them"
            )
        clusters_key = f"{_META_PREFIX}tag_clusters"
        if clusters_key in archive.files and hasattr(model, "tag_clusters"):
            model.tag_clusters = archive[clusters_key].astype(np.int64)
            model.clustering_active = bool(
                archive[f"{_META_PREFIX}clustering_active"]
            )
    if hasattr(model, "refresh_epoch"):
        # Rebuild parameter-derived caches (KGAT attention adjacency,
        # DGCF intent channels) from the loaded parameters.
        model.refresh_epoch(0)
    return model
