"""Exporters: JSONL trace/metric dumps and Prometheus text exposition.

Two wire formats cover the consumers we care about:

- **JSONL** — one JSON object per line; traces are span records
  (:meth:`repro.obs.Tracer.records`), metric dumps are a single
  snapshot record.  Greppable, appendable, diffable.
- **Prometheus text exposition format** — the ``# HELP`` / ``# TYPE`` /
  sample-line format every Prometheus-compatible scraper ingests.
  :func:`parse_prometheus` reads it back, which is how the round-trip
  test and the ``obs-smoke`` CI gate validate exported output without a
  Prometheus binary in the container.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots, dashes, and slashes become
underscores.

Crash safety: every export lands via :func:`atomic_write_text` —
content is written to a temp file in the destination directory,
flushed, fsynced, then :func:`os.replace`'d over the target.  A process
SIGKILL'd mid-export (exactly what the chaos-under-load suite does to
serving workers) can therefore never leave a torn metrics or trace
file: readers see the previous complete export or the new one, nothing
in between.  The JSONL appender reads-heals-rewrites through the same
path, dropping a torn trailing line left by an unclean writer.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from typing import Dict, List, Optional

from .metrics import MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render every instrument in ``registry`` as exposition text.

    Counters gain a ``_total`` suffix per the Prometheus naming
    convention; histograms expand to ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``.
    """
    snap = registry.snapshot()
    lines: List[str] = []

    def qualify(name: str) -> str:
        return sanitize_metric_name(f"{prefix}_{name}" if prefix else name)

    for name, value in snap["counters"].items():
        metric = qualify(name) + "_total"
        lines.append(f"# HELP {metric} Monotonic counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snap["gauges"].items():
        metric = qualify(name)
        lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in snap["histograms"].items():
        metric = qualify(name)
        lines.append(f"# HELP {metric} Histogram {name!r}.")
        lines.append(f"# TYPE {metric} histogram")
        for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {count}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse exposition text back into ``{metric: {type, samples}}``.

    ``samples`` maps a frozen label string (``'le="0.5"'`` or ``""``)
    to the float value.  Raises ``ValueError`` on malformed lines, so
    the smoke gate genuinely validates the export.
    """
    metrics: Dict[str, dict] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = match.group("name")
        value_text = match.group("value")
        try:
            value = (
                float("inf") if value_text == "+Inf" else float(value_text)
            )
        except ValueError as err:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from err
        # A histogram's series share the base name's declared type.
        base = re.sub(r"_(bucket|sum|count|total)$", "", name)
        family = metrics.setdefault(
            name if name in types else base,
            {"type": None, "samples": {}},
        )
        family["samples"][f"{name}{{{match.group('labels') or ''}}}"] = value
    for name, family in metrics.items():
        family["type"] = types.get(name)
    if not metrics:
        raise ValueError("no metric samples found")
    return metrics


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` all-or-nothing.

    Temp file in the same directory (so the final rename never crosses
    a filesystem), explicit flush + fsync (the data is durable before
    it becomes visible), then ``os.replace`` (atomic on POSIX).  On any
    failure the temp file is removed and the original ``path`` — if one
    existed — is untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            tmp_path = ""  # already gone; nothing left to clean up
        raise


def write_metrics(
    registry: MetricsRegistry, path: str, prefix: str = "repro"
) -> None:
    """Write ``registry`` to ``path`` as Prometheus exposition text
    (atomically — a crash mid-export cannot tear the file)."""
    atomic_write_text(path, to_prometheus(registry, prefix=prefix))


def write_metrics_jsonl(registry: MetricsRegistry, path: str) -> None:
    """Append one JSON snapshot line of ``registry`` to ``path``.

    The append is read-heal-rewrite through :func:`atomic_write_text`:
    existing complete lines are kept, a torn trailing line (an unclean
    writer died mid-append) is dropped, and the new snapshot goes on
    the end — so the file always parses line-by-line.
    """
    lines: List[str] = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                candidate = line.rstrip("\n")
                if not candidate.strip():
                    continue
                try:
                    json.loads(candidate)
                except json.JSONDecodeError:
                    continue  # torn tail from an unclean writer: heal it
                lines.append(candidate)
    lines.append(json.dumps(registry.snapshot(), sort_keys=True))
    atomic_write_text(path, "\n".join(lines) + "\n")


def read_trace(path: str) -> List[dict]:
    """Load span records from a JSONL trace file.

    Raises ``ValueError`` when any line is not a span record (missing
    ``span_id``/``name``), so trace validation doubles as parsing.
    """
    records: List[dict] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {err}"
                ) from err
            if not isinstance(record, dict) or "span_id" not in record \
                    or "name" not in record:
                raise ValueError(
                    f"{path}:{lineno}: not a span record: {line[:80]!r}"
                )
            records.append(record)
    return records


def validate_trace(records: List[dict]) -> Optional[str]:
    """Structural check of a loaded trace; returns an error or ``None``.

    Every ``parent_id`` must reference a span in the file and ids must
    be unique — the invariants the report renderer depends on.
    """
    seen = set()
    for record in records:
        if record["span_id"] in seen:
            return f"duplicate span_id {record['span_id']}"
        seen.add(record["span_id"])
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and parent not in seen:
            return f"span {record['span_id']} has unknown parent {parent}"
    return None
