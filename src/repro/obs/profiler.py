"""Opt-in sampling profiler: where does the interpreter actually sit?

:class:`SamplingProfiler` runs a daemon thread that periodically grabs
the target thread's stack via :func:`sys._current_frames` and
aggregates collapsed stacks (``module:func;module:func;...``) into
sample counts — the classic flamegraph input — plus per-function leaf
("self") counts for a quick top-N table.

Zero instrumentation cost in the profiled code: nothing is wrapped, no
tracing hook is installed (unlike :mod:`cProfile`, which slows NumPy
dispatch loops noticeably).  Accuracy is statistical: with the default
5ms interval a 2-second run collects ~400 samples, plenty to rank hot
phases.  It is off unless explicitly started — the opt-in profiling
hook of the observability layer (``python -m repro run --profile``).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _Counter
from typing import Dict, List, Optional, Tuple

from ..concurrency import new_lock, shared_state


def _collapse(frame, limit: int = 64) -> Tuple[str, str]:
    """(collapsed stack root->leaf, leaf function) for one frame."""
    parts: List[str] = []
    while frame is not None and len(parts) < limit:
        code = frame.f_code
        module = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    leaf = parts[-1] if parts else "?"
    return ";".join(parts), leaf


@shared_state(guard="_lock", exempt=("_stop",))
class SamplingProfiler:
    """Periodic stack sampler for one thread.

    Args:
        interval: seconds between samples.
        target_thread_id: thread to sample (defaults to the thread that
            calls :meth:`start`).

    Usage::

        with SamplingProfiler(interval=0.005) as prof:
            expensive_work()
        print(prof.format_top())

    Thread safety: lifecycle state (``_target``, ``_thread``) and the
    sample aggregates share one lock; the stop :class:`threading.Event`
    synchronises itself (hence exempt).  ``stop`` grabs the thread
    handle under the lock but joins it *outside* — the sampler thread
    takes the same lock to record each sample, so joining while holding
    it would deadlock (the shape LNT008 exists to catch).
    """

    def __init__(
        self,
        interval: float = 0.005,
        target_thread_id: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self._target = target_thread_id
        self._stacks: _Counter = _Counter()
        self._leaves: _Counter = _Counter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = new_lock("obs.SamplingProfiler")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        # The started-check and the lazy target pin must be atomic with
        # the thread-slot write: two racing start() calls could both see
        # "not started" and spawn two samplers (and the second caller's
        # thread id would silently clobber the first's target).
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("profiler already started")
            if self._target is None:
                self._target = threading.get_ident()
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, name="repro-obs-profiler", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        # Join outside the lock: the sampler thread needs it to record
        # its final sample before exiting.
        thread.join(timeout=2.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack, leaf = _collapse(frame)
            with self._lock:
                self._samples += 1
                self._stacks[stack] += 1
                self._leaves[leaf] += 1

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """Hottest leaf functions by sample count."""
        with self._lock:
            return self._leaves.most_common(n)

    def collapsed(self) -> Dict[str, int]:
        """Collapsed-stack sample counts (flamegraph.pl input format)."""
        with self._lock:
            return dict(self._stacks)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "interval": self.interval,
                "samples": self._samples,
                "leaves": dict(self._leaves),
                "stacks": dict(self._stacks),
            }

    def format_top(self, n: int = 10) -> str:
        """Text table of the hottest functions."""
        total = max(self.samples, 1)
        lines = [f"sampling profile ({self.samples} samples "
                 f"@ {1000 * self.interval:.1f}ms)", ""]
        for leaf, count in self.top(n):
            lines.append(f"  {100.0 * count / total:5.1f}%  {leaf}")
        if self.samples == 0:
            lines.append("  (no samples collected — run too short?)")
        return "\n".join(lines)


def profile(interval: float = 0.005) -> SamplingProfiler:
    """Build an (unstarted) profiler; sugar for ``with profile():``."""
    return SamplingProfiler(interval=interval)
