"""Unified observability: tracing, metrics export, profiling hooks.

The layer every other subsystem reports into:

- :class:`Tracer` / :class:`TraceSpan` — a hierarchical span tree
  (span ids, parent links, wall + CPU time, structured attributes)
  with JSONL export and a near-zero-overhead disabled path;
- :class:`MetricsRegistry` — counters, gauges, and exponential-bucket
  histograms; a drop-in superset of :class:`repro.perf.CounterRegistry`;
- :mod:`repro.obs.export` — JSONL and Prometheus text exposition
  exporters plus parsers (the round-trip the CI smoke validates);
- :class:`SamplingProfiler` — an opt-in periodic stack sampler;
- ``python -m repro.obs report trace.jsonl`` — render a recorded trace
  tree (optionally alongside an exported metrics file).

The trainer, evaluator, serving stack, and checkpoint manager all
accept an explicit ``tracer=``; when omitted they fall back to the
process-global tracer, which is **disabled by default** — enable it
with :func:`enable_tracing` (the ``--trace-out`` CLI flags do this).
A matching process-global :class:`MetricsRegistry` collects gauges and
histograms the same way.
"""

from __future__ import annotations

from typing import Optional

from .export import (
    atomic_write_text,
    parse_prometheus,
    read_trace,
    sanitize_metric_name,
    to_prometheus,
    validate_trace,
    write_metrics,
    write_metrics_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .profiler import SamplingProfiler, profile
from .report import format_metrics_table, render_tree, trace_summary
from .spans import NOOP_SPAN, Tracer, TraceSpan, span_structure

_tracer = Tracer(enabled=False)
_metrics = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless enabled explicitly)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-global tracer; returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def enable_tracing() -> Tracer:
    """Enable (and return) the process-global tracer."""
    _tracer.enabled = True
    return _tracer


def disable_tracing() -> Tracer:
    """Disable the process-global tracer (spans already recorded stay)."""
    _tracer.enabled = False
    return _tracer


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (always live — a gauge set
    costs one lock + dict write, cheap enough to leave unconditional)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _metrics
    previous, _metrics = _metrics, registry
    return previous


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` itself, or the process-global one when ``None``.

    The one-liner every instrumented component calls in ``__init__`` so
    explicit injection (tests) and ambient configuration (CLIs) share a
    code path.
    """
    return tracer if tracer is not None else _tracer


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SamplingProfiler",
    "TraceSpan",
    "Tracer",
    "atomic_write_text",
    "disable_tracing",
    "enable_tracing",
    "exponential_buckets",
    "format_metrics_table",
    "get_metrics",
    "get_tracer",
    "parse_prometheus",
    "profile",
    "read_trace",
    "render_tree",
    "resolve_tracer",
    "sanitize_metric_name",
    "set_metrics",
    "set_tracer",
    "span_structure",
    "to_prometheus",
    "trace_summary",
    "validate_trace",
    "write_metrics",
    "write_metrics_jsonl",
]
