"""``python -m repro.obs`` — inspect recorded observability artifacts.

Commands::

    python -m repro.obs report trace.jsonl
    python -m repro.obs report trace.jsonl --depth 4 --metrics out.prom

``report`` loads a JSONL trace (as written by ``--trace-out`` on the
train/serve CLIs or :meth:`repro.obs.Tracer.export_jsonl`), validates
its structure, and renders the span tree.  With ``--metrics`` it also
parses a Prometheus text exposition file and prints a sample summary —
a non-zero exit on any parse/validation failure is what the
``make obs-smoke`` CI gate relies on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import parse_prometheus, read_trace, render_tree, trace_summary, validate_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="inspect recorded traces and exported metrics",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render a JSONL trace as a span tree"
    )
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="limit the rendered tree to N levels",
    )
    report.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="also parse and summarise a Prometheus text metrics file",
    )
    return parser


def cmd_report(args: argparse.Namespace) -> int:
    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as err:
        print(f"error: cannot read trace: {err}", file=sys.stderr)
        return 1
    problem = validate_trace(records)
    if problem is not None:
        print(f"error: invalid trace: {problem}", file=sys.stderr)
        return 1
    summary = trace_summary(records)
    print(
        f"trace: {summary['spans']} spans, {summary['roots']} root(s) "
        f"{summary['root_names']}, total wall {summary['total_wall']:.3f}s, "
        f"cpu {summary['total_cpu']:.3f}s"
    )
    print()
    print(render_tree(records, max_depth=args.depth))
    if args.metrics is not None:
        try:
            with open(args.metrics, encoding="utf-8") as handle:
                families = parse_prometheus(handle.read())
        except (OSError, ValueError) as err:
            print(f"error: cannot parse metrics: {err}", file=sys.stderr)
            return 1
        samples = sum(len(f["samples"]) for f in families.values())
        print()
        print(
            f"metrics: {len(families)} families, {samples} samples "
            f"({args.metrics})"
        )
        for name, family in sorted(families.items()):
            kind = family["type"] or "untyped"
            print(f"  {name:<44} {kind:<10} {len(family['samples'])} sample(s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {"report": cmd_report}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
