"""Counters, gauges, and exponential-bucket histograms.

:class:`MetricsRegistry` is the metric store behind the observability
layer.  It subsumes :class:`repro.perf.CounterRegistry`: the full
counter API (``add`` / ``get`` / ``counts`` / ``rate`` / ``as_dict`` /
``merge`` / ``reset``) is implemented with identical semantics, so a
``MetricsRegistry`` can be passed anywhere the trainer, evaluator, or
serving stack expects a plain counter registry — while also collecting
gauges (last-value metrics such as loss or cluster drift) and
histograms (latency distributions) for the Prometheus and JSONL
exporters in :mod:`repro.obs.export`.

All mutations are lock-protected, matching the thread-safety contract
the serving stack needs under concurrent traffic.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence

from ..concurrency import new_lock, shared_state


def exponential_buckets(
    start: float = 0.001, factor: float = 2.0, count: int = 14
) -> List[float]:
    """Upper bounds ``start * factor**i`` for ``i in range(count)``.

    The default ladder spans 1ms to ~8s, a good fit for both per-batch
    training phases and per-request serving latencies.
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [start * factor**i for i in range(count)]


@shared_state(guard="_lock")
class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self.value += amount


@shared_state(guard="_lock")
class Gauge:
    """A last-value metric that can go up and down."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value: float = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            self.updates += 1


@shared_state(guard="_lock")
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; a final
    implicit ``+Inf`` bucket equals ``count``.
    """

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self._lock = lock
        self.bounds = sorted(buckets) if buckets else exponential_buckets()
        self._counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1

    def bucket_counts(self) -> List[int]:
        """Cumulative counts per bound (excluding the +Inf bucket)."""
        with self._lock:
            return list(self._counts)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket upper bounds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = math.ceil(q * self.count)
            for bound, cum in zip(self.bounds, self._counts):
                if cum >= target:
                    return bound
            return float("inf")


@shared_state(guard="_lock")
class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock.

    Counter-compatible with :class:`repro.perf.CounterRegistry` so it
    drops into every existing ``counters=`` parameter unchanged.

    The registry shares its one lock with every instrument it creates:
    instrument mutations and registry snapshots can never interleave,
    and there is a single lock order by construction.
    """

    def __init__(self) -> None:
        self._lock = new_lock("obs.MetricsRegistry")
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name, self._lock)
        return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge(name, self._lock)
        return found

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(
                    name, self._lock, buckets
                )
        return found

    # ------------------------------------------------------------------
    # CounterRegistry-compatible surface
    # ------------------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (CounterRegistry semantics)."""
        self.counter(name).inc(int(amount))

    def get(self, name: str) -> int:
        with self._lock:
            found = self._counters.get(name)
            return 0 if found is None else found.value

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def rate(self, name: str, seconds: float) -> float:
        """Events per second, 0.0 when no time was spent."""
        return self.get(name) / seconds if seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, int]:
        counts = self.counts()
        return {name: counts[name] for name in sorted(counts)}

    def merge(self, other) -> None:
        """Fold another registry's counters (perf or obs) into this one."""
        for name, amount in other.counts().items():
            self.add(name, amount)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "bounds": list(h.bounds),
                        "bucket_counts": list(h._counts),
                        "count": h.count,
                        "sum": h.sum,
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }

    def absorb_perf(self, counters=None, timers=None) -> None:
        """Fold a :mod:`repro.perf` registry pair into this registry.

        Counters merge by name; each timer scope becomes a histogram
        fed the scope's mean (count times), preserving totals for the
        exporters without requiring per-event retention in perf.
        """
        if counters is not None:
            self.merge(counters)
        if timers is not None:
            for path, stat in timers.stats().items():
                hist = self.histogram(f"perf.{path}")
                for _ in range(stat.count):
                    hist.observe(stat.mean)
