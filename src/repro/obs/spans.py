"""Hierarchical trace spans: who called what, for how long.

A :class:`Tracer` records a tree of :class:`TraceSpan` scopes opened
with :meth:`Tracer.span`.  Each span carries a process-unique id, a
parent link, wall-clock *and* CPU time, and a dict of structured
attributes, so a recorded training run can answer both "where did the
time go" (``python -m repro.obs report``) and "what was the loss /
breaker state / degradation rung inside that scope".

The tracer is **disabled by default** and the disabled path is a single
attribute check returning a shared no-op context manager — cheap enough
to leave the instrumentation calls on the training and serving hot
paths unconditionally (the ``bench_hotpaths`` smoke pins the overhead
below 3%).

Span stacks are tracked per-thread (a serving thread's request spans
never nest under another thread's), while the finished-span list and
the id counter are shared under one lock, so one tracer can absorb a
whole multi-threaded process.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..concurrency import new_lock, shared_state


@dataclass
class TraceSpan:
    """One completed (or still-open) scope in the trace tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_wall: float
    start_cpu: float
    end_wall: Optional[float] = None
    end_cpu: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall(self) -> float:
        """Wall-clock seconds inside the span (0.0 while still open)."""
        return 0.0 if self.end_wall is None else self.end_wall - self.start_wall

    @property
    def cpu(self) -> float:
        """CPU seconds inside the span (0.0 while still open)."""
        return 0.0 if self.end_cpu is None else self.end_cpu - self.start_cpu

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one structured attribute (JSON-safe values only)."""
        self.attributes[key] = value

    def set_attributes(self, **attrs: Any) -> None:
        """Attach several structured attributes at once."""
        self.attributes.update(attrs)

    def as_dict(self) -> dict:
        """JSON-safe record (one line of the JSONL export)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "wall": self.wall,
            "cpu": self.cpu,
            "attributes": dict(self.attributes),
        }

    # context-manager protocol: the tracer hands the span itself to the
    # ``with`` body so callers can set attributes mid-scope.
    def __enter__(self) -> "TraceSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._tracer is not None:
            self._tracer._close(self)

    _tracer: Optional["Tracer"] = field(default=None, repr=False, compare=False)


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer.

    Every method is a no-op, so instrumented code never has to guard
    ``tracer.enabled`` itself.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def set_attributes(self, **attrs: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


@shared_state(guard="_lock", exempt=("_local", "enabled"))
class Tracer:
    """Collects a span tree for one process/run.

    Args:
        enabled: record spans (``False`` makes :meth:`span` a near-free
            no-op).

    The per-thread span stacks live in ``_local`` (no lock needed);
    the finished-span list and the id counter share ``_lock``.
    ``enabled`` is a single boolean flip toggled from the enable/
    disable admin hooks — atomic in CPython — and exempting it keeps
    the disabled fast path lock-free.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = new_lock("obs.Tracer")
        self._local = threading.local()
        self._spans: List[TraceSpan] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """Open a child span of the current thread's active span.

        Returns a context manager yielding the :class:`TraceSpan` (or
        the shared no-op when disabled), so callers can do::

            with tracer.span("epoch", index=3) as span:
                ...
                span.set_attribute("loss", loss)
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = TraceSpan(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_wall=time.perf_counter(),
            start_cpu=time.process_time(),
            attributes=dict(attributes),
        )
        span._tracer = self
        stack.append(span)
        return span

    def _close(self, span: TraceSpan) -> None:
        span.end_wall = time.perf_counter()
        span.end_cpu = time.process_time()
        stack = self._stack()
        # Close any orphaned children first (a caller that leaked an
        # inner span must not corrupt the rest of the tree).
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    def _stack(self) -> List[TraceSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[TraceSpan]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # queries / export
    # ------------------------------------------------------------------
    def spans(self) -> List[TraceSpan]:
        """Finished spans in completion order (a copy)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def records(self) -> List[dict]:
        """JSON-safe span records sorted by span id (creation order)."""
        return [s.as_dict() for s in sorted(self.spans(), key=lambda s: s.span_id)]

    def export_jsonl(self, path: str) -> None:
        """Write one JSON record per finished span to ``path``.

        Atomic (temp file + fsync + rename): a crash — or the SIGKILL
        chaos suite — mid-export leaves the previous complete trace,
        never a torn one.
        """
        # Local import: export pulls in metrics, never spans, so there
        # is no cycle — but keeping it out of module scope makes that
        # one-way dependency obvious.
        from .export import atomic_write_text

        text = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records()
        )
        atomic_write_text(path, text)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._next_id = 1
            # Swapping the thread-local holder inside the lock keeps a
            # reset atomic with respect to concurrent span bookkeeping.
            self._local = threading.local()


def iter_children(
    records: List[dict], parent_id: Optional[int]
) -> Iterator[dict]:
    """Yield the records whose ``parent_id`` matches, in id order."""
    for record in sorted(records, key=lambda r: r["span_id"]):
        if record["parent_id"] == parent_id:
            yield record


def span_structure(records: List[dict]) -> List[tuple]:
    """Collapse a record list into its structural signature.

    Returns nested ``(name, count, children)`` tuples where consecutive
    runs of same-named siblings are merged and ``count`` is the run
    length.  Durations and attributes are dropped, which is exactly the
    shape the golden-trace regression test pins: a training-loop
    refactor that silently drops a phase changes the signature, a
    faster machine does not.
    """

    def level(parent_id: Optional[int]) -> List[tuple]:
        out: List[tuple] = []
        for record in iter_children(records, parent_id):
            children = level(record["span_id"])
            if out and out[-1][0] == record["name"] and out[-1][2] == children:
                out[-1] = (record["name"], out[-1][1] + 1, children)
            else:
                out.append((record["name"], 1, children))
        return out

    return level(None)
