"""Render a recorded trace as a tree, and metrics as a table.

The tree collapses runs of same-named siblings (4800 ``step`` spans
render as one ``step ×4800`` line with summed durations), shows wall
and CPU seconds per node, and surfaces a small allowlist of interesting
attributes — enough to read a 2-epoch training run or a 10k-request
serving session at a glance::

    train (wall 12.412s, cpu 12.101s)
    ├─ cluster-refresh (wall 0.310s, ...)
    └─ epoch ×2 (wall 11.820s, ...)
       ├─ step ×94 (wall 9.213s, ...)
       │  ├─ sampling ×94 (...)
       ...
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

#: Attributes worth echoing inline on the report tree (last one of a
#: collapsed run wins).
_SHOWN_ATTRIBUTES = (
    "loss", "level", "metric", "epoch", "index", "breaker", "outcome",
)


def _children_index(records: List[dict]) -> Dict[Optional[int], List[dict]]:
    """``parent_id -> [child records in id order]`` for one trace."""
    index: Dict[Optional[int], List[dict]] = defaultdict(list)
    for record in sorted(records, key=lambda r: r["span_id"]):
        index[record.get("parent_id")].append(record)
    return index


def _aggregate(children: List[dict]) -> List[dict]:
    """Collapse same-named siblings into count groups.

    Grouping is by name in first-appearance order (not consecutive
    runs), so the children of two merged ``epoch`` spans fold into one
    ``step ×N`` / ``eval ×M`` pair instead of alternating.
    """
    groups: List[dict] = []
    by_name: Dict[str, dict] = {}
    for record in children:
        group = by_name.get(record["name"])
        if group is None:
            group = by_name[record["name"]] = {
                "name": record["name"], "count": 0, "wall": 0.0,
                "cpu": 0.0, "ids": [], "attributes": {},
            }
            groups.append(group)
        group["count"] += 1
        group["wall"] += record.get("wall", 0.0)
        group["cpu"] += record.get("cpu", 0.0)
        group["ids"].append(record["span_id"])
        for key in _SHOWN_ATTRIBUTES:
            if key in record.get("attributes", {}):
                group["attributes"][key] = record["attributes"][key]
    return groups


def _format_attrs(attrs: Dict[str, object]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return f" [{', '.join(parts)}]" if parts else ""


def render_tree(records: List[dict], max_depth: Optional[int] = None) -> str:
    """Text tree of a span record list (see module docstring)."""
    if not records:
        return "(empty trace)"
    index = _children_index(records)
    lines: List[str] = []

    def walk(parent_ids: List[int], prefix: str, depth: int) -> None:
        children: List[dict] = []
        for parent_id in parent_ids:
            children.extend(index.get(parent_id, []))
        groups = _aggregate(children)
        for position, group in enumerate(groups):
            last = position == len(groups) - 1
            if depth == 0:
                branch, extend = "", ""
            else:
                branch = "└─ " if last else "├─ "
                extend = "   " if last else "│  "
            count = f" ×{group['count']}" if group["count"] > 1 else ""
            lines.append(
                f"{prefix}{branch}{group['name']}{count} "
                f"(wall {group['wall']:.3f}s, cpu {group['cpu']:.3f}s)"
                f"{_format_attrs(group['attributes'])}"
            )
            if max_depth is None or depth + 1 < max_depth:
                walk(group["ids"], prefix + extend, depth + 1)

    walk([None], "", 0)  # type: ignore[list-item]
    return "\n".join(lines)


def trace_summary(records: List[dict]) -> dict:
    """Headline numbers for a trace: span count, roots, total wall."""
    roots = [r for r in records if r.get("parent_id") is None]
    return {
        "spans": len(records),
        "roots": len(roots),
        "root_names": sorted({r["name"] for r in roots}),
        "total_wall": sum(r.get("wall", 0.0) for r in roots),
        "total_cpu": sum(r.get("cpu", 0.0) for r in roots),
    }


def format_metrics_table(snapshot: dict) -> str:
    """Text rendering of a :meth:`MetricsRegistry.snapshot` payload."""
    lines: List[str] = []
    if snapshot.get("counters"):
        lines.append("counters:")
        for name, value in sorted(snapshot["counters"].items()):
            lines.append(f"  {name:<40} {value:>12}")
    if snapshot.get("gauges"):
        lines.append("gauges:")
        for name, value in sorted(snapshot["gauges"].items()):
            lines.append(f"  {name:<40} {value:>12.6g}")
    if snapshot.get("histograms"):
        lines.append("histograms:")
        for name, hist in sorted(snapshot["histograms"].items()):
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"  {name:<40} count={hist['count']} "
                f"sum={hist['sum']:.6g} mean={mean:.6g}"
            )
    return "\n".join(lines) if lines else "(no metrics)"
