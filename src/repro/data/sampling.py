"""Negative sampling and batch iteration for BPR-style training.

Section V.D: every positive pair is matched with one sampled negative;
batch size 1024.  Two samplers are provided — one over user-item
interactions (for ``L_UV``, Eq. 1) and one over item-tag assignments
(for ``L_VT``, Eq. 2, "recommending tags to items").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .dataset import TagRecDataset


@dataclass
class TripletBatch:
    """A batch of (anchor, positive, negative) index triplets."""

    anchors: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return len(self.anchors)


class BPRSampler:
    """Uniform BPR triplet sampler over user-item interactions.

    Negatives are drawn uniformly from the item universe and rejected if
    they appear in the anchor user's training set (resampled up to a
    bounded number of rounds — with the sparse matrices of Table I the
    first draw almost always succeeds).
    """

    def __init__(self, dataset: TagRecDataset, seed: int = 0) -> None:
        self._num_items = dataset.num_items
        self._users = dataset.user_ids
        self._items = dataset.item_ids
        self._positives: List[set] = [
            set(items.tolist()) for items in dataset.items_of_user()
        ]
        self._rng = np.random.default_rng(seed)

    @property
    def num_positives(self) -> int:
        return len(self._users)

    def sample_negatives(self, anchors: np.ndarray, rounds: int = 20) -> np.ndarray:
        """Draw one negative item per anchor user."""
        negatives = self._rng.integers(0, self._num_items, size=len(anchors))
        for _ in range(rounds):
            clashes = np.fromiter(
                (neg in self._positives[u] for u, neg in zip(anchors, negatives)),
                dtype=bool,
                count=len(anchors),
            )
            if not clashes.any():
                break
            negatives[clashes] = self._rng.integers(0, self._num_items, size=clashes.sum())
        return negatives

    def epoch(self, batch_size: int = 1024, shuffle: bool = True) -> Iterator[TripletBatch]:
        """Yield triplet batches covering every positive once."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = (
            self._rng.permutation(self.num_positives)
            if shuffle
            else np.arange(self.num_positives)
        )
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            anchors = self._users[index]
            positives = self._items[index]
            negatives = self.sample_negatives(anchors)
            yield TripletBatch(anchors, positives, negatives)


class ItemTagSampler:
    """BPR triplet sampler over item-tag assignments (Eq. 2).

    Anchors are items, positives their assigned tags, negatives uniform
    tags not assigned to the anchor item.
    """

    def __init__(self, dataset: TagRecDataset, seed: int = 0) -> None:
        self._num_tags = dataset.num_tags
        self._items = dataset.tag_item_ids
        self._tags = dataset.tag_ids
        self._positives: List[set] = [
            set(tags.tolist()) for tags in dataset.tags_of_item()
        ]
        self._rng = np.random.default_rng(seed)

    @property
    def num_positives(self) -> int:
        return len(self._items)

    def sample_negatives(self, anchors: np.ndarray, rounds: int = 20) -> np.ndarray:
        """Draw one negative tag per anchor item."""
        negatives = self._rng.integers(0, self._num_tags, size=len(anchors))
        for _ in range(rounds):
            clashes = np.fromiter(
                (neg in self._positives[v] for v, neg in zip(anchors, negatives)),
                dtype=bool,
                count=len(anchors),
            )
            if not clashes.any():
                break
            negatives[clashes] = self._rng.integers(0, self._num_tags, size=clashes.sum())
        return negatives

    def epoch(self, batch_size: int = 1024, shuffle: bool = True) -> Iterator[TripletBatch]:
        """Yield triplet batches covering every item-tag pair once."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = (
            self._rng.permutation(self.num_positives)
            if shuffle
            else np.arange(self.num_positives)
        )
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            anchors = self._items[index]
            positives = self._tags[index]
            negatives = self.sample_negatives(anchors)
            yield TripletBatch(anchors, positives, negatives)


def sample_item_batches(
    num_items: int, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield shuffled item-index batches (for the alignment losses)."""
    order = rng.permutation(num_items)
    for start in range(0, num_items, batch_size):
        yield order[start : start + batch_size]
