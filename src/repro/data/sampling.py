"""Negative sampling and batch iteration for BPR-style training.

Section V.D: every positive pair is matched with one sampled negative;
batch size 1024.  Two samplers are provided — one over user-item
interactions (for ``L_UV``, Eq. 1) and one over item-tag assignments
(for ``L_VT``, Eq. 2, "recommending tags to items").

Membership tests run against a globally sorted key array
(``anchor * |candidates| + candidate``) with ``np.searchsorted``, so a
full rejection round is pure NumPy — no per-row Python sets.  The
original set-based rejection loop survives as
``sample_negatives_reference`` on both samplers; it draws from the
identical RNG stream, so the two paths produce bit-identical triplets
(the property the hot-path benchmarks and equivalence tests exploit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .dataset import TagRecDataset


@dataclass
class TripletBatch:
    """A batch of (anchor, positive, negative) index triplets."""

    anchors: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return len(self.anchors)


class _SortedPairIndex:
    """Sorted (anchor, value) key set with vectorized membership tests."""

    def __init__(
        self, anchors: np.ndarray, values: np.ndarray, num_values: int
    ) -> None:
        self._num_values = num_values
        self._keys = np.sort(
            anchors.astype(np.int64) * num_values + values.astype(np.int64)
        )

    def contains(self, anchors: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Boolean mask: is ``(anchors[i], values[i])`` a known pair?"""
        if len(self._keys) == 0:
            return np.zeros(len(anchors), dtype=bool)
        keys = anchors.astype(np.int64) * self._num_values + values
        pos = np.searchsorted(self._keys, keys)
        inside = pos < len(self._keys)
        pos[~inside] = 0
        return inside & (self._keys[pos] == keys)


class _PairSampler:
    """Shared machinery of the two BPR triplet samplers.

    Holds the positive pair arrays, the sorted membership index, and
    the uniform-with-rejection negative draw.  Subclasses only name the
    anchor/value universes.
    """

    def __init__(
        self,
        anchors: np.ndarray,
        positives: np.ndarray,
        num_candidates: int,
        seed: int,
    ) -> None:
        self._anchors = anchors
        self._positive_values = positives
        self._num_candidates = num_candidates
        self._index = _SortedPairIndex(anchors, positives, num_candidates)
        self._positive_sets: Optional[List[set]] = None
        self._rng = np.random.default_rng(seed)

    @property
    def num_positives(self) -> int:
        return len(self._anchors)

    @property
    def anchors(self) -> np.ndarray:
        """The anchor id of every positive pair, in dataset order."""
        return self._anchors

    def sample_negatives(self, anchors: np.ndarray, rounds: int = 20) -> np.ndarray:
        """Draw one negative per anchor, rejecting known positives.

        With the sparse matrices of Table I the first draw almost
        always succeeds; ``rounds`` bounds the worst case.
        """
        negatives = self._rng.integers(0, self._num_candidates, size=len(anchors))
        for _ in range(rounds):
            clashes = self._index.contains(anchors, negatives)
            if not clashes.any():
                break
            negatives[clashes] = self._rng.integers(
                0, self._num_candidates, size=int(clashes.sum())
            )
        return negatives

    def sample_negatives_reference(  # lint: reference-path
        self, anchors: np.ndarray, rounds: int = 20
    ) -> np.ndarray:
        """The original per-pair set-membership rejection loop.

        Kept as the baseline of the hot-path benchmarks; consumes the
        RNG identically to :meth:`sample_negatives`.
        """
        if self._positive_sets is None:
            self._positive_sets = [set() for _ in range(self._num_anchors())]
            for anchor, value in zip(self._anchors, self._positive_values):
                self._positive_sets[anchor].add(int(value))
        positives = self._positive_sets
        negatives = self._rng.integers(0, self._num_candidates, size=len(anchors))
        for _ in range(rounds):
            clashes = np.fromiter(
                (neg in positives[a] for a, neg in zip(anchors, negatives)),
                dtype=bool,
                count=len(anchors),
            )
            if not clashes.any():
                break
            negatives[clashes] = self._rng.integers(
                0, self._num_candidates, size=int(clashes.sum())
            )
        return negatives

    def _num_anchors(self) -> int:
        return int(self._anchors.max()) + 1 if len(self._anchors) else 0

    def state_dict(self) -> dict:
        """Resumable sampler state: the RNG bit stream.

        The pair arrays are rebuilt identically from the dataset at
        construction, so the generator state is the only thing a
        checkpoint needs to reproduce the remaining shuffle/negative
        draws bit-exactly.
        """
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore the RNG stream saved by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]

    def take(self, index: np.ndarray) -> TripletBatch:
        """Materialise the triplets at ``index`` with fresh negatives."""
        anchors = self._anchors[index]
        return TripletBatch(
            anchors, self._positive_values[index], self.sample_negatives(anchors)
        )

    def epoch(
        self, batch_size: int = 1024, shuffle: bool = True
    ) -> Iterator[TripletBatch]:
        """Yield triplet batches covering every positive once."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = (
            self._rng.permutation(self.num_positives)
            if shuffle
            else np.arange(self.num_positives)
        )
        for start in range(0, len(order), batch_size):
            yield self.take(order[start : start + batch_size])


class BPRSampler(_PairSampler):
    """Uniform BPR triplet sampler over user-item interactions.

    Negatives are drawn uniformly from the item universe and rejected if
    they appear in the anchor user's training set (resampled up to a
    bounded number of rounds).
    """

    def __init__(self, dataset: TagRecDataset, seed: int = 0) -> None:
        super().__init__(
            dataset.user_ids, dataset.item_ids, dataset.num_items, seed
        )


class ItemTagSampler(_PairSampler):
    """BPR triplet sampler over item-tag assignments (Eq. 2).

    Anchors are items, positives their assigned tags, negatives uniform
    tags not assigned to the anchor item.
    """

    def __init__(self, dataset: TagRecDataset, seed: int = 0) -> None:
        super().__init__(
            dataset.tag_item_ids, dataset.tag_ids, dataset.num_tags, seed
        )


class TripletCycler:
    """Endless triplet-batch stream over a sampler's positives.

    Caches one index array and reshuffles it *in place* at each wrap,
    replacing the per-epoch ``itertools.cycle(list(sampler.epoch(...)))``
    pattern that rebuilt a Python list of every batch every epoch.
    Negatives are drawn fresh for every batch, as before.
    """

    def __init__(
        self,
        sampler: _PairSampler,
        batch_size: int,
        rng: np.random.Generator,
        shuffle: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._sampler = sampler
        self._batch_size = batch_size
        self._rng = rng
        self._shuffle = shuffle
        self._order = np.arange(sampler.num_positives)
        self._cursor = len(self._order)  # force a shuffle on first use

    def __iter__(self) -> "TripletCycler":
        return self

    def __next__(self) -> TripletBatch:
        if self._cursor >= len(self._order):
            if self._shuffle:
                self._rng.shuffle(self._order)
            self._cursor = 0
        index = self._order[self._cursor : self._cursor + self._batch_size]
        self._cursor += self._batch_size
        return self._sampler.take(index)

    def state_dict(self) -> dict:
        """Mid-stream position: the shuffled order and the cursor.

        The shuffle RNG is shared with (and checkpointed by) the
        trainer, so only the materialised order and offset live here.
        """
        return {"order": self._order.copy(), "cursor": int(self._cursor)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the position saved by :meth:`state_dict`."""
        order = np.asarray(state["order"])
        if order.shape != self._order.shape:
            raise ValueError(
                f"cycler state mismatch: saved order has shape {order.shape}, "
                f"expected {self._order.shape}"
            )
        self._order[...] = order
        self._cursor = int(state["cursor"])


class IndexCycler:
    """Endless shuffled index batches over ``range(n)``.

    The in-place-reshuffle analogue of :func:`sample_item_batches` for
    callers that need an unbounded stream (the alignment losses draw
    one item batch per training step).
    """

    def __init__(self, n: int, batch_size: int, rng: np.random.Generator) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._order = np.arange(n)
        self._batch_size = batch_size
        self._rng = rng
        self._cursor = len(self._order)

    def __iter__(self) -> "IndexCycler":
        return self

    def __next__(self) -> np.ndarray:
        if self._cursor >= len(self._order):
            self._rng.shuffle(self._order)
            self._cursor = 0
        batch = self._order[self._cursor : self._cursor + self._batch_size]
        self._cursor += self._batch_size
        return batch

    def state_dict(self) -> dict:
        """Mid-stream position (see :meth:`TripletCycler.state_dict`)."""
        return {"order": self._order.copy(), "cursor": int(self._cursor)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the position saved by :meth:`state_dict`."""
        order = np.asarray(state["order"])
        if order.shape != self._order.shape:
            raise ValueError(
                f"cycler state mismatch: saved order has shape {order.shape}, "
                f"expected {self._order.shape}"
            )
        self._order[...] = order
        self._cursor = int(state["cursor"])


def sample_item_batches(
    num_items: int, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield shuffled item-index batches (for the alignment losses)."""
    order = rng.permutation(num_items)
    for start in range(0, num_items, batch_size):
        yield order[start : start + batch_size]
