"""Preprocessing pipeline replicating the paper's filtering protocol.

Section V.A: ratings >= 4 (of 5) become positive implicit feedback;
users and items with fewer than 10 interactions are filtered out
(iteratively — a 10-core decomposition); tags must be assigned to at
least 5 items.  Entity ids are re-indexed densely after filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .dataset import TagRecDataset


@dataclass(frozen=True)
class PreprocessConfig:
    """Filtering thresholds (paper defaults)."""

    rating_threshold: float = 4.0
    min_user_interactions: int = 10
    min_item_interactions: int = 10
    min_tag_items: int = 5


def binarize_ratings(
    user_ids: np.ndarray,
    item_ids: np.ndarray,
    ratings: np.ndarray,
    threshold: float = 4.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep only interactions with rating >= threshold.

    Returns filtered ``(user_ids, item_ids)``; lower ratings are treated
    as missing entries, per Section V.A.
    """
    ratings = np.asarray(ratings, dtype=np.float64)
    keep = ratings >= threshold
    return np.asarray(user_ids)[keep], np.asarray(item_ids)[keep]


def k_core_filter(
    user_ids: np.ndarray,
    item_ids: np.ndarray,
    min_user: int,
    min_item: int,
    max_rounds: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Iteratively drop users/items below the interaction thresholds.

    Repeats until a fixed point: removing a cold item can push a user
    below the threshold and vice versa.
    """
    user_ids = np.asarray(user_ids).copy()
    item_ids = np.asarray(item_ids).copy()
    for _ in range(max_rounds):
        if len(user_ids) == 0:
            break
        user_counts = np.bincount(user_ids)
        item_counts = np.bincount(item_ids)
        keep = (user_counts[user_ids] >= min_user) & (
            item_counts[item_ids] >= min_item
        )
        if keep.all():
            break
        user_ids = user_ids[keep]
        item_ids = item_ids[keep]
    return user_ids, item_ids


def preprocess(
    user_ids: np.ndarray,
    item_ids: np.ndarray,
    tag_item_ids: np.ndarray,
    tag_ids: np.ndarray,
    config: Optional[PreprocessConfig] = None,
    ratings: Optional[np.ndarray] = None,
    name: str = "preprocessed",
) -> TagRecDataset:
    """Run the full pipeline and return a densely re-indexed dataset.

    Steps: (1) optional rating binarisation, (2) 10-core user/item
    filtering, (3) restrict tag assignments to surviving items,
    (4) min-support tag filtering, (5) dense re-indexing of all ids.
    """
    config = config or PreprocessConfig()
    user_ids = np.asarray(user_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    tag_item_ids = np.asarray(tag_item_ids, dtype=np.int64)
    tag_ids = np.asarray(tag_ids, dtype=np.int64)

    if ratings is not None:
        user_ids, item_ids = binarize_ratings(
            user_ids, item_ids, ratings, config.rating_threshold
        )

    user_ids, item_ids = k_core_filter(
        user_ids,
        item_ids,
        config.min_user_interactions,
        config.min_item_interactions,
    )
    if len(user_ids) == 0:
        raise ValueError(
            "no interactions survive preprocessing; thresholds "
            f"(user>={config.min_user_interactions}, "
            f"item>={config.min_item_interactions}) are too strict"
        )

    surviving_items = np.unique(item_ids)
    item_mask = np.zeros(tag_item_ids.max() + 1 if len(tag_item_ids) else 1, dtype=bool)
    item_mask[surviving_items[surviving_items < len(item_mask)]] = True
    keep_tags = np.zeros(len(tag_item_ids), dtype=bool)
    in_range = tag_item_ids < len(item_mask)
    keep_tags[in_range] = item_mask[tag_item_ids[in_range]]
    tag_item_ids = tag_item_ids[keep_tags]
    tag_ids = tag_ids[keep_tags]

    # Tag min-support: each tag must label at least ``min_tag_items`` items.
    if len(tag_ids):
        support = np.bincount(tag_ids)
        keep = support[tag_ids] >= config.min_tag_items
        tag_item_ids = tag_item_ids[keep]
        tag_ids = tag_ids[keep]

    # Dense re-indexing.
    user_map = _dense_map(user_ids)
    item_map = _dense_map(np.concatenate([item_ids, tag_item_ids]))
    tag_map = _dense_map(tag_ids)

    return TagRecDataset(
        num_users=len(user_map),
        num_items=len(item_map),
        num_tags=max(len(tag_map), 1),
        user_ids=_apply_map(user_map, user_ids),
        item_ids=_apply_map(item_map, item_ids),
        tag_item_ids=_apply_map(item_map, tag_item_ids),
        tag_ids=_apply_map(tag_map, tag_ids),
        name=name,
    )


def preprocess_dataset(
    dataset: TagRecDataset, config: Optional[PreprocessConfig] = None
) -> TagRecDataset:
    """Apply :func:`preprocess` to an existing dataset."""
    return preprocess(
        dataset.user_ids,
        dataset.item_ids,
        dataset.tag_item_ids,
        dataset.tag_ids,
        config=config,
        name=dataset.name,
    )


def _dense_map(ids: np.ndarray) -> dict:
    unique = np.unique(ids)
    return {int(old): new for new, old in enumerate(unique)}


def _apply_map(mapping: dict, ids: np.ndarray) -> np.ndarray:
    if len(ids) == 0:
        return ids.astype(np.int64)
    return np.asarray([mapping[int(i)] for i in ids], dtype=np.int64)
