"""Train/validation/test splitting.

Section V.B: per-user random split of interactions into 7:1:2.  Users
whose interaction count cannot fill all three parts keep at least one
training interaction; validation/test may be empty for such users (the
evaluator skips them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .dataset import TagRecDataset


@dataclass(frozen=True)
class Split:
    """The three interaction subsets sharing one entity universe."""

    train: TagRecDataset
    valid: TagRecDataset
    test: TagRecDataset

    def __post_init__(self) -> None:
        total = (
            self.train.num_interactions
            + self.valid.num_interactions
            + self.test.num_interactions
        )
        if total == 0:
            raise ValueError("empty split")


def split_dataset(
    dataset: TagRecDataset,
    ratios: Tuple[float, float, float] = (0.7, 0.1, 0.2),
    seed: int = 0,
) -> Split:
    """Split each user's interactions by the given ratios.

    Args:
        dataset: the full dataset.
        ratios: (train, valid, test) fractions; must sum to 1.
        seed: RNG seed controlling the permutation.

    Returns:
        A :class:`Split`; all three parts share the item-tag matrix.
    """
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must sum to 1, got {ratios}")
    if min(ratios) < 0:
        raise ValueError(f"ratios must be non-negative, got {ratios}")
    rng = np.random.default_rng(seed)

    train_u, train_v = [], []
    valid_u, valid_v = [], []
    test_u, test_v = [], []
    for user, items in enumerate(dataset.items_of_user()):
        items = np.unique(items)
        if len(items) == 0:
            continue
        perm = rng.permutation(items)
        n = len(perm)
        n_train = max(int(round(ratios[0] * n)), 1)
        n_valid = int(round(ratios[1] * n))
        n_train = min(n_train, n)
        n_valid = min(n_valid, n - n_train)
        train_items = perm[:n_train]
        valid_items = perm[n_train : n_train + n_valid]
        test_items = perm[n_train + n_valid :]
        train_u.append(np.full(len(train_items), user))
        train_v.append(train_items)
        valid_u.append(np.full(len(valid_items), user))
        valid_v.append(valid_items)
        test_u.append(np.full(len(test_items), user))
        test_v.append(test_items)

    def build(users, items, suffix):
        users = np.concatenate(users) if users else np.empty(0, dtype=np.int64)
        items = np.concatenate(items) if items else np.empty(0, dtype=np.int64)
        return dataset.with_interactions(users, items, name=f"{dataset.name}-{suffix}")

    return Split(
        train=build(train_u, train_v, "train"),
        valid=build(valid_u, valid_v, "valid"),
        test=build(test_u, test_v, "test"),
    )
