"""Dataset statistics in the format of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import TagRecDataset


@dataclass(frozen=True)
class DatasetStatistics:
    """The nine statistics reported per dataset in Table I."""

    name: str
    num_users: int
    num_items: int
    num_tags: int
    num_interactions: int
    interaction_density_pct: float
    interaction_avg_degree: float
    num_tag_assignments: int
    tag_density_pct: float
    tag_avg_degree: float

    def as_row(self) -> dict:
        """Dictionary keyed like the Table I row labels."""
        return {
            "#User": self.num_users,
            "#Item": self.num_items,
            "#Tag": self.num_tags,
            "#UI": self.num_interactions,
            "UI Density": f"{self.interaction_density_pct:.2f}%",
            "UI Avg. degree": f"{self.interaction_avg_degree:.2f}",
            "#IT": self.num_tag_assignments,
            "IT Density": f"{self.tag_density_pct:.2f}%",
            "IT Avg. degree": f"{self.tag_avg_degree:.2f}",
        }


def compute_statistics(dataset: TagRecDataset) -> DatasetStatistics:
    """Compute Table I statistics for a dataset.

    Average degrees follow the paper's convention: ``#UI / |U|`` for the
    interaction matrix and ``#IT / |V|`` for the tag matrix.
    """
    n_ui = dataset.num_interactions
    n_it = dataset.num_tag_assignments
    return DatasetStatistics(
        name=dataset.name,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_tags=dataset.num_tags,
        num_interactions=n_ui,
        interaction_density_pct=100.0 * dataset.interaction_density(),
        interaction_avg_degree=n_ui / dataset.num_users if dataset.num_users else 0.0,
        num_tag_assignments=n_it,
        tag_density_pct=100.0 * dataset.tag_density(),
        tag_avg_degree=n_it / dataset.num_items if dataset.num_items else 0.0,
    )
