"""Data layer: dataset container, synthetic generators, preprocessing,
splits, negative sampling, and Table I statistics."""

from .analysis import (
    DegreeReport,
    PowerLawFit,
    analyze_item_degrees,
    fit_power_law,
    gini_coefficient,
    head_share,
)
from .cache import (
    DatasetCacheError,
    cached_generate,
    dataset_fingerprint,
    load_dataset_file,
    save_dataset,
)
from .dataset import TagRecDataset
from .loaders import (
    available_datasets,
    load_citeulike_t,
    load_dataset,
    load_pairs_dataset,
    read_delimited,
)
from .preprocess import (
    PreprocessConfig,
    binarize_ratings,
    k_core_filter,
    preprocess,
    preprocess_dataset,
)
from .sampling import (
    BPRSampler,
    IndexCycler,
    ItemTagSampler,
    TripletBatch,
    TripletCycler,
    sample_item_batches,
)
from .split import Split, split_dataset
from .stats import DatasetStatistics, compute_statistics
from .synthetic import (
    DATASET_ORDER,
    PAPER_STATISTICS,
    PRESETS,
    SyntheticConfig,
    SyntheticGroundTruth,
    generate,
    generate_preset,
    preset,
)

__all__ = [
    "BPRSampler",
    "DATASET_ORDER",
    "DatasetCacheError",
    "DatasetStatistics",
    "DegreeReport",
    "IndexCycler",
    "ItemTagSampler",
    "PAPER_STATISTICS",
    "PRESETS",
    "PowerLawFit",
    "PreprocessConfig",
    "Split",
    "SyntheticConfig",
    "SyntheticGroundTruth",
    "TagRecDataset",
    "TripletBatch",
    "TripletCycler",
    "analyze_item_degrees",
    "available_datasets",
    "binarize_ratings",
    "cached_generate",
    "compute_statistics",
    "dataset_fingerprint",
    "fit_power_law",
    "generate",
    "generate_preset",
    "gini_coefficient",
    "head_share",
    "k_core_filter",
    "load_citeulike_t",
    "load_dataset",
    "load_dataset_file",
    "load_pairs_dataset",
    "preprocess",
    "preprocess_dataset",
    "preset",
    "read_delimited",
    "sample_item_batches",
    "save_dataset",
    "split_dataset",
]
