"""Dataset loading: real files when present, calibrated synthetic otherwise.

The paper's seven datasets ship in simple delimited formats (HetRec
``.dat`` files are tab-separated with a header line).  The loaders here
parse those formats so that dropping the raw files into a data directory
reproduces the real pipeline; in this offline environment the registry
transparently falls back to the calibrated synthetic generators.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

import numpy as np

from .dataset import TagRecDataset
from .preprocess import PreprocessConfig, preprocess
from .synthetic import DATASET_ORDER, generate_preset, preset


def read_delimited(
    path: str,
    columns: Tuple[int, ...],
    delimiter: str = "\t",
    skip_header: bool = True,
) -> Tuple[np.ndarray, ...]:
    """Read integer/float columns from a delimited text file.

    Args:
        path: file path.
        columns: zero-based column indices to extract.
        delimiter: field separator.
        skip_header: drop the first line (HetRec files carry a header).

    Returns:
        One float array per requested column (cast by the caller).
    """
    rows = [[] for _ in columns]
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle):
            if skip_header and line_no == 0:
                continue
            parts = line.rstrip("\n").split(delimiter)
            if len(parts) <= max(columns):
                continue
            try:
                values = [float(parts[c]) for c in columns]
            except ValueError:
                continue
            for bucket, value in zip(rows, values):
                bucket.append(value)
    return tuple(np.asarray(bucket, dtype=np.float64) for bucket in rows)


def load_hetrec_movielens(data_dir: str) -> TagRecDataset:
    """Parse the HetRec-2011 MovieLens release (``user_ratedmovies.dat``
    + ``movie_tags.dat``), applying the paper's preprocessing."""
    users, items, ratings = read_delimited(
        os.path.join(data_dir, "user_ratedmovies.dat"), (0, 1, 2)
    )
    tag_items, tags = read_delimited(
        os.path.join(data_dir, "movie_tags.dat"), (0, 1)
    )
    return preprocess(
        users.astype(np.int64),
        items.astype(np.int64),
        tag_items.astype(np.int64),
        tags.astype(np.int64),
        ratings=ratings,
        name="hetrec-mv",
    )


def load_hetrec_lastfm(data_dir: str) -> TagRecDataset:
    """Parse the HetRec-2011 Last.fm release (``user_artists.dat`` +
    ``user_taggedartists.dat``); listening counts are implicit feedback."""
    users, items, _weights = read_delimited(
        os.path.join(data_dir, "user_artists.dat"), (0, 1, 2)
    )
    _tag_users, tag_items, tags = read_delimited(
        os.path.join(data_dir, "user_taggedartists.dat"), (0, 1, 2)
    )
    config = PreprocessConfig(rating_threshold=0.0)
    return preprocess(
        users.astype(np.int64),
        items.astype(np.int64),
        tag_items.astype(np.int64),
        tags.astype(np.int64),
        config=config,
        name="hetrec-fm",
    )


def load_hetrec_delicious(data_dir: str) -> TagRecDataset:
    """Parse the HetRec-2011 Delicious release
    (``user_taggedbookmarks.dat``): the user-bookmark pairs are the
    interactions and the bookmark-tag pairs the assignments."""
    users, items, tags = read_delimited(
        os.path.join(data_dir, "user_taggedbookmarks.dat"), (0, 1, 2)
    )
    config = PreprocessConfig(rating_threshold=0.0)
    return preprocess(
        users.astype(np.int64),
        items.astype(np.int64),
        items.astype(np.int64),
        tags.astype(np.int64),
        config=config,
        name="hetrec-del",
    )


def load_citeulike_t(data_dir: str) -> TagRecDataset:
    """Parse the CiteULike-t release (Wang, Chen & Li 2013).

    Format: ``users.dat`` has one line per user — a count followed by
    the article ids she collected; ``tag-item.dat`` has one line per
    tag — the article ids carrying that tag.  Both are space-separated.
    """
    user_ids = []
    item_ids = []
    with open(
        os.path.join(data_dir, "users.dat"), encoding="utf-8"
    ) as handle:
        for user, line in enumerate(handle):
            parts = line.split()
            if len(parts) < 2:
                continue
            for item in parts[1:]:
                user_ids.append(user)
                item_ids.append(int(item))
    tag_item_ids = []
    tag_ids = []
    with open(
        os.path.join(data_dir, "tag-item.dat"), encoding="utf-8"
    ) as handle:
        for tag, line in enumerate(handle):
            for item in line.split():
                tag_item_ids.append(int(item))
                tag_ids.append(tag)
    return preprocess(
        np.asarray(user_ids, dtype=np.int64),
        np.asarray(item_ids, dtype=np.int64),
        np.asarray(tag_item_ids, dtype=np.int64),
        np.asarray(tag_ids, dtype=np.int64),
        name="citeulike",
    )


def load_pairs_dataset(
    interactions_path: str, tags_path: str, name: str
) -> TagRecDataset:
    """Generic loader: two TSV files of ``user item`` and ``item tag``."""
    users, items = read_delimited(interactions_path, (0, 1), skip_header=False)
    tag_items, tags = read_delimited(tags_path, (0, 1), skip_header=False)
    return preprocess(
        users.astype(np.int64),
        items.astype(np.int64),
        tag_items.astype(np.int64),
        tags.astype(np.int64),
        name=name,
    )


_REAL_LOADERS = {
    "hetrec-mv": load_hetrec_movielens,
    "hetrec-fm": load_hetrec_lastfm,
    "hetrec-del": load_hetrec_delicious,
    "citeulike": load_citeulike_t,
}


def load_dataset(
    name: str,
    data_dir: Optional[str] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> TagRecDataset:
    """Load one of the seven benchmark datasets.

    Real files are used when ``data_dir`` holds the published release for
    ``name``; otherwise the calibrated synthetic generator stands in
    (documented substitution, see DESIGN.md).

    Args:
        name: one of :data:`repro.data.synthetic.DATASET_ORDER`.
        data_dir: directory with the raw files, if available.
        scale: shrink factor for the synthetic fallback.
        seed: RNG seed for the synthetic fallback.
    """
    key = name.lower()
    preset(key)  # validates the name, raising KeyError with choices
    if data_dir is not None and key in _REAL_LOADERS:
        loader = _REAL_LOADERS[key]
        try:
            return loader(data_dir)
        except FileNotFoundError as exc:
            warnings.warn(
                f"{key}: raw files not found under {data_dir!r} ({exc}); "
                "falling back to the calibrated synthetic preset",
                RuntimeWarning,
                stacklevel=2,
            )
    return generate_preset(key, scale=scale, seed=seed)


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`, in Table I order."""
    return list(DATASET_ORDER)
