"""Degree-distribution analysis: power-law fitting and concentration.

Section I of the paper grounds its long-tail argument in Clauset,
Shalizi & Newman's work on power-law distributions (ref [12]): user-item
interaction degrees follow ``p(x) ∝ x^-alpha``.  This module provides

- the discrete maximum-likelihood estimator of the power-law exponent
  ``alpha`` (the Hill estimator of ref [12], Eq. 3.7 approximation);
- the Gini coefficient of the degree distribution (popularity
  concentration — higher means a heavier head);
- the head-share curve (fraction of interactions captured by the top
  ``q`` fraction of items).

They are used to validate that the synthetic generators plant the
structure the paper's Fig. 7 analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import TagRecDataset


@dataclass(frozen=True)
class PowerLawFit:
    """MLE fit of a discrete power law to a degree sample."""

    alpha: float
    x_min: int
    num_tail: int

    def plausible(self) -> bool:
        """Loose sanity range for empirical degree data (ref [12] finds
        most real networks in 1.5 <= alpha <= 3.5)."""
        return 1.2 <= self.alpha <= 5.0


def fit_power_law(degrees: np.ndarray, x_min: int = 1) -> PowerLawFit:
    """Continuous-approximation MLE for the power-law exponent.

    ``alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))`` over the tail
    ``x_i >= x_min`` (Clauset et al., Eq. 3.7).

    Args:
        degrees: observed degree sample (zeros are dropped).
        x_min: tail cutoff.

    Raises:
        ValueError: if fewer than two tail observations remain.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= x_min]
    if len(tail) < 2:
        raise ValueError(
            f"need at least two observations >= x_min={x_min}, "
            f"got {len(tail)}"
        )
    log_ratio = np.log(tail / (x_min - 0.5))
    alpha = 1.0 + len(tail) / log_ratio.sum()
    return PowerLawFit(alpha=float(alpha), x_min=x_min, num_tail=len(tail))


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1]; 0 = uniform, 1 = all mass on one item."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if len(values) == 0:
        raise ValueError("gini_coefficient needs a non-empty sample")
    total = values.sum()
    if total <= 0:
        return 0.0
    n = len(values)
    index = np.arange(1, n + 1)
    return float((2.0 * (index * values).sum()) / (n * total) - (n + 1.0) / n)


def head_share(degrees: np.ndarray, quantile: float = 0.1) -> float:
    """Fraction of interactions captured by the top ``quantile`` items."""
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))[::-1]
    total = degrees.sum()
    if total <= 0:
        return 0.0
    head = max(int(np.ceil(quantile * len(degrees))), 1)
    return float(degrees[:head].sum() / total)


@dataclass(frozen=True)
class DegreeReport:
    """Summary of one dataset's item-degree structure."""

    power_law: PowerLawFit
    gini: float
    top10_share: float
    median_degree: float
    max_degree: int


def analyze_item_degrees(dataset: TagRecDataset, x_min: int = 1) -> DegreeReport:
    """Fit and summarise the item popularity distribution."""
    degrees = dataset.item_degrees()
    positive = degrees[degrees > 0]
    return DegreeReport(
        power_law=fit_power_law(positive, x_min=x_min),
        gini=gini_coefficient(degrees),
        top10_share=head_share(degrees, 0.1),
        median_degree=float(np.median(positive)) if len(positive) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
    )
