"""Dataset caching: persist a :class:`TagRecDataset` as compressed npz.

Synthetic generation at larger scales takes seconds to minutes; caching
lets benchmark reruns and notebook sessions reload instantly.  The file
stores the four index arrays plus entity counts, the name, and — when
written through :func:`cached_generate` — a fingerprint of the
generator arguments, so a cache hit is only honoured when it was built
with the *same* arguments (a stale file from a different
scale/seed/preset regenerates instead of silently serving wrong data).

Robustness mirrors :mod:`repro.ckpt`: writes are atomic (temp file +
``os.replace``) and routed through the :data:`repro.testing.
DATA_CACHE_WRITE` fault site, and a torn or garbled archive raises
:class:`DatasetCacheError` on load — which :func:`cached_generate`
turns into delete-and-regenerate rather than a crash.
"""

from __future__ import annotations

import io
import os
import warnings
from typing import Optional, Tuple

import numpy as np

from .. import testing
from ..ckpt import config_fingerprint
from .dataset import TagRecDataset

_FINGERPRINT_KEY = "__args_fingerprint__"


class DatasetCacheError(RuntimeError):
    """A cache archive exists but cannot be read (torn write, garbling,
    or a foreign file); distinct from ``FileNotFoundError``."""


def _normalize(path: str) -> str:
    return path if path.endswith(".npz") else f"{path}.npz"


def dataset_fingerprint(*args, **kwargs) -> str:
    """Digest of a generator call's arguments (order-insensitive for
    keywords), stored in the archive and compared on cache hits."""
    return config_fingerprint(list(args), dict(kwargs))


def save_dataset(
    dataset: TagRecDataset, path: str, fingerprint: Optional[str] = None
) -> str:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing).

    The write is atomic — a crash mid-write leaves at most a temp file,
    never a half-written archive under the final name.  Returns the
    path actually written.
    """
    path = _normalize(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = dict(
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_tags=dataset.num_tags,
        user_ids=dataset.user_ids,
        item_ids=dataset.item_ids,
        tag_item_ids=dataset.tag_item_ids,
        tag_ids=dataset.tag_ids,
        name=np.asarray(dataset.name),
    )
    if fingerprint is not None:
        payload[_FINGERPRINT_KEY] = np.asarray(fingerprint)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    data = testing.filter_bytes(testing.DATA_CACHE_WRITE, buffer.getvalue())
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def _read_archive(path: str) -> Tuple[TagRecDataset, Optional[str]]:
    """Decode one archive into (dataset, stored fingerprint or None)."""
    try:
        with np.load(path) as archive:
            stored = (
                str(archive[_FINGERPRINT_KEY])
                if _FINGERPRINT_KEY in archive.files
                else None
            )
            dataset = TagRecDataset(
                num_users=int(archive["num_users"]),
                num_items=int(archive["num_items"]),
                num_tags=int(archive["num_tags"]),
                user_ids=archive["user_ids"],
                item_ids=archive["item_ids"],
                tag_item_ids=archive["tag_item_ids"],
                tag_ids=archive["tag_ids"],
                name=str(archive["name"]),
            )
            return dataset, stored
    except FileNotFoundError:
        raise
    except Exception as err:
        # np.load on a torn/garbled npz surfaces anything from
        # zipfile.BadZipFile through KeyError to zlib.error; collapse
        # them into one precise, catchable failure mode.
        raise DatasetCacheError(
            f"dataset cache {path!r} is unreadable ({type(err).__name__}: "
            f"{err})"
        ) from err


def load_dataset_file(path: str) -> TagRecDataset:
    """Load a dataset written by :func:`save_dataset`.

    Raises ``FileNotFoundError`` when the file is absent and
    :class:`DatasetCacheError` when it exists but is corrupt.
    """
    if not path.endswith(".npz") and not os.path.exists(path):
        path = f"{path}.npz"
    return _read_archive(path)[0]


def cached_generate(generator, path: str, *args, **kwargs) -> TagRecDataset:
    """Memoise a generator call on disk, keyed by path *and* arguments.

    A cache hit is served only when the archive is readable and its
    stored argument fingerprint matches this call's ``args``/``kwargs``;
    a corrupt file is deleted and regenerated, and an archive built with
    different arguments (or by an older, fingerprint-less writer) is
    regenerated in place.

    Args:
        generator: callable returning a :class:`TagRecDataset`
            (e.g. ``generate_preset``).
        path: cache file location.
        *args, **kwargs: forwarded to ``generator`` on a cache miss.
    """
    target = _normalize(path)
    fingerprint = dataset_fingerprint(*args, **kwargs)
    if os.path.exists(target):
        try:
            dataset, stored = _read_archive(target)
        except DatasetCacheError as err:
            warnings.warn(
                f"{err}; deleting and regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
            os.remove(target)
        else:
            if stored == fingerprint:
                return dataset
            warnings.warn(
                f"dataset cache {target!r} was generated with different "
                f"arguments (stored fingerprint {stored!r} != "
                f"{fingerprint!r}); regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
    dataset = generator(*args, **kwargs)
    save_dataset(dataset, target, fingerprint=fingerprint)
    return dataset
