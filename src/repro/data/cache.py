"""Dataset caching: persist a :class:`TagRecDataset` as compressed npz.

Synthetic generation at larger scales takes seconds to minutes; caching
lets benchmark reruns and notebook sessions reload instantly.  The file
stores the four index arrays plus entity counts and the name.
"""

from __future__ import annotations

import os

import numpy as np

from .dataset import TagRecDataset


def save_dataset(dataset: TagRecDataset, path: str) -> None:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing)."""
    if not path.endswith(".npz"):
        path = f"{path}.npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_tags=dataset.num_tags,
        user_ids=dataset.user_ids,
        item_ids=dataset.item_ids,
        tag_item_ids=dataset.tag_item_ids,
        tag_ids=dataset.tag_ids,
        name=np.asarray(dataset.name),
    )


def load_dataset_file(path: str) -> TagRecDataset:
    """Load a dataset written by :func:`save_dataset`."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = f"{path}.npz"
    with np.load(path) as archive:
        return TagRecDataset(
            num_users=int(archive["num_users"]),
            num_items=int(archive["num_items"]),
            num_tags=int(archive["num_tags"]),
            user_ids=archive["user_ids"],
            item_ids=archive["item_ids"],
            tag_item_ids=archive["tag_item_ids"],
            tag_ids=archive["tag_ids"],
            name=str(archive["name"]),
        )


def cached_generate(generator, path: str, *args, **kwargs) -> TagRecDataset:
    """Memoise a generator call on disk.

    Args:
        generator: callable returning a :class:`TagRecDataset`
            (e.g. ``generate_preset``).
        path: cache file location.
        *args, **kwargs: forwarded to ``generator`` on a cache miss.
    """
    target = path if path.endswith(".npz") else f"{path}.npz"
    if os.path.exists(target):
        return load_dataset_file(target)
    dataset = generator(*args, **kwargs)
    save_dataset(dataset, target)
    return dataset
