"""Core dataset container for tag-enhanced recommendation.

A :class:`TagRecDataset` holds the two information sources of the paper's
problem formulation (Section III.A):

- the binary user-item interaction matrix ``Y`` (implicit feedback), and
- the binary item-tag labelling matrix ``Y'``.

Interactions are stored as parallel index arrays; sparse matrices and
adjacency lists are materialised lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class TagRecDataset:
    """Implicit-feedback interactions plus item-tag assignments.

    Attributes:
        num_users: number of distinct users ``|U|``.
        num_items: number of distinct items ``|V|``.
        num_tags: number of distinct tags ``|T|``.
        user_ids: ``(n_interactions,)`` user index of each interaction.
        item_ids: ``(n_interactions,)`` item index of each interaction.
        tag_item_ids: ``(n_assignments,)`` item index of each tag assignment.
        tag_ids: ``(n_assignments,)`` tag index of each tag assignment.
        name: human-readable dataset name.
    """

    num_users: int
    num_items: int
    num_tags: int
    user_ids: np.ndarray
    item_ids: np.ndarray
    tag_item_ids: np.ndarray
    tag_ids: np.ndarray
    name: str = "unnamed"
    _cache: Dict[str, object] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        self.item_ids = np.asarray(self.item_ids, dtype=np.int64)
        self.tag_item_ids = np.asarray(self.tag_item_ids, dtype=np.int64)
        self.tag_ids = np.asarray(self.tag_ids, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent index ranges or lengths."""
        if len(self.user_ids) != len(self.item_ids):
            raise ValueError(
                f"user_ids ({len(self.user_ids)}) and item_ids "
                f"({len(self.item_ids)}) must have equal length"
            )
        if len(self.tag_item_ids) != len(self.tag_ids):
            raise ValueError(
                f"tag_item_ids ({len(self.tag_item_ids)}) and tag_ids "
                f"({len(self.tag_ids)}) must have equal length"
            )
        for label, arr, bound in (
            ("user_ids", self.user_ids, self.num_users),
            ("item_ids", self.item_ids, self.num_items),
            ("tag_item_ids", self.tag_item_ids, self.num_items),
            ("tag_ids", self.tag_ids, self.num_tags),
        ):
            if len(arr) and (arr.min() < 0 or arr.max() >= bound):
                raise ValueError(
                    f"{label} out of range [0, {bound}): "
                    f"min={arr.min()}, max={arr.max()}"
                )

    # ------------------------------------------------------------------
    # basic counts
    # ------------------------------------------------------------------
    @property
    def num_interactions(self) -> int:
        return len(self.user_ids)

    @property
    def num_tag_assignments(self) -> int:
        return len(self.tag_ids)

    def interaction_density(self) -> float:
        """Fraction of filled entries in ``Y``."""
        total = self.num_users * self.num_items
        return self.num_interactions / total if total else 0.0

    def tag_density(self) -> float:
        """Fraction of filled entries in ``Y'``."""
        total = self.num_items * self.num_tags
        return self.num_tag_assignments / total if total else 0.0

    # ------------------------------------------------------------------
    # cached sparse views
    # ------------------------------------------------------------------
    def interaction_matrix(self) -> sp.csr_matrix:
        """Binary ``|U| x |V|`` matrix ``Y`` (duplicates collapsed)."""
        if "Y" not in self._cache:
            mat = sp.coo_matrix(
                (
                    np.ones(self.num_interactions),
                    (self.user_ids, self.item_ids),
                ),
                shape=(self.num_users, self.num_items),
            )
            mat.sum_duplicates()
            mat.data[:] = 1.0
            self._cache["Y"] = mat.tocsr()
        return self._cache["Y"]

    def tag_matrix(self) -> sp.csr_matrix:
        """Binary ``|V| x |T|`` matrix ``Y'`` (duplicates collapsed)."""
        if "Yp" not in self._cache:
            mat = sp.coo_matrix(
                (
                    np.ones(self.num_tag_assignments),
                    (self.tag_item_ids, self.tag_ids),
                ),
                shape=(self.num_items, self.num_tags),
            )
            mat.sum_duplicates()
            mat.data[:] = 1.0
            self._cache["Yp"] = mat.tocsr()
        return self._cache["Yp"]

    # ------------------------------------------------------------------
    # adjacency lists
    # ------------------------------------------------------------------
    def items_of_user(self) -> List[np.ndarray]:
        """Per-user arrays of interacted item indices (``I_u^+``)."""
        if "items_of_user" not in self._cache:
            self._cache["items_of_user"] = _group_by(
                self.user_ids, self.item_ids, self.num_users
            )
        return self._cache["items_of_user"]

    def users_of_item(self) -> List[np.ndarray]:
        """Per-item arrays of interacting user indices (``I_u(v_j)``, Eq. 7)."""
        if "users_of_item" not in self._cache:
            self._cache["users_of_item"] = _group_by(
                self.item_ids, self.user_ids, self.num_items
            )
        return self._cache["users_of_item"]

    def tags_of_item(self) -> List[np.ndarray]:
        """Per-item arrays of assigned tag indices (used by Eq. 8)."""
        if "tags_of_item" not in self._cache:
            self._cache["tags_of_item"] = _group_by(
                self.tag_item_ids, self.tag_ids, self.num_items
            )
        return self._cache["tags_of_item"]

    def item_degrees(self) -> np.ndarray:
        """Number of interactions per item (popularity)."""
        return np.bincount(self.item_ids, minlength=self.num_items)

    def user_degrees(self) -> np.ndarray:
        """Number of interactions per user."""
        return np.bincount(self.user_ids, minlength=self.num_users)

    def tag_degrees(self) -> np.ndarray:
        """Number of items each tag is assigned to."""
        return np.bincount(self.tag_ids, minlength=self.num_tags)

    # ------------------------------------------------------------------
    # derived datasets
    # ------------------------------------------------------------------
    def with_interactions(
        self, user_ids: np.ndarray, item_ids: np.ndarray, name: Optional[str] = None
    ) -> "TagRecDataset":
        """Return a copy holding different interactions but the same tags."""
        return TagRecDataset(
            num_users=self.num_users,
            num_items=self.num_items,
            num_tags=self.num_tags,
            user_ids=np.asarray(user_ids),
            item_ids=np.asarray(item_ids),
            tag_item_ids=self.tag_item_ids,
            tag_ids=self.tag_ids,
            name=name or self.name,
        )

    def __repr__(self) -> str:
        return (
            f"TagRecDataset(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, tags={self.num_tags}, "
            f"interactions={self.num_interactions}, "
            f"tag_assignments={self.num_tag_assignments})"
        )


def _group_by(keys: np.ndarray, values: np.ndarray, num_groups: int) -> List[np.ndarray]:
    """Group ``values`` by integer ``keys`` in O(n log n)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    boundaries = np.searchsorted(sorted_keys, np.arange(num_groups + 1))
    return [
        sorted_values[boundaries[g] : boundaries[g + 1]] for g in range(num_groups)
    ]
