"""Calibrated synthetic dataset generator.

The paper evaluates on seven public datasets (Table I).  This offline
environment has no network access, so we substitute a generative model
that plants exactly the structures IMCAT's mechanisms rely on:

1. **Latent intent structure.**  A ground-truth set of ``num_factors``
   latent factors plays the role of user intents.  Users hold a Dirichlet
   preference over factors; each item has a dominant factor; each tag
   belongs to one factor.  Items receive tags mostly from their dominant
   factor, so tag clusters genuinely explain interaction factors — the
   hypothesis behind IRM (Section IV.A.2).
2. **Power-law popularity.**  Item popularity follows a Zipf law, giving
   the long-tail degree distribution of Fig. 7; user activity follows a
   heavy-tailed lognormal, giving cold-start users for Fig. 8.
3. **Noise interactions.**  A configurable fraction of interactions is
   uniform-random ("random clicks"), the noise source the paper argues
   intent disentanglement is robust to.

Presets mirror the seven Table I datasets.  Each preset stores the
paper-scale statistics for reporting and a generator configuration; a
``scale`` parameter shrinks user/item/tag counts proportionally so the
benchmark harness stays CPU-friendly while preserving average degrees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from .dataset import TagRecDataset


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the generative model.

    Attributes:
        name: dataset name.
        num_users / num_items / num_tags: entity counts.
        num_factors: ground-truth latent intents.
        mean_user_degree: average interactions per user (drives ``#UI``).
        mean_item_tags: average tags per item (drives ``#IT``).
        user_concentration: Dirichlet concentration of user preferences;
            smaller values give more focused (single-intent) users.
        item_offtopic: probability mass an item spreads over non-dominant
            factors.
        tag_offtopic: probability an item draws a tag outside its dominant
            factor.
        popularity_exponent: Zipf exponent of item popularity.
        degree_sigma: lognormal sigma of user activity (heavier tail for
            larger values).
        noise: fraction of interactions replaced by uniform random picks.
    """

    name: str
    num_users: int
    num_items: int
    num_tags: int
    num_factors: int = 8
    mean_user_degree: float = 20.0
    mean_item_tags: float = 4.0
    user_concentration: float = 0.3
    item_offtopic: float = 0.15
    tag_offtopic: float = 0.1
    popularity_exponent: float = 1.0
    degree_sigma: float = 0.8
    noise: float = 0.02

    def scaled(self, scale: float) -> "SyntheticConfig":
        """Shrink entity counts by ``scale`` keeping average degrees."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return replace(
            self,
            num_users=max(int(self.num_users * scale), 30),
            num_items=max(int(self.num_items * scale), 50),
            num_tags=max(int(self.num_tags * scale), self.num_factors * 4),
        )


@dataclass(frozen=True)
class SyntheticGroundTruth:
    """Ground-truth latent structure, exposed for diagnostics and tests."""

    user_preferences: np.ndarray  # (num_users, num_factors)
    item_factors: np.ndarray  # (num_items,) dominant factor per item
    tag_factors: np.ndarray  # (num_tags,) factor owning each tag
    item_popularity: np.ndarray  # (num_items,) sampling weight


def generate(
    config: SyntheticConfig,
    seed: int = 0,
    return_ground_truth: bool = False,
):
    """Sample a :class:`TagRecDataset` from the generative model.

    Args:
        config: generator parameters.
        seed: RNG seed (all randomness flows from it).
        return_ground_truth: also return the latent structure.

    Returns:
        The dataset, or ``(dataset, ground_truth)`` when requested.
    """
    rng = np.random.default_rng(seed)
    n_u, n_v, n_t, n_f = (
        config.num_users,
        config.num_items,
        config.num_tags,
        config.num_factors,
    )

    # --- latent structure -------------------------------------------------
    user_pref = rng.dirichlet(np.full(n_f, config.user_concentration), size=n_u)
    item_factor = rng.integers(0, n_f, size=n_v)
    item_profile = np.full((n_v, n_f), config.item_offtopic / max(n_f - 1, 1))
    item_profile[np.arange(n_v), item_factor] = 1.0 - config.item_offtopic

    # Zipf popularity over a random item permutation.
    ranks = rng.permutation(n_v) + 1.0
    popularity = ranks ** (-config.popularity_exponent)
    popularity /= popularity.sum()

    # --- interactions -----------------------------------------------------
    mu = np.log(config.mean_user_degree) - config.degree_sigma**2 / 2.0
    degrees = np.maximum(
        rng.lognormal(mu, config.degree_sigma, size=n_u).astype(int), 1
    )
    degrees = np.minimum(degrees, n_v - 1)

    user_chunks = []
    item_chunks = []
    chunk = 512
    for start in range(0, n_u, chunk):
        stop = min(start + chunk, n_u)
        affinity = user_pref[start:stop] @ item_profile.T  # (chunk, n_v)
        weights = affinity * popularity[None, :]
        # Mix in uniform noise clicks.
        weights = (1.0 - config.noise) * weights + config.noise * (
            weights.sum(axis=1, keepdims=True) / n_v
        )
        # Gumbel-top-k sampling without replacement per user.
        gumbel = rng.gumbel(size=weights.shape)
        scores = np.log(np.maximum(weights, 1e-300)) + gumbel
        for row, user in enumerate(range(start, stop)):
            k = degrees[user]
            picked = np.argpartition(scores[row], -k)[-k:]
            user_chunks.append(np.full(k, user, dtype=np.int64))
            item_chunks.append(picked.astype(np.int64))
    user_ids = np.concatenate(user_chunks)
    item_ids = np.concatenate(item_chunks)

    # --- tag vocabulary ---------------------------------------------------
    tag_factor = np.arange(n_t) % n_f
    rng.shuffle(tag_factor)
    # Zipf popularity of tags within each factor.
    tag_weight = np.zeros(n_t)
    for f in range(n_f):
        members = np.where(tag_factor == f)[0]
        tag_weight[members] = (np.arange(len(members)) + 1.0) ** -0.8
    tags_by_factor = [np.where(tag_factor == f)[0] for f in range(n_f)]

    # --- item-tag assignments ----------------------------------------------
    tag_item_chunks = []
    tag_chunks = []
    counts = np.maximum(rng.poisson(config.mean_item_tags, size=n_v), 1)
    for v in range(n_v):
        n_assign = counts[v]
        # Dominant factor with prob 1 - tag_offtopic, else uniform factor.
        factors = np.where(
            rng.random(n_assign) < config.tag_offtopic,
            rng.integers(0, n_f, size=n_assign),
            item_factor[v],
        )
        chosen = np.empty(n_assign, dtype=np.int64)
        for pos, f in enumerate(factors):
            members = tags_by_factor[f]
            w = tag_weight[members]
            chosen[pos] = rng.choice(members, p=w / w.sum())
        chosen = np.unique(chosen)
        tag_item_chunks.append(np.full(len(chosen), v, dtype=np.int64))
        tag_chunks.append(chosen)
    tag_item_ids = np.concatenate(tag_item_chunks)
    tag_ids = np.concatenate(tag_chunks)

    dataset = TagRecDataset(
        num_users=n_u,
        num_items=n_v,
        num_tags=n_t,
        user_ids=user_ids,
        item_ids=item_ids,
        tag_item_ids=tag_item_ids,
        tag_ids=tag_ids,
        name=config.name,
    )
    if return_ground_truth:
        truth = SyntheticGroundTruth(
            user_preferences=user_pref,
            item_factors=item_factor,
            tag_factors=tag_factor,
            item_popularity=popularity,
        )
        return dataset, truth
    return dataset


# ---------------------------------------------------------------------------
# Presets matching Table I of the paper
# ---------------------------------------------------------------------------

#: Paper-scale statistics from Table I, kept for reporting/benchmarks.
PAPER_STATISTICS: Dict[str, Dict[str, float]] = {
    "hetrec-mv": {
        "users": 2107, "items": 3872, "tags": 2071,
        "ui": 471482, "ui_density": 5.78, "ui_avg_degree": 223.77,
        "it": 38742, "it_density": 0.48, "it_avg_degree": 10.01,
    },
    "hetrec-fm": {
        "users": 1026, "items": 5817, "tags": 2283,
        "ui": 57976, "ui_density": 0.97, "ui_avg_degree": 56.51,
        "it": 77925, "it_density": 0.59, "it_avg_degree": 13.40,
    },
    "hetrec-del": {
        "users": 1274, "items": 5169, "tags": 4595,
        "ui": 19951, "ui_density": 0.30, "ui_avg_degree": 15.66,
        "it": 62147, "it_density": 0.26, "it_avg_degree": 12.02,
    },
    "citeulike": {
        "users": 4011, "items": 12408, "tags": 1579,
        "ui": 94512, "ui_density": 0.19, "ui_avg_degree": 23.56,
        "it": 125013, "it_density": 0.64, "it_avg_degree": 10.08,
    },
    "lastfm-tag": {
        "users": 18149, "items": 14548, "tags": 6822,
        "ui": 582791, "ui_density": 0.22, "ui_avg_degree": 32.11,
        "it": 97201, "it_density": 0.10, "it_avg_degree": 13.79,
    },
    "amzbook-tag": {
        "users": 50022, "items": 22370, "tags": 2345,
        "ui": 731777, "ui_density": 0.07, "ui_avg_degree": 14.63,
        "it": 246175, "it_density": 0.47, "it_avg_degree": 11.00,
    },
    "yelp-tag": {
        "users": 39856, "items": 26669, "tags": 1073,
        "ui": 1009922, "ui_density": 0.10, "ui_avg_degree": 25.34,
        "it": 569780, "it_density": 1.99, "it_avg_degree": 21.36,
    },
}

#: Generator presets calibrated so that at ``scale=1.0`` the entity counts
#: and average degrees match Table I.  ``mean_user_degree`` matches the
#: per-user interaction average; ``mean_item_tags`` matches ``#IT / |V|``.
PRESETS: Dict[str, SyntheticConfig] = {
    "hetrec-mv": SyntheticConfig(
        name="hetrec-mv", num_users=2107, num_items=3872, num_tags=2071,
        num_factors=8, mean_user_degree=223.77, mean_item_tags=10.0,
        popularity_exponent=0.8,
    ),
    "hetrec-fm": SyntheticConfig(
        name="hetrec-fm", num_users=1026, num_items=5817, num_tags=2283,
        num_factors=8, mean_user_degree=56.51, mean_item_tags=13.4,
    ),
    "hetrec-del": SyntheticConfig(
        name="hetrec-del", num_users=1274, num_items=5169, num_tags=4595,
        num_factors=16, mean_user_degree=15.66, mean_item_tags=12.0,
        popularity_exponent=1.1,
    ),
    "citeulike": SyntheticConfig(
        name="citeulike", num_users=4011, num_items=12408, num_tags=1579,
        num_factors=8, mean_user_degree=23.56, mean_item_tags=10.1,
    ),
    "lastfm-tag": SyntheticConfig(
        name="lastfm-tag", num_users=18149, num_items=14548, num_tags=6822,
        num_factors=8, mean_user_degree=32.11, mean_item_tags=13.8,
    ),
    "amzbook-tag": SyntheticConfig(
        name="amzbook-tag", num_users=50022, num_items=22370, num_tags=2345,
        num_factors=8, mean_user_degree=14.63, mean_item_tags=11.0,
        popularity_exponent=1.2,
    ),
    "yelp-tag": SyntheticConfig(
        name="yelp-tag", num_users=39856, num_items=26669, num_tags=1073,
        num_factors=8, mean_user_degree=25.34, mean_item_tags=21.4,
        popularity_exponent=1.1,
    ),
}

#: Names in the order the paper's tables list them.
DATASET_ORDER = [
    "hetrec-mv",
    "hetrec-fm",
    "hetrec-del",
    "citeulike",
    "lastfm-tag",
    "amzbook-tag",
    "yelp-tag",
]


def preset(name: str, scale: Optional[float] = None) -> SyntheticConfig:
    """Look up a dataset preset, optionally scaled down.

    Raises:
        KeyError: for unknown dataset names, listing the valid choices.
    """
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(PRESETS)}"
        )
    config = PRESETS[key]
    if scale is not None and scale != 1.0:
        config = config.scaled(scale)
    return config


def generate_preset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    return_ground_truth: bool = False,
):
    """Generate a preset dataset at the given scale."""
    return generate(
        preset(name, scale), seed=seed, return_ground_truth=return_ground_truth
    )
