"""Render a timing/counter registry pair into reports.

The text format is a share-of-total breakdown sorted by time::

    phase                       total s   count    mean ms   share
    forward                      12.041    4800      2.509   61.3%
    backward                      5.310    4800      1.106   27.0%
    ...

``to_dict`` produces the JSON payload persisted by the hot-path
benchmarks, so one schema serves interactive printing, CI comparisons,
and the ``BENCH_hotpaths.json`` trajectory file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from .counters import CounterRegistry
from .timers import StopwatchRegistry


@dataclass
class PerfReport:
    """Snapshot of one run's timers and counters."""

    timers: Dict[str, dict] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_registries(
        cls,
        timers: StopwatchRegistry,
        counters: Optional[CounterRegistry] = None,
    ) -> "PerfReport":
        return cls(
            timers=timers.as_dict(),
            counters=counters.as_dict() if counters is not None else {},
        )

    def total_seconds(self) -> float:
        """Sum over top-level scopes (nested scopes are already inside)."""
        return sum(
            stat["total"] for path, stat in self.timers.items() if "/" not in path
        )

    def to_dict(self) -> dict:
        return {"timers": self.timers, "counters": self.counters}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self, title: str = "perf breakdown") -> str:
        """Align the breakdown as a text table."""
        lines = [title, ""]
        header = f"{'phase':<32} {'total s':>9} {'count':>7} {'mean ms':>9} {'share':>7}"
        lines.append(header)
        lines.append("-" * len(header))
        grand = self.total_seconds()
        for path, stat in sorted(
            self.timers.items(), key=lambda kv: -kv[1]["total"]
        ):
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            share = stat["total"] / grand if grand > 0 else 0.0
            lines.append(
                f"{label:<32} {stat['total']:>9.3f} {stat['count']:>7d} "
                f"{1000.0 * stat['mean']:>9.3f} {100.0 * share:>6.1f}%"
            )
        if self.counters:
            lines.append("")
            for name, amount in sorted(self.counters.items()):
                lines.append(f"{name:<32} {amount:>9d}")
        return "\n".join(lines)


def format_report(
    timers: StopwatchRegistry,
    counters: Optional[CounterRegistry] = None,
    title: str = "perf breakdown",
) -> str:
    """One-call text rendering of live registries."""
    return PerfReport.from_registries(timers, counters).format(title)
