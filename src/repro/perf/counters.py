"""Monotonic event counters complementing the wall-clock timers.

Counters track *how much work* a phase did (steps, triplets sampled,
users ranked) so reports can derive throughputs by dividing a counter
by its matching timer total.
"""

from __future__ import annotations

from typing import Dict


class CounterRegistry:
    """Named integer counters with a tiny increment API."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creates it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def rate(self, name: str, seconds: float) -> float:
        """Events per second, 0.0 when no time was spent."""
        return self.get(name) / seconds if seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {name: self._counts[name] for name in sorted(self._counts)}

    def merge(self, other: "CounterRegistry") -> None:
        for name, amount in other.counts().items():
            self.add(name, amount)

    def reset(self) -> None:
        self._counts.clear()
