"""Monotonic event counters complementing the wall-clock timers.

Counters track *how much work* a phase did (steps, triplets sampled,
users ranked) so reports can derive throughputs by dividing a counter
by its matching timer total.

Counters are thread-safe: the serving stack increments them from
request threads while a reload poller reads them, so every
read-modify-write holds one registry-wide lock.  Uncontended
acquisition is ~100ns — irrelevant next to what any counted event
costs.
"""

from __future__ import annotations

from typing import Dict

from ..concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class CounterRegistry:
    """Named integer counters with a tiny increment API."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lock = new_lock("perf.CounterRegistry")

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creates it at zero)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def rate(self, name: str, seconds: float) -> float:
        """Events per second, 0.0 when no time was spent."""
        return self.get(name) / seconds if seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: self._counts[name] for name in sorted(self._counts)}

    def merge(self, other: "CounterRegistry") -> None:
        # Snapshot first: taking both locks at once could deadlock with
        # a concurrent merge in the opposite direction.
        for name, amount in other.counts().items():
            self.add(name, amount)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
