"""Nested wall-clock timers for phase-by-phase run breakdowns.

A :class:`StopwatchRegistry` aggregates named timing scopes opened with
:meth:`StopwatchRegistry.timed`.  Scopes nest: a scope opened while
another is active records under the slash-joined path of the active
stack (``"epoch/eval/score"``), so a single registry threaded through
the trainer and the evaluator yields a hierarchical breakdown without
either component knowing about the other.

Timing uses :func:`time.perf_counter` and adds one dictionary update
per scope exit, so the registry is cheap enough to leave enabled on the
training hot path.

The registry is thread-safe: aggregates live behind one lock, and the
nesting stack is thread-local so scopes opened on different threads
(e.g. concurrent serving requests) qualify against their own stack
rather than interleaving into nonsense paths.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from ..concurrency import new_lock, shared_state


@dataclass
class TimerStat:
    """Aggregate statistics for one named timing scope."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


@shared_state(guard="_lock", exempt=("_local", "_stack"))
class StopwatchRegistry:
    """Collects nested named timings for one run.

    Usage::

        perf = StopwatchRegistry()
        with perf.timed("epoch"):
            with perf.timed("forward"):
                ...
        perf.total("epoch/forward")  # seconds inside the nested scope

    The aggregates sit under ``_lock``; the nesting stack is per-thread
    state in ``_local`` (hence exempt from lock discipline).
    """

    def __init__(self) -> None:
        self._stats: Dict[str, TimerStat] = {}
        self._local = threading.local()
        self._lock = new_lock("perf.StopwatchRegistry")

    @property
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time a scope under ``name``, prefixed by any active scopes."""
        stack = self._stack
        path = self._qualify(name)
        stack.append(path)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            self.record(path, elapsed)

    def record(self, path: str, seconds: float) -> None:
        """Record an externally measured duration under ``path``."""
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = TimerStat()
            stat.record(seconds)

    def _qualify(self, name: str) -> str:
        stack = self._stack
        return f"{stack[-1]}/{name}" if stack else name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, TimerStat]:
        """All aggregates keyed by slash-joined scope path."""
        with self._lock:
            return dict(self._stats)

    def total(self, path: str) -> float:
        """Total seconds recorded under ``path`` (0.0 if never entered)."""
        with self._lock:
            stat = self._stats.get(path)
            return stat.total if stat is not None else 0.0

    def count(self, path: str) -> int:
        """Number of times ``path`` was entered."""
        with self._lock:
            stat = self._stats.get(path)
            return stat.count if stat is not None else 0

    def exclusive_total(self, path: str) -> float:
        """Seconds in ``path`` not covered by its direct child scopes."""
        with self._lock:
            children = sum(
                stat.total
                for child, stat in self._stats.items()
                if child.startswith(path + "/")
                and "/" not in child[len(path) + 1 :]
            )
            own = self._stats.get(path)
            return (own.total if own is not None else 0.0) - children

    def as_dict(self) -> Dict[str, dict]:
        """JSON-safe representation of every scope."""
        with self._lock:
            return {
                path: stat.as_dict()
                for path, stat in sorted(self._stats.items())
            }

    def merge(self, other: "StopwatchRegistry") -> None:
        """Fold another registry's aggregates into this one.

        Snapshots ``other`` first so the two locks are never held at
        once (two concurrent opposite-direction merges cannot deadlock).
        """
        for path, stat in other.stats().items():
            with self._lock:
                mine = self._stats.get(path)
                if mine is None:
                    mine = self._stats[path] = TimerStat()
                mine.count += stat.count
                mine.total += stat.total
                mine.min = min(mine.min, stat.min)
                mine.max = max(mine.max, stat.max)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
        self._stack.clear()
