"""Lightweight performance instrumentation.

- :class:`StopwatchRegistry` — nested named wall-clock timers;
- :class:`CounterRegistry` — monotonic work counters;
- :class:`PerfReport` / :func:`format_report` — text + JSON rendering.

The trainer and evaluator thread one registry pair through a run so
every experiment can print a phase-by-phase breakdown (sampling /
forward / backward / cluster-refresh / eval) and the hot-path
benchmarks can persist throughputs for regression tracking.
"""

from .counters import CounterRegistry
from .report import PerfReport, format_report
from .timers import StopwatchRegistry, TimerStat

__all__ = [
    "CounterRegistry",
    "PerfReport",
    "StopwatchRegistry",
    "TimerStat",
    "format_report",
]
