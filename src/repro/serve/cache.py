"""TTL'd LRU cache holding the last good response per user.

Second rung of the degradation ladder: when live scoring fails (error,
deadline, open breaker) the service re-serves the user's most recent
successful recommendation list, as long as it is younger than the TTL.
Stale beats wrong-for-everyone (the popularity rung) because it is still
personalised.

Bounded by entry count with least-recently-*used* eviction; expiry is
lazy (checked on read) plus an explicit :meth:`purge_expired` sweep so
the health probe can report an honest entry count.  The clock is
injectable for deterministic tests.

Thread safety: a single mutex serialises every operation.  ``get`` is
check-then-act (lookup, expiry test, delete-or-touch) over an
``OrderedDict``, so without the lock two threads can race a concurrent
``put`` into a ``KeyError`` on the ``move_to_end``/``del`` — the
concurrency pass (LNT009) flags exactly that shape when unguarded.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from ..concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class TTLCache:
    """LRU cache whose entries expire ``ttl`` seconds after insertion.

    Args:
        max_entries: capacity; the least recently used entry is evicted
            when full.
        ttl: seconds an entry stays servable after :meth:`put`.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = new_lock("serve.TTLCache")
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key`` (restarts its TTL, marks it fresh)."""
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None`` when absent or expired.

        A hit refreshes LRU recency (not the TTL); an expired entry is
        dropped on sight.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            expires, value = entry
            if self._clock() >= expires:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return value

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were removed."""
        with self._lock:
            now = self._clock()
            stale = [
                key
                for key, (expires, _) in self._entries.items()
                if now >= expires
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not None
