"""The resilient recommendation service.

:class:`RecommendationService` wraps any :class:`repro.models.base.
Recommender` (via a provider) behind a request API that *always
answers*.  Failure handling is layered:

- **deadlines** — each request carries a time budget; scoring that
  overruns it is treated as a failure and the request degrades instead
  of blocking the caller;
- **bounded retry** — transient scoring errors are retried with
  exponential backoff and jitter, but only while the deadline budget
  allows;
- **circuit breaker** — consecutive live-path failures open the
  breaker, short-circuiting straight to the degraded rungs until a
  half-open probe proves the model healthy again;
- **degradation ladder** — live model score → the user's last good
  response (TTL'd LRU stale cache) → global popularity ranking.  The
  rung that answered is recorded on every response.

The only exceptions that escape :meth:`RecommendationService.recommend`
are ``ValueError`` for malformed requests (non-positive ``top_n``,
out-of-range user); infrastructure failure is absorbed into degraded
responses, which is the property the chaos tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set

import numpy as np

from .. import obs, testing
from ..concurrency import new_lock, shared_state
from ..eval.metrics import rank_items
from ..perf import CounterRegistry, StopwatchRegistry
from .breaker import CLOSED, CircuitBreaker
from .cache import TTLCache
from .provider import ModelUnavailable, StaticModelProvider

#: Degradation-ladder rungs, best to worst (response.level values).
LEVEL_LIVE = "live"
LEVEL_STALE = "stale"
LEVEL_POPULARITY = "popularity"
LEVELS = (LEVEL_LIVE, LEVEL_STALE, LEVEL_POPULARITY)


class DeadlineExceeded(RuntimeError):
    """A request's time budget ran out on the live-scoring path."""


class Deadline:
    """Absolute expiry computed once per request from a relative budget.

    ``seconds=None`` means unbounded (never expires).
    """

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline must be >= 0, got {seconds}")
        self._clock = clock
        self._expires = None if seconds is None else clock() + seconds

    def remaining(self) -> float:
        if self._expires is None:
            return float("inf")
        return max(0.0, self._expires - self._clock())

    def expired(self) -> bool:
        return self._expires is not None and self._clock() >= self._expires


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    ``max_attempts`` counts the first try: 3 means one try plus at most
    two retries.  Backoff for retry *k* is
    ``min(base_delay * multiplier**(k-1), max_delay)`` scaled by a
    uniform jitter in ``[0.5, 1.0]`` so synchronized clients do not
    retry in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        # Jitter draws from this seeded generator unless the caller
        # injects their own, so two policies built with the same seed
        # produce identical backoff traces (deterministic chaos runs).
        self._rng = np.random.default_rng(self.seed)

    def backoff(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        cap = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        draw = rng if rng is not None else self._rng
        return cap * (0.5 + 0.5 * float(draw.random()))


@dataclass
class ServeResponse:
    """One answered request, whatever it took.

    ``level`` names the degradation rung that produced ``items``:
    ``"live"`` (fresh model score), ``"stale"`` (re-served from the
    user's last good response), or ``"popularity"`` (global fallback).
    """

    user: int
    items: np.ndarray = field(repr=False)
    level: str
    latency: float
    retries: int = 0
    deadline_hit: bool = False
    breaker_state: str = CLOSED
    model_version: str = "static"

    @property
    def degraded(self) -> bool:
        return self.level != LEVEL_LIVE


@shared_state(guard="_lock")
class RecommendationService:
    """Hardened top-N serving over any provider/model.

    Thread safety: the service's own mutable state — the request
    counter driving piggybacked reloads and the lazily-built popularity
    fallback — sits under one mutex; everything else it touches
    (breaker, stale cache, provider, perf registries) synchronises
    itself.  Scoring, retries, and backoff sleeps all run outside the
    lock, so concurrent requests only serialise for a few counter
    updates.

    Args:
        provider: a model provider (``model() / ready() / version() /
            poll()``) or a bare model, which gets wrapped in a
            :class:`StaticModelProvider`.
        popularity: per-item interaction counts used by the last-resort
            fallback rung (typically ``split.train.item_degrees()``).
            ``None`` degrades the rung to an arbitrary-but-valid
            ranking over the model's item range.
        default_top_n: list length when a request does not specify one.
        default_deadline: per-request time budget in seconds (``None``
            disables deadlines unless a request sets its own).
        retry: live-path retry policy.
        breaker: circuit breaker (a default one is built when omitted).
        stale_ttl / stale_entries: stale-response cache tuning.
        reload_every: when positive, ``provider.poll()`` runs every
            N-th request (hot reload piggybacked on traffic).
        batcher: optional :class:`repro.serve.batching.MicroBatcher`;
            the live rung then scores through the shared micro-batch
            (one matmul per batch of concurrent requests) instead of a
            per-request ``model.recommend`` call.  Batched output is
            bit-identical to unbatched scoring (property-tested), so
            the ladder, breaker, and deadline semantics are unchanged —
            batch-level failures surface per request exactly like model
            failures.  When both ``retrieval`` and ``batcher`` are set
            the retrieval tier wins (it already shortlists per user).
        retrieval: optional :class:`repro.retrieval.RetrievalTier`; the
            live rung then answers from the cluster-routed shortlist
            (sub-linear in the catalogue) and any retrieval-layer
            problem — stale index, build failure, thin shortlist —
            falls back to exact scoring within the same rung, counted
            under ``serve.retrieval.*``.  The degradation ladder and
            breaker semantics are unchanged.
        counters / timers: perf registries to share with a wider app
            (a :class:`repro.obs.MetricsRegistry` drops in for
            ``counters`` unchanged).
        tracer: optional :class:`repro.obs.Tracer`; falls back to the
            process-global tracer.  Each answered request records a
            ``serve:request`` span tagged with the degradation rung,
            retry count, breaker state, and deadline outcome, with one
            ``serve:attempt`` child per live-scoring try; request
            latencies also feed the ``serve.request_seconds`` histogram
            of :func:`repro.obs.get_metrics`.
        clock / sleep / jitter_seed: injectable time sources for tests.
    """

    def __init__(
        self,
        provider: Any,
        popularity: Optional[np.ndarray] = None,
        *,
        default_top_n: int = 20,
        default_deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        stale_ttl: float = 300.0,
        stale_entries: int = 1024,
        reload_every: int = 0,
        batcher: Optional[Any] = None,
        retrieval: Optional[Any] = None,
        counters: Optional[CounterRegistry] = None,
        timers: Optional[StopwatchRegistry] = None,
        tracer: Optional[obs.Tracer] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        jitter_seed: int = 0,
    ) -> None:
        if default_top_n < 1:
            raise ValueError(f"default_top_n must be >= 1, got {default_top_n}")
        if reload_every < 0:
            raise ValueError(f"reload_every must be >= 0, got {reload_every}")
        if not callable(getattr(provider, "model", None)):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.default_top_n = default_top_n
        self.default_deadline = default_deadline
        self.retry = retry or RetryPolicy()
        self.counters = counters if counters is not None else CounterRegistry()
        self.timers = timers if timers is not None else StopwatchRegistry()
        self.tracer = obs.resolve_tracer(tracer)
        self.breaker = breaker or CircuitBreaker(clock=clock)
        # Route breaker transitions into counters even for a caller-built
        # breaker that has no listener yet.
        if self.breaker._on_transition is None:
            self.breaker._on_transition = self._on_breaker_transition
        self.stale_cache = TTLCache(
            max_entries=stale_entries, ttl=stale_ttl, clock=clock
        )
        self.reload_every = reload_every
        self.batcher = batcher
        if batcher is not None and getattr(batcher, "counters", None) is None:
            batcher.counters = self.counters
        self.retrieval = retrieval
        if retrieval is not None and getattr(retrieval, "counters", None) is None:
            # Tier outcomes surface in health() with the other counters.
            retrieval.counters = self.counters
        self._clock = clock
        self._sleep = sleep
        self._rng = np.random.default_rng(jitter_seed)
        self._lock = new_lock("serve.RecommendationService")
        self._popularity = (
            None if popularity is None
            else np.asarray(popularity, dtype=np.float64)
        )
        self._requests_seen = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: Any, train_data: Any = None, **kwargs: Any
    ) -> "RecommendationService":
        """Serve a trained model, deriving the popularity fallback from
        its training interactions (a :class:`~repro.data.TagRecDataset`)."""
        popularity = None if train_data is None else train_data.item_degrees()
        return cls(model, popularity=popularity, **kwargs)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int,
        top_n: Optional[int] = None,
        exclude: Optional[Iterable[int]] = None,
        deadline: Optional[float] = None,
    ) -> ServeResponse:
        """Answer one top-N request; never raises for backend failure.

        Args:
            user: user index (``ValueError`` when malformed).
            top_n: list length (default ``default_top_n``).
            exclude: item indices that must not be recommended on any
                rung (typically the user's training items).
            deadline: per-request budget in seconds, overriding
                ``default_deadline``.
        """
        top_n = self.default_top_n if top_n is None else int(top_n)
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        user = int(user)
        if user < 0:
            raise ValueError(f"user must be >= 0, got {user}")
        self._validate_user_range(user)

        start = self._clock()
        with self.tracer.span("serve:request", user=user) as span:
            self.counters.add("serve.requests")
            with self._lock:
                self._requests_seen += 1
                seen = self._requests_seen
            # Reload outside the lock: provider polls do file I/O.
            if self.reload_every and seen % self.reload_every == 0:
                self.poll_reload()

            budget = deadline if deadline is not None else self.default_deadline
            request_deadline = Deadline(budget, self._clock)
            excluded: Set[int] = set(int(i) for i in exclude) if exclude else set()

            items: Optional[np.ndarray] = None
            level = LEVEL_POPULARITY
            retries = 0
            if self.breaker.allow():
                try:
                    items, retries = self._score_live(
                        user, top_n, excluded, request_deadline
                    )
                    self.breaker.record_success()
                    level = LEVEL_LIVE
                    self.stale_cache.put(user, items)
                except DeadlineExceeded:
                    self.counters.add("serve.deadline_exceeded")
                    self.breaker.record_failure()
                except ModelUnavailable:
                    self.counters.add("serve.unready")
                except Exception:
                    self.counters.add("serve.errors")
                    self.breaker.record_failure()
            else:
                self.counters.add("serve.breaker.short_circuit")

            if items is None:
                items = self._from_stale(user, top_n, excluded)
                if items is not None:
                    level = LEVEL_STALE

            if items is None:
                items = self._popular(top_n, excluded)
                level = LEVEL_POPULARITY

            self.counters.add(f"serve.responses.{level}")
            if level != LEVEL_LIVE:
                self.counters.add("serve.degraded")
            latency = self._clock() - start
            self.timers.record("serve.request", latency)
            breaker_state = self.breaker.state
            deadline_hit = request_deadline.expired()
            span.set_attributes(
                level=level,
                retries=retries,
                breaker=breaker_state,
                deadline_hit=deadline_hit,
            )
        obs.get_metrics().histogram("serve.request_seconds").observe(latency)
        return ServeResponse(
            user=user,
            items=items,
            level=level,
            latency=latency,
            retries=retries,
            deadline_hit=deadline_hit,
            breaker_state=breaker_state,
            model_version=self.provider.version(),
        )

    # ------------------------------------------------------------------
    # ladder rungs
    # ------------------------------------------------------------------
    def _score_live(
        self, user: int, top_n: int, exclude: Set[int], deadline: Deadline
    ):
        """Live rung: score with retry/backoff inside the deadline."""
        attempt = 0
        while True:
            if deadline.expired():
                raise DeadlineExceeded(
                    f"deadline expired before scoring attempt {attempt + 1}"
                )
            attempt += 1
            try:
                self.counters.add("serve.score.attempts")
                with self.timers.timed("serve.score"), self.tracer.span(
                    "serve:attempt", attempt=attempt
                ):
                    testing.check(testing.SERVE_SCORE)
                    testing.delay(testing.SERVE_SCORE)
                    model = self.provider.model()
                    items = None
                    if self.retrieval is not None:
                        items = self.retrieval.recommend(
                            self.provider, user, top_n=top_n, exclude=exclude
                        )
                    if items is None and self.batcher is not None:
                        items = self.batcher.recommend(
                            user, top_n=top_n, exclude=exclude
                        )
                    if items is None:
                        items = model.recommend(
                            user, top_n=top_n, exclude=exclude
                        )
            except ModelUnavailable:
                raise
            except Exception:
                self.counters.add("serve.score.errors")
                if attempt >= self.retry.max_attempts:
                    raise
                backoff = self.retry.backoff(attempt, self._rng)
                if deadline.remaining() <= backoff:
                    raise
                self.counters.add("serve.retries")
                self._sleep(backoff)
                continue
            if deadline.expired():
                # The answer arrived after the caller's budget: the
                # caller has already timed out, so treat it as a miss
                # (and a breaker failure signal — slow is broken).
                raise DeadlineExceeded("scoring completed after the deadline")
            return np.asarray(items), attempt - 1

    def _from_stale(
        self, user: int, top_n: int, exclude: Set[int]
    ) -> Optional[np.ndarray]:
        """Stale rung: the user's last good list, minus excluded items."""
        cached = self.stale_cache.get(user)
        if cached is None:
            self.counters.add("serve.cache.misses")
            return None
        usable = np.asarray([i for i in cached if int(i) not in exclude])
        if usable.size == 0:
            self.counters.add("serve.cache.misses")
            return None
        self.counters.add("serve.cache.hits")
        return usable[:top_n]

    def _popular(self, top_n: int, exclude: Set[int]) -> np.ndarray:
        """Last-resort rung: global popularity order (always answers)."""
        scores = self._popularity_scores()
        if scores is None:
            return np.empty(0, dtype=np.int64)
        return rank_items(scores, exclude, top_n)

    def _popularity_scores(self) -> Optional[np.ndarray]:
        # Lazy init under the lock: two degraded requests racing here
        # would otherwise both build (and one would clobber) the table.
        with self._lock:
            if self._popularity is None:
                try:
                    num_items = self.provider.model().num_items
                except Exception:
                    return None
                # Uniform scores: an arbitrary but valid, in-range ranking.
                self._popularity = np.zeros(num_items, dtype=np.float64)
            return self._popularity

    def _validate_user_range(self, user: int) -> None:
        if not self.provider.ready():
            return
        num_users = getattr(self.provider.model(), "num_users", None)
        if num_users is not None and user >= num_users:
            raise ValueError(
                f"user {user} out of range (model serves {num_users} users)"
            )

    # ------------------------------------------------------------------
    # hot reload
    # ------------------------------------------------------------------
    def poll_reload(self) -> str:
        """Ask the provider for a newer model; outcome lands in the
        ``serve.reload.*`` counters and is returned.  Never raises."""
        try:
            outcome = self.provider.poll()
        except Exception:  # a broken reload must not break serving
            outcome = "error"
        self.counters.add(f"serve.reload.{outcome}")
        return outcome

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """Readiness probe: can this process answer live traffic at all?"""
        return bool(self.provider.ready())

    def health(self) -> Dict[str, Any]:
        """Liveness/health probe snapshot.

        ``status`` is ``"ok"`` (ready, breaker closed), ``"degraded"``
        (ready but the breaker is open or half-open), or ``"unready"``
        (no model loaded yet).
        """
        breaker_state = self.breaker.state
        ready = self.ready()
        if not ready:
            status = "unready"
        elif breaker_state == CLOSED:
            status = "ok"
        else:
            status = "degraded"
        self.stale_cache.purge_expired()
        return {
            "status": status,
            "ready": ready,
            "breaker": breaker_state,
            "model_version": self.provider.version(),
            "stale_entries": len(self.stale_cache),
            "counters": self.counters.as_dict(),
        }

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.counters.add(f"serve.breaker.{new}")
