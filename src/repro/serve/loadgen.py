"""Zipf load generation, SLO assertion, and the serving capacity bench.

The scale-out story is only honest with a harness that can hammer the
pool the way production traffic would and fail loudly when capacity or
resilience regresses.  This module provides that harness:

- :class:`ZipfTraffic` — a **seed-deterministic** open-loop traffic
  model: user popularity follows a Zipf law (configurable ``skew``)
  over a seeded rank permutation, arrivals are exponential at a target
  ``rps``.  Same seed → byte-identical request trace (and, driven
  against fake clocks, byte-identical summary stats), so the bench
  gate is reproducible in CI.
- :class:`FaultWindow` — a chaos schedule entry: crash or slow one
  worker (or the scoring path) for a slice of the trace, or hot-reload
  checkpoints mid-run.  Windows partition the trace; requests inside a
  window run concurrently with the fault armed.
- :func:`run_load` — drive any service (sharded pool or single
  :class:`~repro.serve.service.RecommendationService`) with N client
  threads, optionally pacing to the trace's arrival times, and collect
  a per-request record stream.
- :class:`LoadReport` / :class:`SLO` — p50/p99 latency, throughput,
  error count, per-rung and per-worker response counts, the obs
  histogram snapshot as an audit trail, and hard SLO assertions
  (p99 bound, **zero errors**, degradation-rung budget).
- :func:`write_bench` — emit ``BENCH_serve.json`` operating points so
  capacity regressions are visible per PR (``benchmarks/bench_serve.py``
  records 1-worker vs 4-worker points).

``python -m repro.serve --workers N --rps R`` wires all of this behind
the CLI; ``make load-smoke`` is the CI gate.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs, testing

#: Degradation rungs a report counts (mirrors repro.serve.service.LEVELS).
from .service import LEVELS


class SLOViolation(AssertionError):
    """A load run breached its service-level objectives."""


@dataclass(frozen=True)
class Request:
    """One scheduled request: arrival offset (seconds) and user id."""

    index: int
    at: float
    user: int


class ZipfTraffic:
    """Deterministic Zipf-over-users traffic at a target request rate.

    Args:
        num_users: user-id space (requests draw from ``[0, num_users)``;
            set to millions to model a large population — sampling is
            vectorised).
        requests: trace length (mutually exclusive with ``duration``).
        rps: mean arrival rate (exponential inter-arrivals).
        duration: alternative sizing — ``int(rps * duration)`` requests.
        skew: Zipf exponent ``s``; rank-``r`` user has weight
            ``r**-s``.  ``s≈1.1`` models typical heavy-tailed traffic;
            0 degenerates to uniform.
        seed: the determinism anchor — same seed, same trace, bit for
            bit (asserted by ``tests/serve/test_loadgen.py``).
    """

    def __init__(
        self,
        num_users: int,
        requests: Optional[int] = None,
        *,
        rps: float = 100.0,
        duration: Optional[float] = None,
        skew: float = 1.1,
        seed: int = 0,
    ) -> None:
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if rps <= 0:
            raise ValueError(f"rps must be > 0, got {rps}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if (requests is None) == (duration is None):
            raise ValueError("size the trace with exactly one of "
                             "requests= or duration=")
        if requests is None:
            requests = max(int(rps * duration), 1)
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.num_users = num_users
        self.requests = requests
        self.rps = rps
        self.skew = skew
        self.seed = seed
        self._trace: Optional[List[Request]] = None

    def trace(self) -> List[Request]:
        """The full request trace (computed once, then cached)."""
        if self._trace is None:
            rng = np.random.default_rng(self.seed)
            weights = np.arange(1, self.num_users + 1, dtype=np.float64)
            weights **= -self.skew
            weights /= weights.sum()
            # Which user id holds which popularity rank is itself seeded,
            # so hot users differ between seeds (and between A/B pools).
            ranked_users = rng.permutation(self.num_users)
            ranks = rng.choice(self.num_users, size=self.requests, p=weights)
            users = ranked_users[ranks]
            arrivals = np.cumsum(rng.exponential(1.0 / self.rps,
                                                 size=self.requests))
            self._trace = [
                Request(index=i, at=float(arrivals[i]), user=int(users[i]))
                for i in range(self.requests)
            ]
        return self._trace

    def digest(self) -> str:
        """SHA-256 over the trace — the reproducibility fingerprint."""
        hasher = hashlib.sha256()
        for request in self.trace():
            hasher.update(
                f"{request.index}:{request.at:.9f}:{request.user}\n".encode()
            )
        return hasher.hexdigest()


@dataclass(frozen=True)
class FaultWindow:
    """Chaos armed over ``[start, stop)`` request indices of a trace.

    Kinds:
        ``worker-crash``  — the targeted worker (or any worker when
            ``worker`` is ``None``) raises on every dispatch;
        ``worker-slow``   — the targeted worker's dispatches sleep
            ``seconds`` (a slow shard; deadlines fire);
        ``score-crash``   — the scoring path inside every worker
            raises (breakers open, ladders degrade);
        ``score-slow``    — scoring sleeps ``seconds``;
        ``reload``        — no fault armed; the service's
            ``poll_reload()`` runs before the window (mid-run
            checkpoint hot reload under load);
        ``proc-kill``     — SIGKILL the targeted worker *process* at
            the window boundary (process pools only);
        ``proc-hang``     — stall the targeted worker process for
            ``seconds`` without exiting (heartbeats go quiet, the
            supervisor convicts and respawns it);
        ``proc-corrupt``  — the targeted worker's next ``count``
            scoring replies arrive with damaged frames (CRC failures
            poison the channel; the front door reroutes).

    The ``proc-*`` kinds are one-shot actions against real processes
    (they fire via ``service.inject_fault`` when the window opens)
    rather than armed fault sites, because the chaos they model lives
    outside the serving process.
    """

    start: int
    stop: int
    kind: str
    worker: Optional[int] = None
    seconds: float = 0.0
    count: int = 1

    KINDS = (
        "worker-crash", "worker-slow", "score-crash", "score-slow", "reload",
        "proc-kill", "proc-hang", "proc-corrupt",
    )
    PROC_KINDS = ("proc-kill", "proc-hang", "proc-corrupt")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"kind must be one of {self.KINDS}, got {self.kind!r}"
            )
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    def _site(self) -> str:
        if self.kind.startswith("worker"):
            if self.worker is None:
                return testing.SERVE_WORKER
            return testing.worker_site(self.worker)
        return testing.SERVE_SCORE

    def arm(self, stack: ExitStack, service: Optional[Any] = None) -> None:
        """Enter this window's fault context(s) on ``stack``.

        ``proc-*`` kinds instead fire one real process-level fault
        through ``service.inject_fault`` as the window opens; a service
        without that hook (thread pools) makes them a no-op, so one
        chaos schedule can drive both backends.
        """
        if self.kind == "reload":
            return
        if self.kind in self.PROC_KINDS:
            inject = getattr(service, "inject_fault", None)
            if inject is not None:
                inject(
                    self.kind,
                    worker=self.worker or 0,
                    seconds=self.seconds,
                    frames=self.count,
                )
            return
        if self.kind.endswith("-crash"):
            stack.enter_context(
                testing.CrashPoint(self._site(), at=1, every=1)
            )
        else:
            stack.enter_context(
                testing.Latency(self._site(), seconds=self.seconds)
            )


@dataclass(frozen=True)
class SLO:
    """Service-level objectives a load run must honour.

    ``max_errors`` defaults to the contract: zero requests may error.
    ``min_live_fraction`` / ``max_popularity_fraction`` form the
    degradation-rung budget: chaos may push traffic down the ladder,
    but most answers must stay personalised.
    """

    p99_seconds: float = 0.5
    max_errors: int = 0
    min_live_fraction: float = 0.5
    max_popularity_fraction: float = 0.25


@dataclass
class LoadReport:
    """Everything one load run produced: records, stats, audit trail."""

    records: List[dict]
    wall_seconds: float
    trace_digest: str
    workers: int
    metrics_snapshot: dict = field(default_factory=dict, repr=False)

    def latencies(self) -> np.ndarray:
        ok = [r["latency"] for r in self.records if not r["error"]]
        return np.asarray(ok, dtype=np.float64)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe stats: deterministic counts + measured latencies."""
        latencies = self.latencies()
        errors = sum(1 for r in self.records if r["error"])
        by_level = {level: 0 for level in LEVELS}
        by_worker: Dict[str, int] = {}
        rerouted = 0
        for record in self.records:
            if record["error"]:
                continue
            by_level[record["level"]] = by_level.get(record["level"], 0) + 1
            worker = record.get("worker")
            key = "frontdoor" if worker is None else str(worker)
            by_worker[key] = by_worker.get(key, 0) + 1
            rerouted += record.get("rerouted", 0)
        wall = max(self.wall_seconds, 1e-9)
        return {
            "requests": len(self.records),
            "errors": errors,
            "throughput_rps": len(self.records) / wall,
            "wall_seconds": self.wall_seconds,
            "latency_p50_seconds": (
                float(np.percentile(latencies, 50)) if latencies.size else 0.0
            ),
            "latency_p99_seconds": (
                float(np.percentile(latencies, 99)) if latencies.size else 0.0
            ),
            "latency_mean_seconds": (
                float(latencies.mean()) if latencies.size else 0.0
            ),
            "responses_by_level": dict(sorted(by_level.items())),
            "responses_by_worker": dict(sorted(by_worker.items())),
            "rerouted": rerouted,
            "workers": self.workers,
            "trace_sha256": self.trace_digest,
        }

    def violations(self, slo: SLO) -> List[str]:
        """SLO breaches in this run (empty list == within budget)."""
        stats = self.summary()
        answered = stats["requests"] - stats["errors"]
        found: List[str] = []
        if stats["errors"] > slo.max_errors:
            found.append(
                f"errors: {stats['errors']} > allowed {slo.max_errors}"
            )
        if stats["latency_p99_seconds"] > slo.p99_seconds:
            found.append(
                f"p99 latency {stats['latency_p99_seconds']:.4f}s > SLO "
                f"{slo.p99_seconds:.4f}s"
            )
        if answered:
            live = stats["responses_by_level"].get("live", 0) / answered
            popular = (
                stats["responses_by_level"].get("popularity", 0) / answered
            )
            if live < slo.min_live_fraction:
                found.append(
                    f"live fraction {live:.3f} < budget "
                    f"{slo.min_live_fraction:.3f}"
                )
            if popular > slo.max_popularity_fraction:
                found.append(
                    f"popularity fraction {popular:.3f} > budget "
                    f"{slo.max_popularity_fraction:.3f}"
                )
        return found

    def assert_slo(self, slo: SLO) -> None:
        """Raise :class:`SLOViolation` listing every breached objective."""
        found = self.violations(slo)
        if found:
            raise SLOViolation("; ".join(found))


def run_load(
    service: Any,
    traffic: ZipfTraffic,
    *,
    concurrency: int = 8,
    pace: bool = True,
    faults: Sequence[FaultWindow] = (),
    top_n: Optional[int] = None,
    deadline: Optional[float] = None,
    exclude_fn: Optional[Callable[[int], Any]] = None,
    metrics: Optional[Any] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> LoadReport:
    """Drive ``service`` with ``traffic`` and collect a report.

    The trace is split at fault-window boundaries; each segment runs
    its requests across ``concurrency`` client threads with the
    segment's fault (if any) armed.  ``pace=True`` honours the trace's
    arrival times (open loop); ``pace=False`` fires requests as fast as
    the clients can (closed loop — the capacity-measurement mode).

    The service only needs a ``recommend(user, top_n=, exclude=,
    deadline=)`` returning an object with ``items`` / ``level`` (both
    :class:`~repro.serve.shard.ShardedService` and a single
    :class:`~repro.serve.service.RecommendationService` qualify).

    Exceptions from ``recommend`` are *recorded*, not raised — the SLO
    layer is where "zero errors" gets asserted, so a chaos run can
    observe a contract break instead of dying on it.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    trace = traffic.trace()
    segments = _segment(len(trace), faults)
    records: List[Optional[dict]] = [None] * len(trace)
    workers = len(getattr(service, "workers", ())) or 1
    start = clock()

    for lo, hi, window in segments:
        if window is not None and window.kind == "reload":
            service.poll_reload()
        with ExitStack() as stack:
            if window is not None:
                window.arm(stack, service)
            _run_segment(
                service, trace[lo:hi], records, concurrency, pace, start,
                top_n, deadline, exclude_fn, clock, sleep,
            )

    wall = clock() - start
    registry = metrics if metrics is not None else obs.get_metrics()
    return LoadReport(
        records=[r for r in records if r is not None],
        wall_seconds=wall,
        trace_digest=traffic.digest(),
        workers=workers,
        metrics_snapshot=registry.snapshot(),
    )


def _segment(
    total: int, faults: Sequence[FaultWindow]
) -> List[Tuple[int, int, Optional[FaultWindow]]]:
    """Partition ``[0, total)`` into maximal runs of one armed window.

    Windows must not overlap; gaps run fault-free.
    """
    ordered = sorted(faults, key=lambda w: w.start)
    for before, after in zip(ordered, ordered[1:]):
        if after.start < before.stop:
            raise ValueError(
                f"fault windows overlap: [{before.start}, {before.stop}) "
                f"and [{after.start}, {after.stop})"
            )
    segments: List[Tuple[int, int, Optional[FaultWindow]]] = []
    cursor = 0
    for window in ordered:
        lo, hi = min(window.start, total), min(window.stop, total)
        if cursor < lo:
            segments.append((cursor, lo, None))
        if lo < hi or window.kind == "reload":
            segments.append((lo, hi, window))
        cursor = max(cursor, hi)
    if cursor < total:
        segments.append((cursor, total, None))
    return segments


def _run_segment(
    service: Any,
    requests: Sequence[Request],
    records: List[Optional[dict]],
    concurrency: int,
    pace: bool,
    run_start: float,
    top_n: Optional[int],
    deadline: Optional[float],
    exclude_fn: Optional[Callable[[int], Any]],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
) -> None:
    """Execute one segment's requests across client threads."""
    cursor_lock = threading.Lock()
    cursor = [0]

    def next_request() -> Optional[Request]:
        with cursor_lock:
            if cursor[0] >= len(requests):
                return None
            request = requests[cursor[0]]
            cursor[0] += 1
            return request

    def client() -> None:
        while True:
            request = next_request()
            if request is None:
                return
            if pace:
                wait = request.at - (clock() - run_start)
                if wait > 0:
                    sleep(wait)
            exclude = exclude_fn(request.user) if exclude_fn else None
            began = clock()
            record = {
                "index": request.index,
                "user": request.user,
                "error": False,
            }
            try:
                response = service.recommend(
                    request.user, top_n=top_n, exclude=exclude,
                    deadline=deadline,
                )
            except Exception as err:  # contract break: record, don't die
                record["error"] = True
                record["exception"] = f"{type(err).__name__}: {err}"
                record["latency"] = clock() - began
            else:
                record["latency"] = clock() - began
                record["level"] = response.level
                record["items"] = int(np.asarray(response.items).size)
                record["worker"] = getattr(response, "worker", None)
                record["rerouted"] = getattr(response, "rerouted", 0)
            records[request.index] = record

    threads = [
        threading.Thread(target=client, name=f"loadgen-client-{i}")
        for i in range(min(concurrency, max(len(requests), 1)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class EmulatedLatencyModel:
    """Wrap a model with a fixed per-call service time.

    Capacity benches need a scoring cost that dominates Python/GIL
    overhead so scale-out and batching are measurable in-process: the
    sleep releases the GIL like a real remote/BLAS backend would, and —
    because the micro-batcher pays it once per *batch* — the bench sees
    exactly the amortisation batching buys in production.  Scores are
    untouched, so correctness assertions still hold through it.
    """

    def __init__(self, model: Any, seconds: float,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self._model = model
        self.seconds = seconds
        self._sleep = sleep

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        self._sleep(self.seconds)
        return self._model.all_scores(users)

    def recommend(self, user: int, top_n: int = 20,
                  exclude: Optional[Any] = None) -> np.ndarray:
        self._sleep(self.seconds)
        return self._model.recommend(user, top_n=top_n, exclude=exclude)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._model, name)


def write_bench(
    path: str,
    operating_points: Sequence[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``BENCH_serve.json``: per-point capacity + resilience stats.

    Deterministic serialisation (sorted keys, fixed indentation) so the
    loadgen determinism test can compare files byte-for-byte.
    """
    payload = {
        "bench": "serve",
        "meta": dict(meta or {}),
        "operating_points": list(operating_points),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "EmulatedLatencyModel",
    "FaultWindow",
    "LoadReport",
    "Request",
    "SLO",
    "SLOViolation",
    "ZipfTraffic",
    "run_load",
    "write_bench",
]
