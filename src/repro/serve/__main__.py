"""``python -m repro.serve`` — train a small model and serve it live.

Demonstrates (and, under ``--chaos``, *asserts*) the resilience story:
a trained recommender answers a stream of top-N requests behind
deadlines, a circuit breaker, and the degradation ladder, and keeps
answering while scoring crashes and latency spikes are injected.

Examples::

    python -m repro.serve --dataset hetrec-del --scale 0.02 --epochs 2
    python -m repro.serve --dataset hetrec-del --scale 0.02 --epochs 2 \
        --requests 60 --deadline-ms 50 --chaos
    python -m repro.serve --dataset hetrec-del --scale 0.02 --epochs 2 \
        --checkpoint-dir /tmp/ckpts   # serve through validated hot reload
    python -m repro.serve --dataset hetrec-del --scale 0.02 --epochs 2 \
        --workers 4 --rps 400 --requests 240 --chaos \
        --bench-out BENCH_serve.json  # sharded pool under Zipf load
    python -m repro.serve --dataset hetrec-del --scale 0.02 --epochs 2 \
        --workers 4 --backend process --chaos  # one subprocess per shard:
        # SIGKILL + hang chaos against real processes, supervisor respawns

Exit code 0 means every request was answered with a non-empty, valid
top-N; in ``--chaos`` mode it additionally requires that degraded
responses occurred, that the breaker opened, and that it recovered to
closed by the end of the run — the ``make serve-smoke`` contract.

``--workers N`` switches to the scale-out path: N worker replicas
(each its own :class:`RecommendationService` + provider + micro-
batcher) behind a jump-hash :class:`ShardedService`, driven by the
Zipf load generator at ``--rps`` and judged against SLOs (p99 latency,
zero errors, degradation-rung budget) — the ``make load-smoke``
contract.  ``--chaos`` then arms a worker-crash window and a scoring
latency window mid-run, plus a checkpoint hot reload when
``--checkpoint-dir`` is set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from .. import obs, testing
from ..bench import (
    ABLATIONS,
    EXTRAS,
    METHODS,
    MODEL_BUILDERS,
    BenchSettings,
)
from ..bench.harness import prepare_split, run_recipe
from ..data import DATASET_ORDER
from ..perf import PerfReport
from ..retrieval import RetrievalTier
from .batching import MicroBatcher
from .breaker import CLOSED, CircuitBreaker, OPEN
from .loadgen import (
    SLO,
    EmulatedLatencyModel,
    FaultWindow,
    ZipfTraffic,
    run_load,
    write_bench,
)
from .proc import ProcessPool, WorkerSpec
from .provider import (
    CheckpointModelProvider,
    StaticModelProvider,
    default_restore,
)
from .service import LEVEL_LIVE, RecommendationService
from .shard import ShardedService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="train a small model and serve it resiliently",
    )
    parser.add_argument("--dataset", default="hetrec-del", choices=DATASET_ORDER)
    parser.add_argument(
        "--method", default="BPRMF",
        choices=sorted(set(METHODS) | set(ABLATIONS) | set(EXTRAS)),
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--embed-dim", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=40,
                        help="how many simulated requests to answer")
    parser.add_argument("--top-n", type=int, default=10)
    parser.add_argument("--deadline-ms", type=float, default=100.0,
                        help="per-request deadline (0 disables)")
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="train with snapshots under DIR and serve through the "
             "hot-reloading CheckpointModelProvider instead of a static "
             "in-memory model",
    )
    parser.add_argument(
        "--retrieval", action="store_true",
        help="serve the live rung through a cluster-routed candidate "
             "index (sub-linear scoring; falls back to exact on any "
             "index problem)",
    )
    parser.add_argument(
        "--n-probe", type=int, default=2, metavar="P",
        help="partitions probed per request when --retrieval is on",
    )
    parser.add_argument(
        "--partitions", type=int, default=16, metavar="K",
        help="partition count for indexes built by the retrieval tier",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="serve through a sharded pool of N worker replicas driven "
             "by the Zipf load harness (0 = classic single service)",
    )
    parser.add_argument(
        "--backend", default="thread", choices=("thread", "process"),
        help="pooled-mode worker isolation: 'thread' keeps replicas "
             "in-process; 'process' forks one supervised subprocess per "
             "shard (heartbeats, crash respawn, SIGKILL chaos)",
    )
    parser.add_argument(
        "--hot-ttl-ms", type=float, default=0.0, metavar="MS",
        help="front-door hot-key cache TTL for the Zipf head "
             "(0 disables; pooled mode only)",
    )
    parser.add_argument(
        "--rps", type=float, default=200.0,
        help="target request rate for the pooled load run",
    )
    parser.add_argument(
        "--skew", type=float, default=1.1,
        help="Zipf exponent of the simulated user popularity",
    )
    parser.add_argument(
        "--load-concurrency", type=int, default=8, metavar="C",
        help="client threads driving the pooled load run",
    )
    parser.add_argument(
        "--service-time-ms", type=float, default=1.0,
        help="emulated per-scoring-call backend time in the pooled run "
             "(released-GIL sleep; batching amortises it per batch; "
             "0 disables)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="micro-batcher flush size per worker (pooled mode)",
    )
    parser.add_argument(
        "--batch-wait-ms", type=float, default=2.0,
        help="micro-batcher max wait before a partial flush (pooled "
             "mode; 0 flushes immediately)",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=500.0,
        help="p99 latency SLO asserted on the pooled load run",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="append/write this run's operating point to FILE as "
             "BENCH_serve.json",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="inject scoring crashes and latency mid-run and assert "
             "degraded-but-answered behaviour (non-zero exit otherwise)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable tracing (repro.obs) and export per-request spans "
             "to FILE as JSONL",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export serving metrics to FILE (Prometheus text format; "
             ".json/.jsonl extensions switch to a JSONL snapshot)",
    )
    return parser


def _proc_chaos(total: int, workers: int, with_reload: bool):
    """The process-pool chaos schedule: SIGKILL one shard, hang
    another without exiting, and (with hot reload) swap checkpoints —
    all against real subprocesses, mid-run."""
    windows = [
        FaultWindow(start=max(int(total * 0.20), 1),
                    stop=max(int(total * 0.35), 2),
                    kind="proc-kill", worker=0),
        FaultWindow(start=max(int(total * 0.50), 3),
                    stop=max(int(total * 0.65), 4),
                    kind="proc-hang", worker=1 % workers, seconds=0.5),
    ]
    if with_reload:
        at = max(int(total * 0.85), 5)
        windows.append(FaultWindow(start=at, stop=at + 1, kind="reload"))
    return windows


def _pool_chaos(total: int, deadline: Optional[float], with_reload: bool):
    """The pooled chaos schedule: crash one shard, slow all scoring,
    and (when hot reload is in play) swap checkpoints mid-run."""
    slow = 2 * deadline if deadline else 0.05
    # The slow window is kept short: while it is armed every scoring
    # call busts the deadline, breakers open, and the stale rung soaks
    # the traffic — a longer window (plus breaker recovery) would eat
    # the live-fraction budget without testing anything new.
    windows = [
        FaultWindow(start=max(int(total * 0.20), 1),
                    stop=max(int(total * 0.35), 2),
                    kind="worker-crash", worker=0),
        FaultWindow(start=max(int(total * 0.50), 3),
                    stop=max(int(total * 0.58), 4),
                    kind="score-slow", seconds=slow),
    ]
    if with_reload:
        at = max(int(total * 0.80), 5)
        windows.append(FaultWindow(start=at, stop=at + 1, kind="reload"))
    return windows


def _run_pool(args, dataset, split, cell, deadline, retrieval_params) -> int:
    """The scale-out path: N workers + shard map + Zipf load + SLOs."""
    service_time = max(args.service_time_ms, 0.0) / 1000.0
    hot_reload = (
        args.checkpoint_dir is not None and args.method in MODEL_BUILDERS
    )
    popularity = split.train.item_degrees()

    def build_worker(wid: int) -> RecommendationService:
        if hot_reload:
            builder = MODEL_BUILDERS[args.method]
            provider = CheckpointModelProvider(
                args.checkpoint_dir,
                builder=lambda: builder(
                    dataset, split, args.embed_dim, np.random.default_rng(0)
                ),
                restore=default_restore,
                retrieval=args.retrieval,
                retrieval_params=retrieval_params,
            )
        else:
            model = cell.trained.model
            if service_time > 0:
                model = EmulatedLatencyModel(model, service_time)
            provider = StaticModelProvider(model, version=f"static-w{wid}")
        batcher = None
        if args.max_batch > 1:
            batcher = MicroBatcher(
                provider.model,
                max_batch=args.max_batch,
                max_wait=max(args.batch_wait_ms, 0.0) / 1000.0,
            )
        tier = None
        if args.retrieval and not hot_reload:
            tier = RetrievalTier(n_probe=args.n_probe, **retrieval_params)
        return RecommendationService(
            provider,
            popularity=popularity,
            default_top_n=args.top_n,
            default_deadline=deadline,
            breaker=CircuitBreaker(failure_threshold=3, recovery_time=0.1),
            batcher=batcher,
            retrieval=tier,
        )

    hot_ttl = max(args.hot_ttl_ms, 0.0) / 1000.0
    if args.backend == "process":
        if hot_reload:
            builder_fn = MODEL_BUILDERS[args.method]
            model_builder = lambda: builder_fn(  # noqa: E731 — forked, not pickled
                dataset, split, args.embed_dim, np.random.default_rng(0)
            )
        else:
            trained = cell.trained.model
            if service_time > 0:
                trained = EmulatedLatencyModel(trained, service_time)
            model_builder = lambda: trained  # noqa: E731
        spec = WorkerSpec(
            builder=model_builder,
            checkpoint_dir=args.checkpoint_dir if hot_reload else None,
            popularity=popularity,
            default_top_n=args.top_n,
            default_deadline=deadline,
            breaker_recovery=0.1,
        )
        pool = ProcessPool(
            spec, args.workers,
            popularity=popularity,
            hot_ttl=hot_ttl,
            down_cooldown=0.2,
            # Reroute hung-shard requests well inside the p99 SLO
            # instead of waiting out the stall on the primary.
            request_timeout=0.3,
            heartbeat_timeout=0.3,
        )
        print(f"process pool up: {args.workers} supervised workers "
              f"(pids {[w.pid for w in pool.workers]})")
    else:
        workers = [build_worker(wid) for wid in range(args.workers)]
        pool = ShardedService(
            workers, popularity=popularity, down_cooldown=0.2,
            hot_ttl=hot_ttl,
        )
    if hot_reload:
        outcomes = pool.poll_reload()
        print(f"hot-reload bootstrap: {outcomes}")

    train_items = split.train.items_of_user()
    traffic = ZipfTraffic(
        dataset.num_users, args.requests,
        rps=args.rps, skew=args.skew, seed=args.seed,
    )
    if not args.chaos:
        faults = ()
    elif args.backend == "process":
        faults = _proc_chaos(args.requests, args.workers, hot_reload)
    else:
        faults = _pool_chaos(args.requests, deadline, hot_reload)
    print(
        f"\ndriving {args.requests} Zipf requests at {args.rps:.0f} rps "
        f"over {args.workers} {args.backend} workers "
        f"({'chaos armed' if args.chaos else 'healthy run'})..."
    )
    report = run_load(
        pool, traffic,
        concurrency=args.load_concurrency,
        pace=True,
        faults=faults,
        top_n=args.top_n,
        deadline=deadline,
        exclude_fn=lambda user: train_items[user],
    )
    stats = report.summary()
    print(json.dumps(stats, indent=2, sort_keys=True))
    health = pool.health()
    print("pool health:", health["status"])
    if args.backend == "process":
        for slot in health.get("supervisor", ()):
            print(f"  worker {slot['worker']}: alive={slot['alive']} "
                  f"restarts={slot['restarts']} disabled={slot['disabled']}")
        pool.close()

    slo = SLO(
        p99_seconds=args.slo_p99_ms / 1000.0,
        max_errors=0,
        min_live_fraction=0.5,
        max_popularity_fraction=0.35,
    )
    violations = report.violations(slo)
    if args.chaos:
        shaken = stats["rerouted"] > 0 or any(
            stats["responses_by_level"].get(level, 0)
            for level in ("stale", "popularity")
        )
        if not shaken:
            violations.append(
                "chaos schedule left no trace (no reroutes, no degraded "
                "responses) — the fault windows never bit"
            )
    if args.bench_out:
        suffix = "-proc" if args.backend == "process" else ""
        point = {"label": f"workers-{args.workers}{suffix}", **stats}
        existing = []
        if os.path.exists(args.bench_out):
            with open(args.bench_out, "r", encoding="utf-8") as handle:
                existing = json.load(handle).get("operating_points", [])
        existing = [
            p for p in existing if p.get("label") != point["label"]
        ] + [point]
        write_bench(
            args.bench_out, existing,
            meta={"dataset": dataset.name, "method": args.method,
                  "chaos": bool(args.chaos), "rps": args.rps,
                  "skew": args.skew, "seed": args.seed},
        )
        print(f"bench: {args.bench_out}")
    if violations:
        for violation in violations:
            print(f"SLO FAIL: {violation}", file=sys.stderr)
        return 1
    print("\nOK: pool held its SLOs under load")
    return 0


def _chaos_plan(total: int):
    """Split the request stream into healthy/crash/latency/healthy
    windows; returns (crash_window, latency_window) index ranges."""
    quarter = max(total // 4, 1)
    return range(quarter, 2 * quarter), range(2 * quarter, 3 * quarter)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.requests < 1:
        print("--requests must be >= 1", file=sys.stderr)
        return 2
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
    if args.trace_out is not None:
        obs.enable_tracing()

    settings = BenchSettings(
        scale=args.scale,
        embed_dim=args.embed_dim,
        epochs=args.epochs,
        batch_size=args.batch_size,
        train_seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
    )
    recipe = (
        METHODS.get(args.method)
        or ABLATIONS.get(args.method)
        or EXTRAS.get(args.method)
    )
    dataset, split = prepare_split(args.dataset, settings)
    print(f"training {args.method} on {dataset.name} (scale {args.scale})...")
    cell = run_recipe(
        recipe, dataset, split, args.method, settings, keep_model=True
    )
    print(f"trained: R@20={100 * cell.recall:.2f}% in {cell.wall_time:.1f}s")

    retrieval_params = dict(
        num_partitions=args.partitions,
        popularity=split.train.item_degrees(),
        seed=args.seed,
    )
    if args.workers > 0:
        return _run_pool(args, dataset, split, cell, deadline,
                         retrieval_params)
    if args.checkpoint_dir is not None and args.method in MODEL_BUILDERS:
        builder = MODEL_BUILDERS[args.method]
        provider = CheckpointModelProvider(
            args.checkpoint_dir,
            builder=lambda: builder(
                dataset, split, args.embed_dim, np.random.default_rng(0)
            ),
            restore=default_restore,
            retrieval=args.retrieval,
            retrieval_params=retrieval_params,
        )
    else:
        if args.checkpoint_dir is not None:
            print(
                f"note: {args.method} has no plain builder; serving the "
                f"in-memory model instead of hot-reloading snapshots"
            )
        provider = cell.trained.model

    tier = None
    if args.retrieval:
        tier = RetrievalTier(n_probe=args.n_probe, **retrieval_params)
        print(
            f"retrieval tier armed: n_probe={args.n_probe} over "
            f"{args.partitions} partitions"
        )

    # A short recovery time so the half-open probe fires within the run.
    service = RecommendationService(
        provider,
        popularity=split.train.item_degrees(),
        default_top_n=args.top_n,
        default_deadline=deadline,
        breaker=CircuitBreaker(failure_threshold=3, recovery_time=0.2),
        reload_every=0 if args.checkpoint_dir is None else 10,
        retrieval=tier,
    )
    if args.checkpoint_dir is not None and args.method in MODEL_BUILDERS:
        outcome = service.poll_reload()
        print(f"hot-reload bootstrap: {outcome} "
              f"(serving {service.provider.version()})")

    train_items = split.train.items_of_user()
    rng = np.random.default_rng(args.seed)
    users = rng.integers(0, dataset.num_users, size=args.requests)

    crash_window, latency_window = _chaos_plan(args.requests)
    breaker_opened = False
    empty_answers = 0
    failures = 0
    print(f"\nserving {args.requests} requests "
          f"({'chaos armed' if args.chaos else 'healthy run'})...")
    for index, user in enumerate(users):
        user = int(user)
        exclude = set(train_items[user].tolist())
        if args.chaos and index == latency_window.stop:
            # Give the breaker its recovery window so the final healthy
            # stretch exercises half-open -> closed.
            time.sleep(0.25)
        try:
            if args.chaos and index in crash_window:
                with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
                    response = service.recommend(user, exclude=exclude)
            elif args.chaos and index in latency_window and deadline:
                with testing.Latency(testing.SERVE_SCORE, seconds=2 * deadline):
                    response = service.recommend(user, exclude=exclude)
            else:
                response = service.recommend(user, exclude=exclude)
        except Exception as err:  # the service promises this never happens
            failures += 1
            print(f"  request {index}: UNHANDLED {type(err).__name__}: {err}")
            continue
        if response.items.size == 0:
            empty_answers += 1
        if response.breaker_state == OPEN:
            breaker_opened = True
        if args.chaos or index < 3 or response.degraded:
            print(
                f"  request {index:3d}: user {user:4d} "
                f"level={response.level:<10} items={response.items.size} "
                f"breaker={response.breaker_state} "
                f"latency={1000 * response.latency:.1f}ms"
            )

    health = service.health()
    print("\nhealth:", {k: v for k, v in health.items() if k != "counters"})
    print(PerfReport.from_registries(service.timers, service.counters)
          .format(title="serving perf"))

    if args.trace_out is not None:
        obs.get_tracer().export_jsonl(args.trace_out)
        print(f"trace: {args.trace_out}")
    if args.metrics_out is not None:
        registry = obs.get_metrics()
        if args.metrics_out.endswith((".json", ".jsonl")):
            obs.write_metrics_jsonl(registry, args.metrics_out)
        else:
            obs.write_metrics(registry, args.metrics_out)
        print(f"metrics: {args.metrics_out}")

    ok = failures == 0 and empty_answers == 0
    if args.retrieval:
        served = health["counters"].get("serve.retrieval.served", 0)
        if not served:
            print("RETRIEVAL FAIL: tier never answered a request",
                  file=sys.stderr)
        ok = ok and bool(served)
    if args.chaos:
        counts = health["counters"]
        degraded = counts.get("serve.degraded", 0)
        recovered = health["breaker"] == CLOSED and counts.get(
            f"serve.responses.{LEVEL_LIVE}", 0
        ) > 0
        if not degraded:
            print("CHAOS FAIL: no degraded responses recorded", file=sys.stderr)
        if not breaker_opened:
            print("CHAOS FAIL: breaker never opened", file=sys.stderr)
        if not recovered:
            print("CHAOS FAIL: breaker did not recover to closed/live",
                  file=sys.stderr)
        ok = ok and bool(degraded) and breaker_opened and recovered
    if not ok:
        print(f"\nFAIL: failures={failures} empty={empty_answers}",
              file=sys.stderr)
        return 1
    print("\nOK: every request answered with a valid top-N")
    return 0


if __name__ == "__main__":
    sys.exit(main())
