"""Model providers: where the serving layer gets its live model from.

:class:`StaticModelProvider` pins one in-memory model (tests, demos,
embedded use).  :class:`CheckpointModelProvider` watches a
:mod:`repro.ckpt` checkpoint directory and hot-reloads newer snapshots
without a restart, with a promotion gate a candidate must clear before
it replaces the live model:

1. **checksum** — the payload bytes must match the SHA-256 the manifest
   recorded at save time (a torn or bit-rotted candidate is refused);
2. **config fingerprint** — the snapshot's optimisation fingerprint
   must match the one pinned by the first successful load, so a
   checkpoint from a differently-configured run cannot silently swap
   into a serving process expecting another architecture;
3. **canary probe** — after the swap, the candidate must answer a real
   ``recommend`` call with a valid, in-range, finite top-N; a failing
   canary rolls the previous model back.

Every outcome is reported (``reloaded`` / ``unchanged`` / ``rejected``
/ ``rolled_back``) so the service can count reload health, and a bad
candidate never takes down serving: the previous model keeps answering.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Optional

import numpy as np

from .. import testing
from ..ckpt import CheckpointManager, checksum, decode_state
from ..concurrency import new_rlock, shared_state

#: Poll outcomes (also used as `serve.reload.*` counter suffixes).
RELOADED = "reloaded"
UNCHANGED = "unchanged"
REJECTED = "rejected"
ROLLED_BACK = "rolled_back"


class ModelUnavailable(RuntimeError):
    """The provider has no usable model yet (service stays unready)."""


def default_restore(model: Any, state: dict) -> Any:
    """Load a trainer snapshot's inference state into a fresh model.

    Restores parameters (``state["model"]``), any non-parameter extra
    state the model wrote (IMCAT tag clusters, SSL augmentation RNG),
    and rebuilds parameter-derived caches via ``refresh_epoch`` —
    mirroring :func:`repro.io.load_model` for the checkpoint layout.
    """
    model.load_state_dict(state["model"])
    extra = state.get("model_extra")
    if extra is not None and hasattr(model, "set_extra_state"):
        model.set_extra_state(extra)
    if hasattr(model, "refresh_epoch"):
        model.refresh_epoch(0)
    if hasattr(model, "eval"):
        model.eval()
    return model


@shared_state
class StaticModelProvider:
    """Serve one fixed in-memory model (no reload).

    Immutable after construction, so it is safely shared across
    threads without a lock; the ``@shared_state`` annotation lets the
    sanitizer verify that nothing mutates it post-init.
    """

    def __init__(self, model: Any, version: str = "static") -> None:
        self._model = model
        self._version = version

    def model(self) -> Any:
        if self._model is None:
            raise ModelUnavailable("no model loaded")
        return self._model

    def ready(self) -> bool:
        return self._model is not None

    def version(self) -> str:
        return self._version

    def poll(self) -> str:
        """Static providers never change."""
        return UNCHANGED


@shared_state(guard="_lock")
class CheckpointModelProvider:
    """Hot-reloading provider backed by a ``repro.ckpt`` directory.

    Args:
        directory: checkpoint directory (manifest + payloads) written by
            a trainer's ``checkpoint_dir``.
        builder: zero-argument callable returning a *fresh* untrained
            model instance of the architecture being served.
        restore: ``(model, state) -> model`` hook loading a decoded
            snapshot into the fresh instance (default
            :func:`default_restore`).
        canary_user: user index the post-swap canary probe scores.
        canary_top_n: list length the canary requests.
        expected_fingerprint: pin the config fingerprint up front;
            ``None`` pins it from the first successfully-loaded
            snapshot.
        retrieval: maintain a :mod:`repro.retrieval` candidate index
            alongside the model: on every promotion the provider loads
            the index persisted next to the snapshot (or builds one and
            saves it back), verifies it against the candidate's item
            fingerprint, and swaps ``(model, index)`` as one unit — a
            serving process can never pair a new model with the old
            model's routing.  Index problems degrade to ``index() is
            None`` (exact scoring), never to a failed promotion.
        retrieval_params: keyword overrides for
            :func:`repro.retrieval.build_index` (``num_partitions``,
            ``strategy``, ``popularity``, ``popular_head``, ``seed``).

    ``poll()`` never raises for candidate problems — a bad snapshot is
    refused (or rolled back) with a warning and the live model keeps
    serving.

    Thread safety: ``(model, step, index, fingerprint)`` swap as one
    unit under a reentrant mutex, so scoring threads calling
    :meth:`model`/:meth:`index` during a background ``poll()`` see
    either the old generation or the new one, never a mix.  The slow
    work — reading the payload, validating, building the candidate and
    its routing index — happens *outside* the lock (blocking I/O under
    a lock is exactly what LNT008 flags); only the swap, the canary
    probe, and a possible rollback run inside it.
    """

    def __init__(
        self,
        directory: str,
        builder: Callable[[], Any],
        restore: Callable[[Any, dict], Any] = default_restore,
        canary_user: int = 0,
        canary_top_n: int = 5,
        expected_fingerprint: Optional[str] = None,
        retrieval: bool = False,
        retrieval_params: Optional[dict] = None,
    ) -> None:
        self.directory = directory
        self._builder = builder
        self._restore = restore
        self.canary_user = canary_user
        self.canary_top_n = canary_top_n
        self._fingerprint = expected_fingerprint
        self.retrieval = retrieval
        self.retrieval_params = dict(retrieval_params or {})
        self._lock = new_rlock("serve.CheckpointModelProvider")
        self._model: Optional[Any] = None
        self._step: Optional[int] = None
        self._index: Optional[Any] = None

    # ------------------------------------------------------------------
    # provider protocol
    # ------------------------------------------------------------------
    def model(self) -> Any:
        with self._lock:
            if self._model is None:
                raise ModelUnavailable(
                    f"no valid checkpoint loaded yet from {self.directory!r} "
                    f"(call poll() after the first snapshot lands)"
                )
            return self._model

    def ready(self) -> bool:
        with self._lock:
            return self._model is not None

    def version(self) -> str:
        with self._lock:
            if self._step is None:
                return "unloaded"
            return f"ckpt-step-{self._step}"

    @property
    def step(self) -> Optional[int]:
        """Training step of the live snapshot (``None`` before a load)."""
        with self._lock:
            return self._step

    def index(self) -> Optional[Any]:
        """The candidate index swapped in with the live model.

        ``None`` whenever no index matching the live model exists
        (retrieval disabled, build failed, fingerprint mismatch) — the
        retrieval tier treats that as "serve exact"."""
        with self._lock:
            return self._index

    # ------------------------------------------------------------------
    # reload
    # ------------------------------------------------------------------
    def poll(self) -> str:
        """Check for a newer snapshot and try to promote it.

        Returns one of :data:`RELOADED`, :data:`UNCHANGED`,
        :data:`REJECTED` (candidate failed validation before the swap),
        or :data:`ROLLED_BACK` (candidate failed the post-swap canary
        and the previous model was restored).
        """
        entry = self._newest_entry()
        if entry is None:
            return UNCHANGED
        step = int(entry["step"])
        with self._lock:
            if self._step is not None and step <= self._step:
                return UNCHANGED
        path = os.path.join(self.directory, entry["file"])

        # Gate 1+2: checksum and fingerprint validation, then build.
        # Deliberately outside the lock: payload reads and model
        # construction are slow, and scoring threads must keep getting
        # the live model while a candidate is prepared.
        try:
            candidate, state = self._validate_and_build(path, entry)
        except _CandidateRejected as err:
            warnings.warn(
                f"refusing checkpoint {path!r}: {err}; "
                f"keeping {self.version()}",
                RuntimeWarning,
                stacklevel=2,
            )
            return REJECTED

        # The candidate's index is resolved before the swap so model and
        # index change hands in one assignment: traffic between the two
        # stores can never score a new model through old routing.
        index = self._index_for(candidate, step)

        # Gate 3: swap in, then canary-probe the live slot; roll back on
        # any failure so a model that loads but cannot answer never
        # serves traffic.  The swap/canary/rollback triple runs under
        # the lock as one atomic generation change.
        with self._lock:
            if self._step is not None and step <= self._step:
                # a concurrent poll promoted this (or a newer) snapshot
                # while we were building; keep the winner.
                return UNCHANGED
            previous = (self._model, self._step, self._index)
            self._model, self._step, self._index = (candidate, step, index)
            try:
                self._canary(candidate)
            except Exception as err:  # canary must never kill serving
                self._model, self._step, self._index = previous
                warnings.warn(
                    f"canary probe failed for checkpoint {path!r} ({err}); "
                    f"rolled back to {self.version()}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return ROLLED_BACK
            if self._fingerprint is None:
                self._fingerprint = state.get("fingerprint")
            return RELOADED

    def _index_for(self, candidate: Any, step: int) -> Optional[Any]:
        """Load (or build and persist) the candidate's routing index.

        Preference order: an ``index-*.npz`` in the checkpoint directory
        whose fingerprint matches the candidate's item table, else a
        fresh :func:`repro.retrieval.build_index` saved back next to the
        snapshot so the next serving process finds it.  Any failure
        returns ``None`` — a promotion is never blocked on routing.
        """
        if not self.retrieval:
            return None
        # Local import: the provider must stay importable (and the
        # default path must stay free of index machinery) without the
        # retrieval subsystem in play.
        from ..retrieval import build_index, load_index, save_index
        from ..retrieval.index import model_fingerprint

        try:
            fingerprint = model_fingerprint(candidate)
            index = load_index(
                self.directory, expected_fingerprint=fingerprint
            )
            if index is not None:
                return index
            index = build_index(candidate, **self.retrieval_params)
            try:
                save_index(index, self.directory, step=step)
            except Exception as err:
                warnings.warn(
                    f"could not persist retrieval index for step {step} "
                    f"({err}); serving it from memory only",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return index
        except Exception as err:
            warnings.warn(
                f"retrieval index unavailable for step {step} ({err}); "
                f"serving falls back to exact scoring",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def _newest_entry(self) -> Optional[dict]:
        if not os.path.isdir(self.directory):
            return None
        entries = CheckpointManager(self.directory).entries()
        return entries[-1] if entries else None

    def _validate_and_build(self, path: str, entry: dict):
        try:
            testing.check(testing.SERVE_RELOAD)
            testing.delay(testing.SERVE_RELOAD)
            with open(path, "rb") as handle:
                data = handle.read()
        except Exception as err:
            raise _CandidateRejected(f"unreadable payload ({err})") from err
        expected = entry.get("sha256")
        if expected is not None and checksum(data) != expected:
            raise _CandidateRejected(
                "checksum mismatch against the manifest (torn write or "
                "bit rot)"
            )
        try:
            state = decode_state(data)
        except Exception as err:
            raise _CandidateRejected(f"undecodable payload ({err})") from err
        if not isinstance(state, dict) or "model" not in state:
            raise _CandidateRejected("snapshot carries no model state")
        fingerprint = state.get("fingerprint")
        if self._fingerprint is not None and fingerprint != self._fingerprint:
            raise _CandidateRejected(
                f"config fingerprint {fingerprint!r} does not match the "
                f"pinned serving fingerprint {self._fingerprint!r}"
            )
        try:
            candidate = self._restore(self._builder(), state)
        except Exception as err:
            raise _CandidateRejected(f"restore failed ({err})") from err
        return candidate, state

    def _canary(self, model: Any) -> None:
        """One real scoring request; raises when the answer is unusable."""
        items = model.recommend(self.canary_user, top_n=self.canary_top_n)
        items = np.asarray(items)
        if items.size == 0:
            raise ValueError("canary returned an empty recommendation list")
        if not np.issubdtype(items.dtype, np.integer):
            raise ValueError(f"canary returned non-integer items ({items.dtype})")
        num_items = getattr(model, "num_items", None)
        if num_items is not None and (
            items.min() < 0 or items.max() >= num_items
        ):
            raise ValueError("canary returned out-of-range item indices")


class _CandidateRejected(RuntimeError):
    """Internal: candidate snapshot failed pre-swap validation."""
