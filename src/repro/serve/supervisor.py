"""Worker supervision: heartbeats, crash detection, backoff respawn.

The :class:`Supervisor` is the control loop that keeps a
process-isolated pool (:class:`repro.serve.proc.ProcessPool`) serving
through worker death.  One daemon thread sweeps every worker each
``interval`` seconds:

- **crash detection** — a worker whose process is no longer alive, or
  whose connection was poisoned by a transport error, is scheduled for
  respawn immediately;
- **hang detection** — a live worker must answer a heartbeat ping
  within ``heartbeat_timeout``; ``max_missed`` *consecutive* misses
  mean the process is alive to the OS but dead to the pool
  (hang-without-exit), so the supervisor SIGKILLs it and schedules a
  respawn;
- **backoff + jitter** — respawn number *k* waits
  ``backoff.backoff(k)`` seconds first (exponential with seeded
  jitter, the same :class:`~repro.serve.service.RetryPolicy` the
  request path uses, so chaos respawn traces are deterministic under a
  fixed seed);
- **restart-budget circuit** — more than ``restart_budget`` respawns
  inside ``budget_window`` seconds means the worker is flapping
  (crash-looping on a bad model, poisoned host): it is **disabled** and
  stays down; traffic reroutes to its replicas for good.

While a worker is down its front-door calls fail fast
(``WorkerUnavailable``), so the pool's never-error ladder — reroute →
stale cache → popularity — covers the gap; the supervisor's job is to
shrink the gap, not to hide it.

Audit trail: every decision lands in the obs registry —
``serve.supervisor.restarts`` / ``.crashes`` / ``.hangs`` /
``.heartbeat_misses`` / ``.disabled`` (plus per-worker
``serve.supervisor.worker.<id>.restarts``) — and each respawn records a
``supervisor:respawn`` span, which is what the chaos-under-load suite
asserts on.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..concurrency import new_lock, shared_state
from .service import RetryPolicy


@shared_state(guard="_lock", exempt=("_stop",))
class Supervisor:
    """Heartbeat-driven respawn loop over a pool of process workers.

    Args:
        workers: the :class:`~repro.serve.proc.ProcWorker` handles to
            supervise (``alive / broken / ping / kill / respawn``).
        interval: seconds between sweeps.
        heartbeat_timeout: seconds a worker gets to answer one ping.
        max_missed: consecutive missed heartbeats that convict a hang.
        backoff: respawn backoff policy (default: 50 ms doubling to a
            2 s cap, seeded jitter).  Attempt numbers reset once a
            respawned worker answers a heartbeat — a crash *loop* keeps
            escalating, a one-off crash recovers fast.
        restart_budget: respawns allowed inside ``budget_window``
            before the worker is disabled for good.
        budget_window: seconds the restart budget looks back over.
        metrics: obs registry override (default: the process-global
            one).
        tracer: tracer override for the ``supervisor:respawn`` spans.

    ``_stop`` is exempt from the guard: it is a ``threading.Event``,
    internally synchronized and safe to set from any thread.

    Wall-clock note: supervision uses real time (``time.monotonic``)
    because the things it watches — SIGKILL'd processes, stalled
    sockets — happen in real time; tests tune the intervals down
    instead of faking the clock.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        *,
        interval: float = 0.05,
        heartbeat_timeout: float = 0.5,
        max_missed: int = 3,
        backoff: Optional[RetryPolicy] = None,
        restart_budget: int = 5,
        budget_window: float = 30.0,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if not workers:
            raise ValueError("a supervisor needs at least one worker")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_missed < 1:
            raise ValueError(f"max_missed must be >= 1, got {max_missed}")
        if restart_budget < 1:
            raise ValueError(
                f"restart_budget must be >= 1, got {restart_budget}"
            )
        if budget_window <= 0:
            raise ValueError(
                f"budget_window must be > 0, got {budget_window}"
            )
        self.workers = list(workers)
        self.interval = interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_missed = max_missed
        self.backoff = backoff or RetryPolicy(
            max_attempts=1, base_delay=0.05, multiplier=2.0, max_delay=2.0
        )
        self.restart_budget = restart_budget
        self.budget_window = budget_window
        self._metrics = metrics
        self.tracer = obs.resolve_tracer(tracer)
        self._lock = new_lock("serve.Supervisor")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Per-worker slot state, mutated only under _lock: consecutive
        # respawn attempts, consecutive missed beats, respawn history
        # timestamps (for the budget), the pending respawn time, and
        # the disabled latch.
        self._slots: List[Dict[str, Any]] = [
            {
                "missed": 0,
                "attempts": 0,
                "history": [],
                "respawn_at": None,
                "disabled": False,
                "restarts": 0,
            }
            for _ in self.workers
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        thread = threading.Thread(
            target=self._run, name="repro-serve-supervisor", daemon=True
        )
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("supervisor already started")
            self._thread = thread
        thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=timeout)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sweep()

    # ------------------------------------------------------------------
    # one sweep
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """Inspect every worker once (also callable directly in tests)."""
        now = time.monotonic()
        for index, worker in enumerate(self.workers):
            with self._lock:
                slot = self._slots[index]
                if slot["disabled"]:
                    continue
                respawn_at = slot["respawn_at"]
            if respawn_at is not None:
                if now >= respawn_at:
                    self._respawn(index, worker)
                continue
            if not worker.alive() or worker.broken():
                self._registry().add("serve.supervisor.crashes")
                self._plan_respawn(index, now)
                continue
            self._heartbeat(index, worker, now)

    def _heartbeat(self, index: int, worker: Any, now: float) -> None:
        if worker.ping(self.heartbeat_timeout):
            with self._lock:
                slot = self._slots[index]
                slot["missed"] = 0
                # A worker that answers heartbeats has proven the last
                # respawn good: the next incident starts backoff fresh.
                slot["attempts"] = 0
            return
        self._registry().add("serve.supervisor.heartbeat_misses")
        self._registry().add(
            f"serve.supervisor.worker.{index}.heartbeat_misses"
        )
        with self._lock:
            slot = self._slots[index]
            slot["missed"] += 1
            convicted = slot["missed"] >= self.max_missed
            if convicted:
                slot["missed"] = 0
        if convicted:
            # Alive to the OS, dead to the pool: hang-without-exit.
            self._registry().add("serve.supervisor.hangs")
            worker.kill()
            self._plan_respawn(index, time.monotonic())

    def _plan_respawn(self, index: int, now: float) -> None:
        """Schedule the next respawn, or trip the restart-budget circuit."""
        with self._lock:
            slot = self._slots[index]
            history = [
                stamp
                for stamp in slot["history"]
                if now - stamp <= self.budget_window
            ]
            slot["history"] = history
            if len(history) >= self.restart_budget:
                slot["disabled"] = True
                slot["respawn_at"] = None
                tripped = True
            else:
                slot["attempts"] += 1
                delay = self.backoff.backoff(slot["attempts"])
                slot["respawn_at"] = now + delay
                tripped = False
        if tripped:
            self._registry().add("serve.supervisor.disabled")
            self._registry().add(f"serve.supervisor.worker.{index}.disabled")

    def _respawn(self, index: int, worker: Any) -> None:
        with self.tracer.span("supervisor:respawn", worker=index) as span:
            try:
                worker.respawn()
            except BaseException as err:  # a failed respawn is a retry,
                span.set_attributes(outcome="failed", error=str(err))
                self._registry().add("serve.supervisor.respawn_failures")
                self._plan_respawn(index, time.monotonic())
                return
            span.set_attributes(outcome="ok")
        now = time.monotonic()
        self._registry().add("serve.supervisor.restarts")
        self._registry().add(f"serve.supervisor.worker.{index}.restarts")
        with self._lock:
            slot = self._slots[index]
            slot["history"].append(now)
            slot["respawn_at"] = None
            slot["missed"] = 0
            slot["restarts"] += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> List[Dict[str, Any]]:
        """Per-worker snapshot (health endpoint + test assertions)."""
        now = time.monotonic()
        report = []
        for index, worker in enumerate(self.workers):
            with self._lock:
                slot = dict(self._slots[index])
            respawn_at = slot["respawn_at"]
            report.append(
                {
                    "worker": index,
                    "alive": worker.alive(),
                    "broken": worker.broken(),
                    "disabled": slot["disabled"],
                    "missed": slot["missed"],
                    "restarts": slot["restarts"],
                    "respawn_in": (
                        None if respawn_at is None else max(0.0, respawn_at - now)
                    ),
                }
            )
        return report

    def _registry(self) -> Any:
        return self._metrics if self._metrics is not None else obs.get_metrics()


__all__ = ["Supervisor"]
