"""Micro-batched scoring: coalesce concurrent requests into one matmul.

Under concurrent traffic each request scoring alone costs one model
call; :class:`MicroBatcher` turns that into one ``all_scores`` call per
*batch* of concurrent requests, so a worker answering C simultaneous
users pays the fixed per-call cost (model lookup, GIL round-trips, and
for real backends the matmul launch) once instead of C times.

The flush discipline is the classic pair of bounds:

- **max batch size** — a batch never exceeds ``max_batch`` requests, so
  one matmul stays cache-friendly and latency stays bounded;
- **max wait** — the first request in a batch waits at most
  ``max_wait`` seconds for company before the batch flushes anyway, so
  a lone request never starves (property-tested).

Coordination is leader/follower with no background thread: the first
thread to find no active leader becomes the leader, waits out the batch
window, executes the batched scoring call, distributes results, and
keeps draining while requests remain queued.  Followers park on a
per-request :class:`threading.Event`.  All queue state lives under one
mutex; the scoring call itself runs outside it.

Correctness contract (property-tested in ``tests/serve/test_batching``):
for any interleaving of concurrent callers, each caller receives
exactly the item list an unbatched ``model.recommend`` call would have
produced — same scores row, same :func:`repro.eval.metrics.rank_items`
ranking, same exclusion handling.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Optional, Set

import numpy as np

from ..concurrency import new_lock, shared_state
from ..eval.metrics import rank_items


class BatchTimeout(RuntimeError):
    """A caller's batched result never arrived (leader died hard)."""


class _Pending:
    """One enqueued request and the slot its result lands in.

    Not shared-state annotated: the submitting thread writes the request
    fields once before publication, the leader writes the result fields
    exactly once before setting ``done``, and the submitter only reads
    them after ``done`` — the Event is the synchronisation point.
    """

    __slots__ = ("user", "top_n", "exclude", "done", "items", "error")

    def __init__(self, user: int, top_n: int, exclude: Set[int]) -> None:
        self.user = user
        self.top_n = top_n
        self.exclude = exclude
        self.done = threading.Event()
        self.items: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


@shared_state(guard="_lock", exempt=("_full",))
class MicroBatcher:
    """Coalesce concurrent ``recommend`` calls into batched scoring.

    Args:
        model_fn: zero-argument callable returning the model to score
            with, resolved at *flush* time so hot reloads between
            batches are honoured (pass ``provider.model``).
        max_batch: largest number of requests scored by one
            ``all_scores`` call.
        max_wait: seconds the first request of a batch waits for more
            requests before flushing a partial batch.
        result_timeout: safety net for callers waiting on a result; a
            leader failing so hard it cannot even record an error
            surfaces as :class:`BatchTimeout` instead of a hang.
        counters: optional counter registry (``serve.batch.*`` stats).

    Thread safety: the queue, the leader flag, and the counters are the
    only shared state; all of it is mutated under ``_lock``.  ``_full``
    is a :class:`threading.Event` (self-synchronising, hence exempt)
    that wakes a waiting leader early when the queue reaches
    ``max_batch``.  Scoring runs with no lock held.
    """

    def __init__(
        self,
        model_fn: Callable[[], Any],
        *,
        max_batch: int = 8,
        max_wait: float = 0.002,
        result_timeout: float = 30.0,
        counters: Optional[Any] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._model_fn = model_fn
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.result_timeout = result_timeout
        self.counters = counters
        self._lock = new_lock("serve.MicroBatcher")
        self._queue: list = []
        self._leading = False
        self._full = threading.Event()

    # ------------------------------------------------------------------
    # the caller-facing path
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int,
        top_n: int = 20,
        exclude: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Top-N for one user, scored through the shared batch.

        Blocks until the request's batch has flushed; raises whatever
        the batched scoring call raised (so the serving ladder sees the
        same failures it would see unbatched).
        """
        excluded = set(int(i) for i in exclude) if exclude else set()
        pending = _Pending(int(user), int(top_n), excluded)
        with self._lock:
            self._queue.append(pending)
            if len(self._queue) >= self.max_batch:
                self._full.set()
            lead = not self._leading
            if lead:
                self._leading = True
        if lead:
            self._lead()
        if not pending.done.wait(self.result_timeout):
            raise BatchTimeout(
                f"batched scoring result for user {user} did not arrive "
                f"within {self.result_timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        return pending.items

    # ------------------------------------------------------------------
    # leader duties
    # ------------------------------------------------------------------
    def _lead(self) -> None:
        """Collect-and-flush loop run by the thread holding leadership.

        The first batch honours the ``max_wait`` window; follow-up
        batches flush immediately (their requests have already waited
        at least one flush).  Leadership is released only when the
        queue is observed empty under the lock, so a queued request can
        never be left behind without an active leader.
        """
        first = True
        while True:
            if first:
                self._full.wait(self.max_wait)
                first = False
            try:
                with self._lock:
                    batch = self._queue[: self.max_batch]
                    del self._queue[: len(batch)]
                    self._full.clear()
                    if len(self._queue) >= self.max_batch:
                        self._full.set()
                    if not batch:
                        self._leading = False
                        return
            except BaseException:
                with self._lock:
                    self._leading = False
                raise
            self._execute(batch)

    def _execute(self, batch: list) -> None:
        """Score one batch with a single model call and fan results out.

        Any failure is recorded on every request in the batch (each
        caller re-raises it on its own thread) — the leader itself must
        survive so it can keep draining the queue.
        """
        self._count("serve.batch.flushes")
        self._count("serve.batch.requests", len(batch))
        if len(batch) == self.max_batch:
            self._count("serve.batch.full_flushes")
        try:
            model = self._model_fn()
            users = np.asarray([p.user for p in batch], dtype=np.int64)
            # The single matmul: one (B, d) @ (d, |V|) for the batch.
            scores = np.asarray(model.all_scores(users))
            for row, pending in zip(scores, batch):
                pending.items = rank_items(row, pending.exclude, pending.top_n)
        except BaseException as err:  # distributed to every caller
            self._count("serve.batch.errors")
            for pending in batch:
                pending.error = err
        finally:
            for pending in batch:
                pending.done.set()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.counters is not None:
            self.counters.add(name, amount)


__all__ = ["BatchTimeout", "MicroBatcher"]
