"""Sharded multi-worker serving: user-hash routing over a worker pool.

Scale-out layer over :class:`repro.serve.RecommendationService`: N
worker replicas (each wrapping its own service + model provider, and
usually its own :class:`repro.serve.batching.MicroBatcher`) sit behind
a :class:`ShardedService` front door that

- routes each user to a primary shard via a **jump-consistent hash**
  (:func:`jump_hash`), so the mapping is stable across processes,
  balanced (chi-square-tested over 10k users), and resharding N→N+1
  moves only ~1/(N+1) of the user population;
- **fails over** to replica shards when a worker errors or is marked
  down, with a cooldown so a crashing worker is skipped instead of
  re-probed on every request;
- preserves the **never-error degradation contract**: if every routed
  worker fails, the front door answers from its own stale cache and
  then from global popularity — exactly the ladder a single service
  honours, one level up.

Worker crashes and slow shards are injectable through the
``serve:worker`` / ``serve:worker:<id>`` fault sites of
:mod:`repro.testing`, which is what the chaos-under-load suite and the
``--chaos`` pooled CLI mode arm.

Observability: every answered request feeds the pool-wide
``serve.pool.request_seconds`` histogram plus a per-shard
``serve.shard<id>.request_seconds`` histogram and ``serve.pool.shard.
<id>.responses`` counter, so per-shard skew and failover churn are
visible in the obs snapshot the load harness audits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs, testing
from ..concurrency import new_lock, shared_state
from ..eval.metrics import rank_items
from .cache import TTLCache
from .service import LEVEL_LIVE, LEVEL_POPULARITY, LEVEL_STALE, ServeResponse

_M64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: avalanche small integer keys into 64 bits.

    User ids are small dense integers; feeding them to the jump hash
    directly would correlate consecutive users.  One round of SplitMix64
    mixing makes the jump hash's key stream effectively random while
    staying a pure, process-independent function of the id.
    """
    value = (value + 0x9E3779B97F4A7C15) & _M64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _M64
    return (value ^ (value >> 31)) & _M64


def jump_hash(key: int, num_buckets: int) -> int:
    """Jump consistent hash (Lamport & Presta): key → bucket.

    Deterministic, uniform, and *consistent*: growing from ``n`` to
    ``n + 1`` buckets remaps only ~``1/(n+1)`` of the keyspace, which
    is what makes live resharding cheap (property-tested).
    """
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    key &= _M64
    bucket, candidate = -1, 0
    while candidate < num_buckets:
        bucket = candidate
        key = (key * 2862933555777941757 + 1) & _M64
        candidate = int((bucket + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return bucket


class ShardMap:
    """Stable user → shard assignment over ``num_shards`` workers.

    Args:
        num_shards: worker count.
        seed: mixed into the key so two co-existing maps (e.g. an A/B
            pool) can shard the same users differently.

    Immutable after construction — shared freely across threads.
    """

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.seed = seed

    def shard_of(self, user: int) -> int:
        """The primary shard serving ``user``."""
        return jump_hash(_mix64(int(user) ^ _mix64(self.seed)), self.num_shards)

    def route(self, user: int, max_failover: Optional[int] = None) -> Tuple[int, ...]:
        """Failover order for ``user``: primary first, then replicas.

        ``max_failover`` bounds how many *additional* shards are tried
        (default: all of them).
        """
        extra = self.num_shards - 1 if max_failover is None else max_failover
        extra = max(0, min(extra, self.num_shards - 1))
        primary = self.shard_of(user)
        return tuple(
            (primary + offset) % self.num_shards for offset in range(extra + 1)
        )

    def assignments(self, users: Iterable[int]) -> np.ndarray:
        """Primary shard per user (test/analysis helper)."""
        return np.asarray([self.shard_of(u) for u in users], dtype=np.int64)


@dataclass
class PoolResponse:
    """One request answered by the pool, whatever it took.

    ``worker`` is the shard that answered (``None`` when the front
    door's own fallback rungs answered because every routed worker
    failed); ``rerouted`` counts failovers before the answer; ``level``
    is the degradation rung of whoever answered.
    """

    user: int
    items: np.ndarray = field(repr=False)
    level: str
    latency: float
    worker: Optional[int] = None
    rerouted: int = 0
    retries: int = 0
    deadline_hit: bool = False
    model_version: str = "unknown"

    @property
    def degraded(self) -> bool:
        return self.level != LEVEL_LIVE


@shared_state(guard="_lock")
class ShardedService:
    """Threaded front door routing requests over N worker services.

    Args:
        workers: the replica :class:`RecommendationService` instances
            (index == shard id).  Each worker owns its provider,
            breaker, stale cache, and (optionally) micro-batcher.
        shard_map: user routing (default: a fresh :class:`ShardMap`
            over ``len(workers)``).
        popularity: per-item counts for the front door's last-resort
            rung when *every* routed worker fails; ``None`` falls back
            to any worker's popularity rung via an empty answer guard.
        max_failover: replicas tried after the primary (default: all).
        down_cooldown: seconds a failed worker is skipped before being
            probed again.
        stale_ttl / stale_entries: front-door stale cache tuning (a
            second chance above the per-worker caches, so one user's
            last good answer survives their whole shard going down).
        hot_ttl / hot_entries: front-door hot-key cache.  Zipf traffic
            concentrates a large share of requests on a few users, all
            of whom hash to fixed shards; a short TTL (hundreds of
            milliseconds) lets the front door re-serve the head's last
            live answer without touching those shards.  ``hot_ttl=0``
            (the default) disables the cache; hits/misses land in the
            ``serve.pool.hotkey.*`` counters.  Only live responses are
            cached, and only exact ``(user, top_n, exclude)`` matches
            hit.
        metrics: a :class:`repro.obs.MetricsRegistry` (defaults to the
            process-global one) receiving pool and per-shard metrics.
        clock: injectable time source for tests.

    The front door holds no lock while calling a worker — routing
    state (the down-list) is read and written in short critical
    sections, so concurrent requests only serialise for bookkeeping.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        *,
        shard_map: Optional[ShardMap] = None,
        popularity: Optional[np.ndarray] = None,
        max_failover: Optional[int] = None,
        down_cooldown: float = 1.0,
        stale_ttl: float = 300.0,
        stale_entries: int = 4096,
        hot_ttl: float = 0.0,
        hot_entries: int = 2048,
        metrics: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not workers:
            raise ValueError("a sharded service needs at least one worker")
        if down_cooldown < 0:
            raise ValueError(f"down_cooldown must be >= 0, got {down_cooldown}")
        if hot_ttl < 0:
            raise ValueError(f"hot_ttl must be >= 0, got {hot_ttl}")
        self.workers = list(workers)
        self.shard_map = shard_map or ShardMap(len(self.workers))
        if self.shard_map.num_shards != len(self.workers):
            raise ValueError(
                f"shard map covers {self.shard_map.num_shards} shards but "
                f"{len(self.workers)} workers were supplied"
            )
        self.max_failover = max_failover
        self.down_cooldown = down_cooldown
        self._metrics = metrics
        self._clock = clock
        self._lock = new_lock("serve.ShardedService")
        self._down_until: List[float] = [0.0] * len(self.workers)
        self.stale_cache = TTLCache(
            max_entries=stale_entries, ttl=stale_ttl, clock=clock
        )
        self.hot_ttl = hot_ttl
        self.hot_cache = (
            TTLCache(max_entries=hot_entries, ttl=hot_ttl, clock=clock)
            if hot_ttl > 0
            else None
        )
        self._popularity = (
            None if popularity is None
            else np.asarray(popularity, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int,
        top_n: Optional[int] = None,
        exclude: Optional[Iterable[int]] = None,
        deadline: Optional[float] = None,
    ) -> PoolResponse:
        """Answer one request through the pool; never raises for
        infrastructure failure (``ValueError`` only for malformed
        requests, matching the single-service contract)."""
        user = int(user)
        if user < 0:
            raise ValueError(f"user must be >= 0, got {user}")
        if top_n is not None and int(top_n) < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        start = self._clock()
        metrics = self._registry()
        metrics.add("serve.pool.requests")
        excluded: Set[int] = (
            set(int(i) for i in exclude) if exclude is not None else set()
        )

        hot_key = None
        if self.hot_cache is not None:
            hot_key = (user, top_n, tuple(sorted(excluded)))
            hot = self.hot_cache.get(hot_key)
            if hot is not None:
                items, version = hot
                metrics.add("serve.pool.hotkey.hits")
                latency = self._clock() - start
                self._observe(metrics, None, LEVEL_LIVE, latency)
                return PoolResponse(
                    user=user,
                    items=items,
                    level=LEVEL_LIVE,
                    latency=latency,
                    worker=None,
                    model_version=version,
                )
            metrics.add("serve.pool.hotkey.misses")

        rerouted = 0
        response: Optional[ServeResponse] = None
        answered_by: Optional[int] = None
        for shard in self.shard_map.route(user, self.max_failover):
            if self._is_down(shard):
                metrics.add("serve.pool.skipped_down")
                continue
            try:
                response = self._call_worker(
                    shard, user, top_n, excluded, deadline
                )
            except ValueError:
                raise  # malformed request: the contract says surface it
            except BaseException:
                self._mark_down(shard)
                metrics.add("serve.pool.worker_error")
                metrics.add(f"serve.pool.shard.{shard}.errors")
                rerouted += 1
                continue
            answered_by = shard
            break

        latency = self._clock() - start
        if response is not None:
            if response.level == LEVEL_LIVE and response.items.size:
                self.stale_cache.put(user, response.items)
                if hot_key is not None:
                    self.hot_cache.put(
                        hot_key, (response.items, response.model_version)
                    )
            self._observe(metrics, answered_by, response.level, latency)
            return PoolResponse(
                user=user,
                items=response.items,
                level=response.level,
                latency=latency,
                worker=answered_by,
                rerouted=rerouted,
                retries=response.retries,
                deadline_hit=response.deadline_hit,
                model_version=response.model_version,
            )

        # Every routed worker failed: the front door's own ladder.
        metrics.add("serve.pool.all_workers_failed")
        items, level = self._fallback(user, top_n, excluded)
        latency = self._clock() - start
        self._observe(metrics, None, level, latency)
        return PoolResponse(
            user=user,
            items=items,
            level=level,
            latency=latency,
            worker=None,
            rerouted=rerouted,
        )

    def _call_worker(
        self,
        shard: int,
        user: int,
        top_n: Optional[int],
        exclude: Set[int],
        deadline: Optional[float],
    ) -> ServeResponse:
        """One worker attempt, passing through the chaos fault sites."""
        testing.check(testing.SERVE_WORKER)
        testing.check(testing.worker_site(shard))
        testing.delay(testing.SERVE_WORKER)
        testing.delay(testing.worker_site(shard))
        return self.workers[shard].recommend(
            user, top_n=top_n, exclude=exclude, deadline=deadline
        )

    def _fallback(
        self, user: int, top_n: Optional[int], exclude: Set[int]
    ) -> Tuple[np.ndarray, str]:
        top_n = 20 if top_n is None else int(top_n)
        cached = self.stale_cache.get(user)
        if cached is not None:
            usable = np.asarray([i for i in cached if int(i) not in exclude])
            if usable.size:
                return usable[:top_n], LEVEL_STALE
        scores = self._popularity
        if scores is None:
            return np.empty(0, dtype=np.int64), LEVEL_POPULARITY
        return rank_items(scores, exclude, top_n), LEVEL_POPULARITY

    # ------------------------------------------------------------------
    # worker health tracking
    # ------------------------------------------------------------------
    def _is_down(self, shard: int) -> bool:
        with self._lock:
            return self._clock() < self._down_until[shard]

    def _mark_down(self, shard: int) -> None:
        with self._lock:
            self._down_until[shard] = self._clock() + self.down_cooldown

    def _observe(
        self, metrics: Any, shard: Optional[int], level: str, latency: float
    ) -> None:
        metrics.add(f"serve.pool.responses.{level}")
        if level != LEVEL_LIVE:
            metrics.add("serve.pool.degraded")
        metrics.histogram("serve.pool.request_seconds").observe(latency)
        if shard is not None:
            metrics.add(f"serve.pool.shard.{shard}.responses")
            metrics.histogram(
                f"serve.shard{shard}.request_seconds"
            ).observe(latency)

    def _registry(self) -> Any:
        return self._metrics if self._metrics is not None else obs.get_metrics()

    # ------------------------------------------------------------------
    # lifecycle + probes
    # ------------------------------------------------------------------
    def grow(self, worker: Any) -> int:
        """Add one worker shard live (N → N+1) and return its shard id.

        The worker is appended *before* the shard map is swapped, so a
        request that reads the new map always finds its shard; a request
        that raced ahead with the old map still routes into a valid
        prefix of the worker list.  Jump-consistent hashing guarantees
        only ~1/(N+1) of users move — everyone else keeps their shard
        (and their shard's stale cache) across the grow.
        """
        with self._lock:
            self.workers.append(worker)
            self._down_until.append(0.0)
            self.shard_map = ShardMap(
                len(self.workers), seed=self.shard_map.seed
            )
            shard = len(self.workers) - 1
        self._registry().add("serve.pool.grown")
        return shard

    def poll_reload(self) -> List[str]:
        """Poll every worker's provider for a newer model (hot reload
        across the whole pool); returns the per-worker outcomes."""
        return [worker.poll_reload() for worker in self.workers]

    def ready(self) -> bool:
        """True when at least one worker can answer live traffic."""
        return any(worker.ready() for worker in self.workers)

    def health(self) -> Dict[str, Any]:
        """Aggregate health: per-worker probe snapshots + pool status."""
        worker_health = [worker.health() for worker in self.workers]
        now = self._clock()
        with self._lock:
            down = [now < until for until in self._down_until]
        ready = sum(1 for h in worker_health if h["ready"])
        if ready == 0:
            status = "unready"
        elif ready < len(self.workers) or any(down):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": worker_health,
            "down": down,
            "shards": self.shard_map.num_shards,
            "stale_entries": len(self.stale_cache),
        }


__all__ = ["PoolResponse", "ShardMap", "ShardedService", "jump_hash"]
