"""Resilient online serving for trained recommenders.

A hardened request layer over any :class:`repro.models.base.Recommender`
(IMCAT wrappers included — the method is model-agnostic, so one serving
stack covers every registered backbone):

- :class:`RecommendationService` — per-request deadlines, bounded retry
  with exponential backoff + jitter, a circuit breaker around live
  scoring, and a graceful-degradation ladder (live → stale cache →
  popularity) so requests are answered even while the model is broken;
- :class:`CheckpointModelProvider` — hot reload from a
  :mod:`repro.ckpt` directory with checksum + config-fingerprint
  validation and a post-swap canary probe that rolls a bad candidate
  back;
- health/readiness probes and ``serve.*`` perf counters for operational
  visibility;
- ``python -m repro.serve`` — train-and-serve demo CLI with a ``--chaos``
  mode that injects crashes/latency and asserts degraded-but-answered
  behaviour (the ``make serve-smoke`` gate).

Chaos behaviour is pinned by ``tests/serve/`` using the fault sites
``serve:score`` and ``serve:reload`` from :mod:`repro.testing`.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpen
from .cache import TTLCache
from .provider import (
    REJECTED,
    RELOADED,
    ROLLED_BACK,
    UNCHANGED,
    CheckpointModelProvider,
    ModelUnavailable,
    StaticModelProvider,
    default_restore,
)
from .service import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    LEVEL_STALE,
    LEVELS,
    Deadline,
    DeadlineExceeded,
    RecommendationService,
    RetryPolicy,
    ServeResponse,
)

__all__ = [
    "CLOSED",
    "CheckpointModelProvider",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "HALF_OPEN",
    "LEVELS",
    "LEVEL_LIVE",
    "LEVEL_POPULARITY",
    "LEVEL_STALE",
    "ModelUnavailable",
    "OPEN",
    "REJECTED",
    "RELOADED",
    "ROLLED_BACK",
    "RecommendationService",
    "RetryPolicy",
    "ServeResponse",
    "StaticModelProvider",
    "TTLCache",
    "UNCHANGED",
    "default_restore",
]
