"""Resilient online serving for trained recommenders.

A hardened request layer over any :class:`repro.models.base.Recommender`
(IMCAT wrappers included — the method is model-agnostic, so one serving
stack covers every registered backbone):

- :class:`RecommendationService` — per-request deadlines, bounded retry
  with exponential backoff + jitter, a circuit breaker around live
  scoring, and a graceful-degradation ladder (live → stale cache →
  popularity) so requests are answered even while the model is broken;
- :class:`CheckpointModelProvider` — hot reload from a
  :mod:`repro.ckpt` directory with checksum + config-fingerprint
  validation and a post-swap canary probe that rolls a bad candidate
  back;
- health/readiness probes and ``serve.*`` perf counters for operational
  visibility;
- :class:`ShardedService` / :class:`ShardMap` — horizontal scale-out: a
  user-hash (jump-consistent) shard map over N worker replicas, each
  wrapping its own service + provider, behind a failover front door
  that preserves the never-error contract pool-wide;
- :class:`MicroBatcher` — per-worker micro-batched scoring: concurrent
  requests coalesce into a single matmul, flushed on max-batch-size or
  max-wait, bit-identical to unbatched scoring;
- :mod:`repro.serve.proc` — **process isolation**: each shard in its
  own supervised subprocess behind the same front door
  (``backend="process"`` via :func:`build_service`), with a
  :class:`Supervisor` doing heartbeats, crash/hang detection, backoff
  respawn, and a restart-budget circuit; scoring stays bit-identical
  to the thread backend;
- :mod:`repro.serve.loadgen` — a seed-deterministic Zipf traffic
  generator plus SLO-asserting load harness emitting
  ``BENCH_serve.json`` (the ``make load-smoke`` gate);
- ``python -m repro.serve`` — train-and-serve demo CLI with a ``--chaos``
  mode that injects crashes/latency and asserts degraded-but-answered
  behaviour (the ``make serve-smoke`` gate), and a pooled mode
  (``--workers N --rps R``) that drives the sharded pool under Zipf
  load and asserts SLOs.

Chaos behaviour is pinned by ``tests/serve/`` using the fault sites
``serve:score``, ``serve:reload``, and ``serve:worker[:<id>]`` from
:mod:`repro.testing`.
"""

from .batching import BatchTimeout, MicroBatcher
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpen
from .cache import TTLCache
from .loadgen import (
    SLO,
    EmulatedLatencyModel,
    FaultWindow,
    LoadReport,
    SLOViolation,
    ZipfTraffic,
    run_load,
    write_bench,
)
from .proc import (
    ProcWorker,
    ProcessPool,
    WorkerSpec,
    WorkerUnavailable,
    build_service,
    build_worker_service,
)
from .shard import PoolResponse, ShardMap, ShardedService, jump_hash
from .supervisor import Supervisor
from .transport import TransportClosed, TransportError, TransportTimeout
from .provider import (
    REJECTED,
    RELOADED,
    ROLLED_BACK,
    UNCHANGED,
    CheckpointModelProvider,
    ModelUnavailable,
    StaticModelProvider,
    default_restore,
)
from .service import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    LEVEL_STALE,
    LEVELS,
    Deadline,
    DeadlineExceeded,
    RecommendationService,
    RetryPolicy,
    ServeResponse,
)

__all__ = [
    "BatchTimeout",
    "CLOSED",
    "CheckpointModelProvider",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "EmulatedLatencyModel",
    "FaultWindow",
    "HALF_OPEN",
    "LEVELS",
    "LEVEL_LIVE",
    "LEVEL_POPULARITY",
    "LEVEL_STALE",
    "LoadReport",
    "MicroBatcher",
    "ModelUnavailable",
    "OPEN",
    "PoolResponse",
    "ProcWorker",
    "ProcessPool",
    "REJECTED",
    "RELOADED",
    "ROLLED_BACK",
    "RecommendationService",
    "RetryPolicy",
    "SLO",
    "SLOViolation",
    "ServeResponse",
    "ShardMap",
    "ShardedService",
    "StaticModelProvider",
    "Supervisor",
    "TTLCache",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "UNCHANGED",
    "WorkerSpec",
    "WorkerUnavailable",
    "ZipfTraffic",
    "build_service",
    "build_worker_service",
    "default_restore",
    "jump_hash",
    "run_load",
    "write_bench",
]
