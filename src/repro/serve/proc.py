"""Process-isolated serving workers: real OS fault domains per shard.

PR 8's :class:`~repro.serve.shard.ShardedService` scales across
threads, but every worker shares one process — a segfault, OOM kill, or
hung native call in per-intent scoring takes the whole pool with it.
This module puts each shard in its own **subprocess**:

- :class:`WorkerSpec` describes how a worker builds its service (model
  builder or checkpoint directory, popularity fallback, retry/breaker
  tuning) so the thread and process backends construct *identical*
  services — ``backend="process"`` recommendations are bit-identical to
  ``backend="thread"`` (property-tested);
- :func:`_worker_main` is the child: it loads its model, answers a
  request loop over a length-prefixed CRC-checked socket
  (:mod:`repro.serve.transport`), and runs a daemon heartbeat thread on
  a second channel so liveness pings keep flowing while the data thread
  scores;
- :class:`ProcWorker` is the parent-side client satisfying the worker
  protocol :class:`ShardedService` expects (``recommend / poll_reload /
  ready / health``).  Any transport problem — timeout, EOF after a
  SIGKILL, a corrupt frame — **poisons** the connection: the worker is
  marked broken, the front door reroutes, and the
  :class:`~repro.serve.supervisor.Supervisor` respawns it.  A channel
  that lied once is never trusted again;
- :class:`ProcessPool` wires N workers behind the existing
  :class:`ShardMap` + front door, starts a supervisor, and exposes
  ``inject_fault`` (SIGKILL / hang-without-exit / corrupt-response
  frames) for the chaos-under-load suite, which kills *real processes*
  mid-run and asserts zero request errors.

Fork safety: workers default to the ``fork`` start method (fast, no
pickling of model builders).  The parent is multithreaded, so the child
begins with :func:`_child_hygiene` — it disarms the lockset sanitizer
*without taking its state lock* (which another parent thread may have
held at fork time), resets the lock factory, replaces the process-global
metrics/tracer with fresh instances, and clears armed faults.  The
child then never touches inherited locks whose owners died with the
fork.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import obs, testing
from ..concurrency import (
    new_lock,
    require_fork_start_method,
    set_lock_factory,
    shared_state,
)
from ..testing import lockset
from .breaker import CircuitBreaker
from .provider import CheckpointModelProvider, StaticModelProvider
from .service import RecommendationService, RetryPolicy, ServeResponse
from .shard import ShardMap, ShardedService
from .supervisor import Supervisor
from .transport import (
    TransportError,
    TransportTimeout,
    recv_frame,
    send_frame,
    worker_channel,
)


class WorkerUnavailable(RuntimeError):
    """The worker process cannot answer (dead, hung, or poisoned).

    The front door treats this like any worker failure: mark down,
    reroute, degrade — never surface it to the caller.
    """


@dataclass
class WorkerSpec:
    """Everything a worker needs to build its service, in one place.

    Both backends construct their per-shard
    :class:`RecommendationService` from the same spec via
    :func:`build_worker_service`, which is what makes thread and
    process scoring bit-identical by construction.

    Args:
        builder: zero-argument callable returning the model to serve
            (for ``checkpoint_dir`` workers: a *fresh untrained*
            instance the snapshot is restored into).
        checkpoint_dir: when set, the worker serves from a
            :class:`CheckpointModelProvider` over this directory
            (hot-reloadable); otherwise ``builder()`` is served
            statically.
        popularity: per-item counts for the last-resort fallback rung.
        default_top_n / default_deadline / retry / stale_ttl /
        reload_every: forwarded to the service.
        breaker_failures / breaker_recovery: circuit-breaker tuning.
        start_delay: seconds the child sleeps before loading its model
            (slow-start chaos; also exercised by real cold checkpoints).
        jitter_seed: seeds both the retry jitter and any policy built
            by default, so chaos retry traces are deterministic.
    """

    builder: Callable[[], Any]
    checkpoint_dir: Optional[str] = None
    popularity: Optional[np.ndarray] = field(default=None, repr=False)
    default_top_n: int = 20
    default_deadline: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    breaker_failures: int = 3
    breaker_recovery: float = 0.25
    stale_ttl: float = 300.0
    reload_every: int = 0
    start_delay: float = 0.0
    jitter_seed: int = 0


def build_worker_service(spec: WorkerSpec) -> RecommendationService:
    """One shard's service, built identically in-thread or in-child."""
    if spec.checkpoint_dir is not None:
        provider: Any = CheckpointModelProvider(spec.checkpoint_dir, spec.builder)
        provider.poll()
    else:
        provider = StaticModelProvider(spec.builder())
    return RecommendationService(
        provider,
        popularity=spec.popularity,
        default_top_n=spec.default_top_n,
        default_deadline=spec.default_deadline,
        retry=spec.retry or RetryPolicy(seed=spec.jitter_seed),
        breaker=CircuitBreaker(
            failure_threshold=spec.breaker_failures,
            recovery_time=spec.breaker_recovery,
        ),
        stale_ttl=spec.stale_ttl,
        reload_every=spec.reload_every,
        jitter_seed=spec.jitter_seed,
    )


# ----------------------------------------------------------------------
# the child process
# ----------------------------------------------------------------------
def _child_hygiene() -> None:
    """Reset inherited global state right after the fork.

    The parent is multithreaded, so any lock another thread held at
    fork time is locked *forever* in the child.  In particular the
    sanitizer's state lock may be mid-acquire — which is why this sets
    ``lockset._armed`` directly (a plain store the instrumented paths
    read first) instead of calling ``lockset.disarm()`` (which takes
    that lock).  Fresh metrics/tracer instances replace the inherited
    globals so the child never touches their possibly-held mutexes, and
    parent-armed faults are cleared: process chaos is injected over the
    wire, not inherited.
    """
    lockset._armed = False
    set_lock_factory(None)
    obs.set_metrics(obs.MetricsRegistry())
    obs.set_tracer(obs.Tracer(enabled=False))
    testing.reset()


@shared_state(guard="_lock")
class _ChaosState:
    """Child-side chaos switchboard shared by both worker threads."""

    def __init__(self) -> None:
        self._lock = new_lock("serve.proc.ChaosState")
        self._hang_until = 0.0
        self._corrupt_remaining = 0

    def hang_for(self, seconds: float) -> None:
        with self._lock:
            self._hang_until = max(
                self._hang_until, time.monotonic() + float(seconds)
            )

    def stall(self) -> None:
        """Block while a hang window is active (both threads call this,
        so a hung worker stops serving *and* stops answering pings —
        alive to the OS, dead to the pool)."""
        while True:
            with self._lock:
                remaining = self._hang_until - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))

    def corrupt(self, frames: int) -> None:
        with self._lock:
            self._corrupt_remaining += int(frames)

    def take_corrupt(self) -> bool:
        with self._lock:
            if self._corrupt_remaining > 0:
                self._corrupt_remaining -= 1
                return True
            return False


def _heartbeat_loop(sock: Any, state: _ChaosState) -> None:
    """Child control channel: answer pings, absorb hang orders."""
    while True:
        try:
            message = recv_frame(sock, None)
        except TransportError:
            return  # parent went away; the data loop decides shutdown
        op = message.get("op")
        if op == "hang":
            # Send-only op (a delayed reply would desync the ping
            # stream); takes effect on the next stall() in any thread.
            state.hang_for(float(message.get("seconds", 0.0)))
            continue
        state.stall()
        if op == "ping":
            try:
                send_frame(sock, {"op": "pong", "seq": message.get("seq")})
            except TransportError:
                return


def _handle(
    service: RecommendationService, state: _ChaosState, message: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one data-channel request; never raises."""
    op = message.get("op")
    if op == "recommend":
        try:
            response = service.recommend(
                message["user"],
                top_n=message.get("top_n"),
                exclude=message.get("exclude"),
                deadline=message.get("deadline"),
            )
        except ValueError as err:
            # Malformed request: the contract says surface it — relayed
            # as data so the parent re-raises it caller-side.
            return {"ok": False, "error": "ValueError", "message": str(err)}
        return {
            "ok": True,
            "items": response.items,
            "level": response.level,
            "latency": response.latency,
            "retries": response.retries,
            "deadline_hit": response.deadline_hit,
            "breaker_state": response.breaker_state,
            "model_version": response.model_version,
        }
    if op == "poll_reload":
        return {"ok": True, "outcome": service.poll_reload()}
    if op == "ready":
        return {"ok": True, "ready": service.ready()}
    if op == "health":
        return {"ok": True, "health": service.health()}
    if op == "chaos-corrupt":
        state.corrupt(int(message.get("count", 1)))
        return {"ok": True, "armed": True}
    return {"ok": False, "error": "UnknownOp", "message": f"unknown op {op!r}"}


def _data_loop(
    sock: Any, service: RecommendationService, state: _ChaosState
) -> None:
    """Child main thread: one request, one reply, in order."""
    while True:
        try:
            message = recv_frame(sock, None)
        except TransportError:
            return
        state.stall()
        op = message.get("op")
        if op == "shutdown":
            try:
                send_frame(sock, {"op": "bye", "seq": message.get("seq"), "ok": True})
            except TransportError:
                return
            return
        reply = _handle(service, state, message)
        reply["seq"] = message.get("seq")
        # Corruption chaos damages scoring responses only, so the ack
        # that armed it (and health probes) stay trustworthy.
        corrupt = state.take_corrupt() if op == "recommend" else False
        try:
            send_frame(sock, reply, corrupt=corrupt)
        except TransportError:
            return


def _report_start_failure(sock: Any, worker_id: int, err: BaseException) -> None:
    try:
        send_frame(
            sock,
            {
                "op": "failed",
                "worker": worker_id,
                "message": f"{type(err).__name__}: {err}",
            },
        )
    except TransportError:
        return  # parent already gone; the exit code is the only signal


def _worker_main(
    spec: WorkerSpec, worker_id: int, data_sock: Any, ctrl_sock: Any
) -> None:
    """Entry point of one worker subprocess."""
    _child_hygiene()
    if spec.start_delay > 0:
        time.sleep(spec.start_delay)
    try:
        service = build_worker_service(spec)
    except BaseException as err:
        _report_start_failure(ctrl_sock, worker_id, err)
        os._exit(1)
    try:
        send_frame(
            ctrl_sock, {"op": "up", "worker": worker_id, "pid": os.getpid()}
        )
    except TransportError:
        os._exit(1)
    state = _ChaosState()
    heartbeat = threading.Thread(
        target=_heartbeat_loop,
        args=(ctrl_sock, state),
        name=f"repro-serve-proc-{worker_id}-heartbeat",
        daemon=True,
    )
    heartbeat.start()
    _data_loop(data_sock, service, state)
    # _exit instead of a normal return: a forked child must not run the
    # parent's atexit hooks or flush inherited handles it does not own.
    os._exit(0)


# ----------------------------------------------------------------------
# the parent-side client
# ----------------------------------------------------------------------
def _close_quietly(sock: Optional[Any]) -> None:
    if sock is None:
        return
    try:
        sock.close()
    except OSError:
        return  # already gone — exactly what close wanted


def _reap(proc: Optional[Any]) -> None:
    """Force a process down and collect it (idempotent)."""
    if proc is None:
        return
    if proc.is_alive():
        proc.kill()
    proc.join(timeout=2.0)


@shared_state(guard="_lock")
class ProcWorker:
    """Parent-side handle to one worker subprocess.

    Satisfies the worker protocol :class:`ShardedService` routes to
    (``recommend / poll_reload / ready / health``) plus the lifecycle
    the :class:`Supervisor` drives (``ping / kill / respawn / alive /
    broken``).

    Failure semantics: every transport problem on the data channel
    marks the worker **broken** — subsequent calls raise
    :class:`WorkerUnavailable` immediately (the front door reroutes)
    until :meth:`respawn` brings up a fresh process on fresh channels.
    ``recommend`` raises ``ValueError`` only for malformed requests,
    matching the in-process service contract.

    Locking: ``_lock`` guards the mutable slots (process handle,
    channels, flags, in-flight count); ``_data_lock`` / ``_ctrl_lock``
    serialise their channels so request/reply frames never interleave.
    Channel locks are never taken while holding ``_lock``, and blocking
    waits (socket recv aside, which the lint whitelists) happen outside
    all of them.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        worker_id: int = 0,
        *,
        start_timeout: float = 10.0,
        request_timeout: float = 2.0,
        heartbeat_timeout: float = 0.5,
        start_method: str = "fork",
    ) -> None:
        if start_timeout <= 0 or request_timeout <= 0 or heartbeat_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        self.spec = spec
        self.worker_id = int(worker_id)
        self.start_timeout = start_timeout
        self.request_timeout = request_timeout
        self.heartbeat_timeout = heartbeat_timeout
        if start_method == "fork":
            require_fork_start_method(
                "process-isolated serving workers (start_method='fork')"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = new_lock(f"serve.ProcWorker{self.worker_id}")
        self._data_lock = new_lock(f"serve.ProcWorker{self.worker_id}.data")
        self._ctrl_lock = new_lock(f"serve.ProcWorker{self.worker_id}.ctrl")
        self._data_seq = count(1)
        self._ctrl_seq = count(1)
        self._proc: Optional[Any] = None
        self._data: Optional[Any] = None
        self._ctrl: Optional[Any] = None
        self._broken = True  # nothing to talk to until start()
        self._closed = False
        self._inflight = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: Optional[float] = None) -> "ProcWorker":
        """Fork the worker and wait for its ``up`` handshake."""
        budget = self.start_timeout if timeout is None else timeout
        testing.delay(testing.PROC_START)
        parent_data, child_data = worker_channel()
        parent_ctrl, child_ctrl = worker_channel()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.spec, self.worker_id, child_data, child_ctrl),
            name=f"repro-serve-proc-{self.worker_id}",
            daemon=True,
        )
        proc.start()
        # The child inherited its ends across the fork; drop ours so a
        # dead child reads as EOF instead of a silent stall.
        child_data.close()
        child_ctrl.close()
        try:
            hello = recv_frame(parent_ctrl, budget)
        except TransportError as err:
            _reap(proc)
            _close_quietly(parent_data)
            _close_quietly(parent_ctrl)
            raise WorkerUnavailable(
                f"worker {self.worker_id} did not come up within {budget}s: {err}"
            ) from err
        if hello.get("op") != "up":
            _reap(proc)
            _close_quietly(parent_data)
            _close_quietly(parent_ctrl)
            raise WorkerUnavailable(
                f"worker {self.worker_id} failed to start: "
                f"{hello.get('message', hello)}"
            )
        with self._lock:
            self._proc = proc
            self._data = parent_data
            self._ctrl = parent_ctrl
            self._broken = False
            self._closed = False
        return self

    def respawn(self, timeout: Optional[float] = None) -> "ProcWorker":
        """Tear down whatever is left and bring up a fresh process."""
        with self._lock:
            proc, data, ctrl = self._proc, self._data, self._ctrl
            self._proc = None
            self._data = None
            self._ctrl = None
            self._broken = True
        _close_quietly(data)
        _close_quietly(ctrl)
        _reap(proc)
        self.start(timeout)
        with self._lock:
            self.restarts += 1
        return self

    def kill(self) -> Optional[int]:
        """SIGKILL the worker (supervisor's answer to a hang) and mark
        it broken; returns the pid that was signalled."""
        with self._lock:
            proc = self._proc
            self._broken = True
        if proc is None or proc.pid is None or not proc.is_alive():
            return None
        os.kill(proc.pid, signal.SIGKILL)
        return proc.pid

    def shutdown(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting requests, drain in-flight ones, stop the
        child (politely, then with SIGKILL), close the channels."""
        with self._lock:
            already = self._closed
            self._closed = True
            proc, data, ctrl = self._proc, self._data, self._ctrl
            broken = self._broken
        deadline = time.monotonic() + max(timeout, 0.0)
        if drain and not already:
            while time.monotonic() < deadline:
                with self._lock:
                    inflight = self._inflight
                if inflight == 0:
                    break
                time.sleep(0.005)
        if proc is not None and not broken and proc.is_alive():
            self._request_shutdown(data, deadline)
        if proc is not None:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        _reap(proc)
        _close_quietly(data)
        _close_quietly(ctrl)
        with self._lock:
            self._proc = None
            self._data = None
            self._ctrl = None
            self._broken = True

    def _request_shutdown(self, sock: Any, deadline: float) -> bool:
        with self._data_lock:
            try:
                send_frame(
                    sock, {"op": "shutdown", "seq": next(self._data_seq)}
                )
                recv_frame(sock, max(0.1, deadline - time.monotonic()))
            except TransportError:
                return False  # already dead; _reap finishes the job
        return True

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def alive(self) -> bool:
        with self._lock:
            proc = self._proc
        return proc is not None and proc.is_alive()

    def broken(self) -> bool:
        with self._lock:
            return self._broken or self._closed

    @property
    def pid(self) -> Optional[int]:
        with self._lock:
            return None if self._proc is None else self._proc.pid

    def ping(self, timeout: Optional[float] = None) -> bool:
        """One heartbeat round trip; ``False`` on any miss.

        A late pong from an earlier missed ping is drained (matched by
        sequence number), so one slow beat does not poison the stream.
        """
        wait = self.heartbeat_timeout if timeout is None else timeout
        with self._lock:
            if self._broken or self._closed or self._ctrl is None:
                return False
            ctrl = self._ctrl
        deadline = time.monotonic() + wait
        with self._ctrl_lock:
            seq = next(self._ctrl_seq)
            try:
                send_frame(ctrl, {"op": "ping", "seq": seq})
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    reply = recv_frame(ctrl, remaining)
                    if reply.get("op") == "pong" and reply.get("seq") == seq:
                        return True
            except TransportTimeout:
                return False
            except TransportError:
                self._poison()
                return False

    # ------------------------------------------------------------------
    # chaos hooks (driven by ProcessPool.inject_fault)
    # ------------------------------------------------------------------
    def hang(self, seconds: float) -> None:
        """Order the child to stall both its threads (hang-without-exit
        chaos); send-only, so the control stream stays aligned."""
        with self._lock:
            if self._broken or self._closed or self._ctrl is None:
                raise WorkerUnavailable(
                    f"worker {self.worker_id} is down; nothing to hang"
                )
            ctrl = self._ctrl
        with self._ctrl_lock:
            try:
                send_frame(ctrl, {"op": "hang", "seconds": float(seconds)})
            except TransportError as err:
                self._poison()
                raise WorkerUnavailable(
                    f"worker {self.worker_id} unreachable: {err}"
                ) from err

    def corrupt_next(self, frames: int = 1) -> bool:
        """Arm the child to damage its next ``frames`` scoring replies."""
        reply = self._roundtrip(
            self._data_channel(), {"op": "chaos-corrupt", "count": int(frames)}
        )
        return bool(reply.get("armed", False))

    # ------------------------------------------------------------------
    # the worker protocol (what ShardedService calls)
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int,
        top_n: Optional[int] = None,
        exclude: Optional[Any] = None,
        deadline: Optional[float] = None,
    ) -> ServeResponse:
        sock = self._data_channel()
        with self._lock:
            self._inflight += 1
        try:
            reply = self._roundtrip(
                sock,
                {
                    "op": "recommend",
                    "user": int(user),
                    "top_n": top_n,
                    "exclude": (
                        None
                        if exclude is None
                        else sorted(int(i) for i in exclude)
                    ),
                    "deadline": deadline,
                },
            )
        finally:
            with self._lock:
                self._inflight -= 1
        if not reply.get("ok", False):
            if reply.get("error") == "ValueError":
                raise ValueError(reply.get("message", "invalid request"))
            raise WorkerUnavailable(
                f"worker {self.worker_id} rejected the request: "
                f"{reply.get('message', reply)}"
            )
        return ServeResponse(
            user=int(user),
            items=np.asarray(reply["items"]),
            level=str(reply["level"]),
            latency=float(reply["latency"]),
            retries=int(reply.get("retries", 0)),
            deadline_hit=bool(reply.get("deadline_hit", False)),
            breaker_state=str(reply.get("breaker_state", "closed")),
            model_version=str(reply.get("model_version", "unknown")),
        )

    def poll_reload(self) -> str:
        try:
            reply = self._roundtrip(
                self._data_channel(),
                {"op": "poll_reload"},
                timeout=max(self.request_timeout, 5.0),
            )
        except WorkerUnavailable:
            return "down"
        return str(reply.get("outcome", "error"))

    def ready(self) -> bool:
        try:
            reply = self._roundtrip(self._data_channel(), {"op": "ready"})
        except WorkerUnavailable:
            return False
        return bool(reply.get("ready", False))

    def health(self) -> Dict[str, Any]:
        try:
            reply = self._roundtrip(self._data_channel(), {"op": "health"})
        except WorkerUnavailable:
            return {
                "status": "down",
                "ready": False,
                "worker": self.worker_id,
                "alive": self.alive(),
            }
        health = dict(reply.get("health", {}))
        health["worker"] = self.worker_id
        health["alive"] = True
        return health

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _data_channel(self) -> Any:
        with self._lock:
            if self._closed:
                raise WorkerUnavailable(
                    f"worker {self.worker_id} is shut down"
                )
            if self._broken or self._data is None:
                raise WorkerUnavailable(f"worker {self.worker_id} is down")
            return self._data

    def _roundtrip(
        self,
        sock: Any,
        message: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        wait = self.request_timeout if timeout is None else timeout
        with self._data_lock:
            seq = next(self._data_seq)
            message["seq"] = seq
            try:
                send_frame(sock, message)
                reply = recv_frame(sock, wait)
            except TransportError as err:
                self._poison()
                raise WorkerUnavailable(
                    f"worker {self.worker_id} transport failed: {err}"
                ) from err
        if reply.get("seq") != seq:
            self._poison()
            raise WorkerUnavailable(
                f"worker {self.worker_id} answered out of sequence "
                f"(got {reply.get('seq')}, wanted {seq})"
            )
        return reply

    def _poison(self) -> None:
        with self._lock:
            self._broken = True


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ProcessPool:
    """N process-isolated workers behind the sharded front door.

    Builds one :class:`ProcWorker` per shard, routes through
    :class:`ShardedService` (so failover, the never-error ladder, the
    stale and hot-key caches, and all ``serve.pool.*`` metrics work
    unchanged), and runs a :class:`Supervisor` that respawns crashed or
    hung workers with backoff and a restart-budget circuit.

    All attributes are assigned once in ``__init__`` and treated as
    immutable; the mutable state lives inside the workers, the front
    door, and the supervisor, each of which guards its own.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        num_workers: int,
        *,
        shard_seed: int = 0,
        popularity: Optional[np.ndarray] = None,
        hot_ttl: float = 0.0,
        down_cooldown: float = 0.25,
        max_failover: Optional[int] = None,
        start_timeout: float = 10.0,
        request_timeout: float = 2.0,
        heartbeat_timeout: float = 0.5,
        start_method: str = "fork",
        supervise: bool = True,
        supervisor_interval: float = 0.05,
        max_missed: int = 3,
        restart_budget: int = 5,
        budget_window: float = 30.0,
        respawn_backoff: Optional[RetryPolicy] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.spec = spec
        self.workers: List[ProcWorker] = [
            ProcWorker(
                spec,
                worker_id,
                start_timeout=start_timeout,
                request_timeout=request_timeout,
                heartbeat_timeout=heartbeat_timeout,
                start_method=start_method,
            )
            for worker_id in range(num_workers)
        ]
        started: List[ProcWorker] = []
        try:
            for worker in self.workers:
                worker.start()
                started.append(worker)
        except WorkerUnavailable:
            for worker in started:
                worker.shutdown(drain=False, timeout=1.0)
            raise
        self.service = ShardedService(
            self.workers,
            shard_map=ShardMap(num_workers, seed=shard_seed),
            popularity=popularity if popularity is not None else spec.popularity,
            down_cooldown=down_cooldown,
            max_failover=max_failover,
            hot_ttl=hot_ttl,
            metrics=metrics,
        )
        self.metrics = metrics
        self.supervisor: Optional[Supervisor] = None
        if supervise:
            self.supervisor = Supervisor(
                self.workers,
                interval=supervisor_interval,
                heartbeat_timeout=heartbeat_timeout,
                max_missed=max_missed,
                restart_budget=restart_budget,
                budget_window=budget_window,
                backoff=respawn_backoff,
                metrics=metrics,
            )
            self.supervisor.start()

    # ------------------------------------------------------------------
    # the service protocol (what run_load and the CLI drive)
    # ------------------------------------------------------------------
    def recommend(self, *args: Any, **kwargs: Any) -> Any:
        return self.service.recommend(*args, **kwargs)

    def poll_reload(self) -> List[str]:
        return self.service.poll_reload()

    def ready(self) -> bool:
        return self.service.ready()

    def health(self) -> Dict[str, Any]:
        health = self.service.health()
        if self.supervisor is not None:
            health["supervisor"] = self.supervisor.status()
        return health

    @property
    def shard_map(self) -> ShardMap:
        return self.service.shard_map

    # ------------------------------------------------------------------
    # chaos
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        kind: str,
        worker: int = 0,
        seconds: float = 0.5,
        frames: int = 1,
    ) -> Any:
        """Process-level fault injection for the chaos harness.

        ``proc-kill`` SIGKILLs the worker *without* telling its handle —
        the pool finds out the way production would (transport EOF,
        missed heartbeats).  ``proc-hang`` stalls both child threads for
        ``seconds``; ``proc-corrupt`` damages the next ``frames``
        scoring replies.  A fault aimed at an already-down worker is a
        no-op returning ``None`` (chaos must not error the harness).
        """
        target = self.workers[int(worker) % len(self.workers)]
        if kind == "proc-kill":
            pid = target.pid
            if pid is not None and target.alive():
                os.kill(pid, signal.SIGKILL)
                return pid
            return None
        if kind == "proc-hang":
            try:
                target.hang(seconds)
            except WorkerUnavailable:
                return None
            return seconds
        if kind == "proc-corrupt":
            try:
                return target.corrupt_next(frames)
            except WorkerUnavailable:
                return None
        raise ValueError(f"unknown process fault kind {kind!r}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop supervision (no respawns during teardown), then drain
        and stop every worker."""
        if self.supervisor is not None:
            self.supervisor.stop()
        for worker in self.workers:
            worker.shutdown(drain=drain)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def build_service(
    spec: WorkerSpec,
    num_workers: int,
    *,
    backend: str = "thread",
    shard_seed: int = 0,
    hot_ttl: float = 0.0,
    **pool_kwargs: Any,
) -> Any:
    """A sharded service over ``num_workers`` replicas of ``spec``.

    ``backend="thread"`` keeps every worker in-process (PR 8 semantics);
    ``backend="process"`` isolates each worker in its own supervised
    subprocess.  Both score bit-identically for the same spec and
    requests — the process backend adds fault domains, not behavior.
    """
    if backend == "process":
        return ProcessPool(
            spec,
            num_workers,
            shard_seed=shard_seed,
            hot_ttl=hot_ttl,
            **pool_kwargs,
        )
    if backend != "thread":
        raise ValueError(
            f"backend must be 'thread' or 'process', got {backend!r}"
        )
    if pool_kwargs:
        raise ValueError(
            f"thread backend does not take {sorted(pool_kwargs)} "
            f"(process-pool options)"
        )
    workers = [build_worker_service(spec) for _ in range(num_workers)]
    return ShardedService(
        workers,
        shard_map=ShardMap(num_workers, seed=shard_seed),
        popularity=spec.popularity,
        hot_ttl=hot_ttl,
    )


__all__ = [
    "ProcWorker",
    "ProcessPool",
    "WorkerSpec",
    "WorkerUnavailable",
    "build_service",
    "build_worker_service",
]
