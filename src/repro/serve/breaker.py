"""Circuit breaker guarding the live-scoring path.

Classic three-state design (closed → open → half-open):

- **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip the breaker open;
- **open** — requests are rejected without touching the model, shielding
  a struggling backend from pile-on load; after ``recovery_time``
  seconds the breaker moves to half-open;
- **half-open** — up to ``half_open_probes`` trial requests are let
  through; if all succeed the breaker closes, any failure re-opens it
  (and restarts the recovery clock).

The clock is injectable so tests drive transitions deterministically,
and every transition is reported through ``on_transition`` so the
serving layer can count them (`serve.breaker.*` perf counters).

Thread safety: one reentrant mutex serialises the whole
allow/record/transition protocol — ``allow`` in half-open is a
check-then-act on the probe budget (two unsynchronised probes could
both pass a ``half_open_probes=1`` gate), and the consecutive-failure
counter must not lose increments under concurrent scoring threads.
``on_transition`` fires while the lock is held; callbacks must not call
back into the breaker (counter bumps, the only production use, do not).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..concurrency import guarded_by, new_rlock, shared_state

#: Breaker state names (also used in health reports and counters).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpen(RuntimeError):
    """Raised internally when the breaker rejects a request."""


@shared_state(guard="_lock")
class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed recovery.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        recovery_time: seconds the breaker stays open before probing.
        half_open_probes: successful probes required to close again.
        clock: monotonic time source (injectable for tests).
        on_transition: ``callback(old_state, new_state)`` invoked on
            every state change.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = new_rlock("serve.CircuitBreaker")
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for recovery-time expiry."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @guarded_by("_lock")
    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        if new_state == CLOSED:
            self._failures = 0
        if new_state == OPEN:
            self._opened_at = self._clock()
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    @guarded_by("_lock")
    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._transition(HALF_OPEN)

    # ------------------------------------------------------------------
    # request protocol: allow() then record_success()/record_failure()
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the next request may use the live path."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        """Report a live request that succeeded."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition(CLOSED)
            else:
                self._failures = 0

    def record_failure(self) -> None:
        """Report a live request that failed (error or deadline miss)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._failures += 1
            if (
                self._state == CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    def reset(self) -> None:
        """Force-close the breaker (admin/testing hook)."""
        with self._lock:
            self._transition(CLOSED)
            self._failures = 0
