"""Length-prefixed, checksummed message frames over a stream socket.

The wire format between the serving front door and its process-isolated
workers (:mod:`repro.serve.proc`).  Each frame is::

    8 bytes  big-endian payload length (of the bytes on the wire)
    4 bytes  CRC32 of the payload *as pickled* (before any corruption)
    N bytes  pickled message

The CRC is computed over the payload the sender intended, so a frame
that is truncated, garbled in flight, or deliberately corrupted by the
chaos harness fails :func:`recv_frame`'s checksum instead of being
deserialised into garbage.  A checksum or pickle failure raises
:class:`TransportError`; the stream itself stays aligned (the length
prefix was honest), but callers treat any transport error as poisoning
the connection — the supervisor tears the worker down and respawns it
rather than trusting a channel that has already lied once.

Fault injection: outbound payloads route through the
``proc:frame`` I/O site (:func:`repro.testing.filter_bytes`), so tests
can tear or garble frames without touching the transport code, and the
worker-side chaos op flips payload bytes explicitly (``corrupt=True``)
to simulate a worker returning damaged responses.

Timeouts: :func:`recv_frame` takes a ``timeout`` in seconds and raises
:class:`TransportTimeout` when it expires — the heartbeat deadline and
the per-request wait both ride on it.  A peer that closed (or was
SIGKILL'd) surfaces as :class:`TransportClosed`.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

from .. import testing

#: Frame header: payload length (u64) + CRC32 of the pickled payload.
HEADER = struct.Struct(">QI")

#: Refuse frames beyond this many payload bytes (a corrupt or hostile
#: length prefix must not make the receiver allocate gigabytes).
MAX_FRAME_BYTES = 1 << 28


class TransportError(RuntimeError):
    """The worker channel produced something unusable (corrupt frame,
    undecodable payload, oversized length prefix)."""


class TransportClosed(TransportError):
    """The peer hung up — process exit, SIGKILL, or an explicit close."""


class TransportTimeout(TransportError):
    """No complete frame arrived inside the allotted time."""


def worker_channel() -> Tuple[socket.socket, socket.socket]:
    """A connected, blocking socket pair: ``(parent_end, child_end)``.

    Plain ``AF_UNIX`` stream sockets, inherited by a forked worker; both
    ends default to blocking with no timeout (receivers set their own).
    """
    parent, child = socket.socketpair()
    parent.settimeout(None)
    child.settimeout(None)
    return parent, child


def _flip_bytes(payload: bytes) -> bytes:
    """Deterministically damage a payload (chaos: corrupt responses).

    XORs a slice in the middle so the length prefix still matches but
    the CRC cannot.
    """
    if not payload:
        return payload
    buffer = bytearray(payload)
    start = len(buffer) // 3
    stop = min(len(buffer), start + max(len(buffer) // 3, 1))
    for i in range(start, stop):
        buffer[i] ^= 0xFF
    return bytes(buffer)


def send_frame(sock: socket.socket, message: Any, *,
               corrupt: bool = False) -> None:
    """Pickle ``message`` and write one frame to ``sock``.

    ``corrupt=True`` sends a frame whose payload bytes were damaged
    *after* the checksum was computed — the receiver's CRC check fails,
    which is exactly how a worker under corruption chaos looks from the
    front door.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload)
    wire = testing.filter_bytes(testing.PROC_FRAME, payload)
    if corrupt:
        wire = _flip_bytes(wire)
    try:
        sock.sendall(HEADER.pack(len(wire), crc) + wire)
    except (OSError, ValueError) as err:
        raise TransportClosed(f"peer unreachable while sending: {err}") from err


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as err:
            raise TransportTimeout(
                f"no frame within the receive deadline ({err})"
            ) from err
        except (OSError, ValueError) as err:
            raise TransportClosed(f"peer unreachable: {err}") from err
        if not chunk:
            raise TransportClosed(
                "connection closed mid-frame (peer exited?)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, timeout: Optional[float] = None) -> Any:
    """Read one frame from ``sock`` and return the unpickled message.

    Args:
        sock: the channel to read from.
        timeout: seconds to wait for the *whole* frame (``None`` blocks
            forever — the worker side's idle wait).

    Raises:
        TransportTimeout: the deadline passed before a full frame.
        TransportClosed: the peer hung up (or the socket died).
        TransportError: the frame failed its CRC, exceeded
            :data:`MAX_FRAME_BYTES`, or would not unpickle.
    """
    sock.settimeout(timeout)
    header = _recv_exact(sock, HEADER.size)
    length, crc = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap "
            f"(corrupt prefix?)"
        )
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != crc:
        raise TransportError(
            "frame checksum mismatch (torn or corrupted payload)"
        )
    try:
        return pickle.loads(payload)
    except Exception as err:
        raise TransportError(f"undecodable frame payload: {err}") from err


__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "recv_frame",
    "send_frame",
    "worker_channel",
]
