"""Loss-free (de)serialisation of nested training-state trees.

A checkpoint state is an arbitrary nesting of dicts, lists, tuples,
NumPy arrays, and JSON scalars (plus NumPy scalars and RNG bit-generator
states).  :func:`encode_state` packs the arrays into a compressed
``.npz`` archive and the structure into an embedded JSON document, so a
whole snapshot is one byte string that can be checksummed and written
atomically.  :func:`decode_state` inverts it bit-exactly: float64
payloads survive as the same bits (arrays verbatim, scalars through
Python's shortest-round-trip float repr) and arbitrary-precision ints
(e.g. PCG64's 128-bit state words) survive through JSON integers.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict

import numpy as np

#: npz entry holding the JSON structure document.
TREE_KEY = "__tree__"

#: Format version written into every payload.
FORMAT_VERSION = 1

#: Config fields that never affect the optimisation trajectory and are
#: therefore excluded from :func:`config_fingerprint` (a resumed run may
#: legitimately extend the epoch budget or toggle logging/checkpointing).
#: The execution-mode fields (``fused``, ``dp_workers``, ``dp_backend``)
#: are volatile by design: fused kernels are bit-identical to the eager
#: tape and data-parallel epochs adopt worker-0 state at the boundary,
#: so a snapshot written in any mode resumes into any other.
VOLATILE_CONFIG_FIELDS = frozenset(
    {
        "epochs",
        "verbose",
        "checkpoint_dir",
        "checkpoint_every",
        "keep_last",
        "resume_from",
        "fused",
        "dp_workers",
        "dp_backend",
    }
)


def _encode(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {"t": "nd", "k": key}
    if isinstance(node, np.generic):
        node = node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return {"t": "v", "v": node}
    if isinstance(node, dict):
        encoded = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be str, got {type(key).__name__}"
                )
            encoded[key] = _encode(value, arrays)
        return {"t": "d", "v": encoded}
    if isinstance(node, (list, tuple)):
        return {
            "t": "l" if isinstance(node, list) else "tu",
            "v": [_encode(item, arrays) for item in node],
        }
    raise TypeError(
        f"cannot checkpoint object of type {type(node).__name__}: {node!r}"
    )


def _decode(spec: Any, archive) -> Any:
    tag = spec["t"]
    if tag == "nd":
        return archive[spec["k"]]
    if tag == "v":
        return spec["v"]
    if tag == "d":
        return {key: _decode(value, archive) for key, value in spec["v"].items()}
    if tag == "l":
        return [_decode(item, archive) for item in spec["v"]]
    if tag == "tu":
        return tuple(_decode(item, archive) for item in spec["v"])
    raise ValueError(f"unknown checkpoint node tag {tag!r}")


def encode_state(state: Any) -> bytes:
    """Serialise a state tree to a self-contained ``.npz`` byte string."""
    arrays: Dict[str, np.ndarray] = {}
    tree = _encode(state, arrays)
    document = json.dumps({"version": FORMAT_VERSION, "tree": tree})
    arrays[TREE_KEY] = np.frombuffer(document.encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def decode_state(data: bytes) -> Any:
    """Invert :func:`encode_state`; raises ``ValueError`` on bad payloads."""
    with np.load(io.BytesIO(data)) as archive:
        if TREE_KEY not in archive.files:
            raise ValueError("not a repro checkpoint: missing structure document")
        document = json.loads(bytes(archive[TREE_KEY].tobytes()).decode("utf-8"))
        if document.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format version {document.get('version')!r}"
            )
        return _decode(document["tree"], archive)


def checksum(data: bytes) -> str:
    """SHA-256 hex digest used for corruption detection."""
    return hashlib.sha256(data).hexdigest()


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """Capture a generator's bit-exact state (bit-generator name + words)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a state captured by :func:`rng_state` onto ``rng``.

    The generator must wrap the same bit-generator type (``PCG64`` for
    ``np.random.default_rng``); NumPy validates and raises otherwise.
    """
    rng.bit_generator.state = state


def config_fingerprint(*parts: Any) -> str:
    """Digest of the optimisation-relevant configuration.

    Accepts dataclass instances, dicts, or scalars; dataclass/dict
    fields named in :data:`VOLATILE_CONFIG_FIELDS` are dropped so a
    resumed run may extend ``epochs`` or move the checkpoint directory
    without tripping the mismatch guard.
    """
    normalised = []
    for part in parts:
        if is_dataclass(part) and not isinstance(part, type):
            part = asdict(part)
        if isinstance(part, dict):
            part = {
                key: value
                for key, value in sorted(part.items())
                if key not in VOLATILE_CONFIG_FIELDS
            }
        normalised.append(part)
    blob = json.dumps(normalised, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
