"""Checkpoint manager: atomic snapshots with manifest, retention, and
corruption recovery.

Write protocol (crash-safe by ordering):

1. encode the state tree to one byte string and checksum it;
2. write the payload to ``<name>.tmp`` and ``os.replace`` it over the
   final name — a crash mid-write leaves only a temp file;
3. append the entry (file, step, metric, sha256) to ``manifest.json``
   and rewrite the manifest with the same temp-file + ``os.replace``
   dance — a crash between payload and manifest leaves an orphan
   payload that the manifest never references.

Read protocol: :meth:`CheckpointManager.load_latest` walks the manifest
newest-first, verifies each file's checksum, and falls back to the
previous entry with a warning when a file is missing, truncated, or
garbled.  A corrupt manifest degrades to a directory scan.

Retention keeps the newest ``keep_last`` snapshots plus the best one by
metric.  The fault sites of :mod:`repro.testing` are threaded through
the write path so tests can kill or corrupt any stage.
"""

from __future__ import annotations

import json
import os
import time
import warnings
import zipfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import obs, testing
from .serialize import checksum, decode_state, encode_state

MANIFEST_NAME = "manifest.json"
_TMP_SUFFIX = ".tmp"


class CheckpointError(RuntimeError):
    """No usable checkpoint, or a checkpoint/config mismatch."""


@dataclass
class Checkpoint:
    """A decoded snapshot plus its manifest bookkeeping."""

    state: Any
    path: str
    step: int
    metric: Optional[float] = None


def read_checkpoint(path: str) -> Any:
    """Decode one checkpoint file; raises :class:`CheckpointError` when
    the file is missing or unreadable (truncated, garbled, wrong format)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
        return decode_state(data)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as err:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {err}") from err


def _atomic_write(path: str, data: bytes, site: str) -> None:
    """Write bytes via temp file + ``os.replace`` with fault sites armed."""
    data = testing.filter_bytes(site, data)
    tmp = f"{path}{_TMP_SUFFIX}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    testing.check(testing.CKPT_BEFORE_REPLACE)
    os.replace(tmp, path)
    testing.check(testing.CKPT_AFTER_REPLACE)


class CheckpointManager:
    """Rolling checkpoint store rooted at one directory.

    Args:
        directory: where payloads and ``manifest.json`` live (created on
            demand).
        keep_last: how many newest snapshots retention preserves.
        maximize_metric: whether the best-by-metric snapshot (also kept)
            is the max or the min.
        tracer: optional :class:`repro.obs.Tracer` (falls back to the
            process-global one); records ``ckpt:save`` / ``ckpt:load``
            spans with per-entry ``ckpt:validate`` children.
    """

    def __init__(
        self,
        directory: str,
        keep_last: int = 3,
        maximize_metric: bool = True,
        tracer: Optional["obs.Tracer"] = None,
    ) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = directory
        self.keep_last = keep_last
        self.maximize_metric = maximize_metric
        self.tracer = obs.resolve_tracer(tracer)
        os.makedirs(directory, exist_ok=True)
        self._drop_stale_tmp()
        self._manifest = self._load_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def entries(self) -> List[Dict[str, Any]]:
        """Manifest entries, oldest first (copies)."""
        return [dict(entry) for entry in self._manifest["checkpoints"]]

    def _load_manifest(self) -> Dict[str, Any]:
        empty = {"version": 1, "checkpoints": []}
        if not os.path.exists(self.manifest_path):
            return empty
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if not isinstance(manifest.get("checkpoints"), list):
                raise ValueError("manifest has no checkpoint list")
            return manifest
        except (OSError, ValueError) as err:
            warnings.warn(
                f"checkpoint manifest {self.manifest_path!r} is corrupt "
                f"({err}); rebuilding from directory scan",
                RuntimeWarning,
                stacklevel=2,
            )
            rebuilt = dict(empty)
            rebuilt["checkpoints"] = self._scan_directory()
            return rebuilt

    def _scan_directory(self) -> List[Dict[str, Any]]:
        """Recover entries from on-disk files (no checksums available)."""
        entries = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.directory, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                state = decode_state(data)
            except (ValueError, KeyError, zipfile.BadZipFile) as err:
                warnings.warn(
                    f"skipping unreadable checkpoint {path!r} during "
                    f"manifest rebuild: {err}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            step = state.get("step", 0) if isinstance(state, dict) else 0
            entries.append(
                {"file": name, "step": int(step), "metric": None,
                 "sha256": checksum(data), "saved_at": None}
            )
        entries.sort(key=lambda entry: entry["step"])
        return entries

    def _write_manifest(self) -> None:
        data = json.dumps(self._manifest, indent=2).encode("utf-8")
        _atomic_write(self.manifest_path, data, testing.CKPT_MANIFEST_WRITE)

    def _drop_stale_tmp(self) -> None:
        """Remove temp files left by a crash mid-write."""
        for name in os.listdir(self.directory):
            if name.endswith(_TMP_SUFFIX):
                os.remove(os.path.join(self.directory, name))

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(
        self, state: Any, step: int, metric: Optional[float] = None
    ) -> str:
        """Snapshot ``state`` atomically; returns the payload path.

        The checksum is computed from the intended bytes *before* the
        write, so corruption anywhere downstream (torn write, bit rot)
        is detectable at load time.
        """
        with self.tracer.span("ckpt:save", step=int(step)) as span:
            data = encode_state(state)
            digest = checksum(data)
            name = f"ckpt-{step:010d}.npz"
            path = os.path.join(self.directory, name)
            span.set_attributes(file=name, bytes=len(data))
            _atomic_write(path, data, testing.CKPT_PAYLOAD_WRITE)
            self._manifest["checkpoints"] = [
                entry for entry in self._manifest["checkpoints"]
                if entry["file"] != name
            ]
            self._manifest["checkpoints"].append(
                {
                    "file": name,
                    "step": int(step),
                    "metric": None if metric is None else float(metric),
                    "sha256": digest,
                    "saved_at": time.time(),
                }
            )
            self._prune()
            self._write_manifest()
        return path

    def _prune(self) -> None:
        """Keep the newest ``keep_last`` entries plus the best by metric."""
        entries = self._manifest["checkpoints"]
        if len(entries) <= self.keep_last:
            return
        keep = set(id(entry) for entry in entries[-self.keep_last:])
        scored = [entry for entry in entries if entry["metric"] is not None]
        if scored:
            best = (max if self.maximize_metric else min)(
                scored, key=lambda entry: entry["metric"]
            )
            keep.add(id(best))
        kept, dropped = [], []
        for entry in entries:
            (kept if id(entry) in keep else dropped).append(entry)
        self._manifest["checkpoints"] = kept
        for entry in dropped:
            stale = os.path.join(self.directory, entry["file"])
            if os.path.exists(stale):
                os.remove(stale)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load_latest(self) -> Optional[Checkpoint]:
        """Decode the newest valid checkpoint, or ``None`` if none exist.

        Invalid entries (missing file, checksum mismatch, undecodable
        payload) are skipped with a warning and the previous snapshot is
        tried, so a torn write degrades to losing at most the newest
        snapshot rather than the whole run.
        """
        with self.tracer.span("ckpt:load") as load_span:
            for entry in reversed(self._manifest["checkpoints"]):
                path = os.path.join(self.directory, entry["file"])
                with self.tracer.span(
                    "ckpt:validate", file=entry["file"]
                ) as span:
                    try:
                        with open(path, "rb") as handle:
                            data = handle.read()
                    except OSError as err:
                        span.set_attribute("outcome", "unreadable")
                        warnings.warn(
                            f"checkpoint {path!r} unreadable ({err}); "
                            f"falling back to the previous snapshot",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    expected = entry.get("sha256")
                    if expected is not None and checksum(data) != expected:
                        span.set_attribute("outcome", "checksum-mismatch")
                        warnings.warn(
                            f"checkpoint {path!r} failed checksum "
                            f"verification (corrupt write or bit rot); "
                            f"falling back to the previous snapshot",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    try:
                        state = decode_state(data)
                    except (ValueError, KeyError, zipfile.BadZipFile) as err:
                        span.set_attribute("outcome", "undecodable")
                        warnings.warn(
                            f"checkpoint {path!r} undecodable ({err}); "
                            f"falling back to the previous snapshot",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    span.set_attribute("outcome", "ok")
                load_span.set_attributes(
                    file=entry["file"], step=int(entry.get("step", 0))
                )
                return Checkpoint(
                    state=state,
                    path=path,
                    step=int(entry.get("step", 0)),
                    metric=entry.get("metric"),
                )
            load_span.set_attribute("outcome", "empty")
        return None


def resolve_resume(
    resume_from: Optional[str], manager: Optional[CheckpointManager] = None
) -> Optional[Any]:
    """Resolve a trainer's ``resume_from`` setting to a state tree.

    - ``None``: no resume (returns ``None``);
    - ``"auto"``: newest valid snapshot from ``manager`` (the trainer's
      checkpoint directory); returns ``None`` on a fresh directory so a
      crash-rerun loop needs no special casing;
    - a directory: newest valid snapshot from its manifest (raises
      :class:`CheckpointError` when it has none);
    - a file: that exact snapshot (raises when unreadable).
    """
    if resume_from is None:
        return None
    if resume_from == "auto":
        if manager is None:
            raise CheckpointError(
                "resume_from='auto' requires a checkpoint directory "
                "(set checkpoint_dir)"
            )
        found = manager.load_latest()
        return None if found is None else found.state
    if os.path.isdir(resume_from):
        found = CheckpointManager(resume_from).load_latest()
        if found is None:
            raise CheckpointError(
                f"no valid checkpoint found under directory {resume_from!r}"
            )
        return found.state
    return read_checkpoint(resume_from)
