"""Fault-tolerant checkpoint/resume subsystem.

Snapshots the *complete* training state — model parameters, IMCAT's
non-parameter cluster state, optimizer moments, scheduler position, RNG
bit streams, sampler cursors, epoch/step counters, and early-stopping
bookkeeping — so an interrupted run resumes to a bit-exact continuation
of the uninterrupted one.

Layers:

- :mod:`repro.ckpt.serialize` — loss-free encoding of nested state
  trees into one checksummable ``.npz`` byte string;
- :mod:`repro.ckpt.manager` — :class:`CheckpointManager` with atomic
  writes (temp file + ``os.replace``), a JSON manifest, rolling
  retention (``keep_last`` + best-by-metric), and checksum-verified
  loading that falls back past corrupt snapshots.

Trainers opt in through ``checkpoint_dir`` / ``checkpoint_every`` /
``resume_from`` on :class:`repro.models.TrainConfig` and
:class:`repro.core.IMCATTrainConfig`; see the "Checkpointing & resume"
section of the README.
"""

from .manager import (
    MANIFEST_NAME,
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    read_checkpoint,
    resolve_resume,
)
from .serialize import (
    checksum,
    config_fingerprint,
    decode_state,
    encode_state,
    rng_state,
    set_rng_state,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "MANIFEST_NAME",
    "checksum",
    "config_fingerprint",
    "decode_state",
    "encode_state",
    "read_checkpoint",
    "resolve_resume",
    "rng_state",
    "set_rng_state",
]
