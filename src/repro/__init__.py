"""Reproduction of IMCAT — Intent-aware Multi-source Contrastive
Alignment for Tag-enhanced Recommendation (Wu et al., ICDE 2023).

Subpackages:

- :mod:`repro.nn` — NumPy autograd substrate (Tensor, layers, optim);
- :mod:`repro.data` — datasets, synthetic generators, splits, sampling;
- :mod:`repro.models` — backbones (BPRMF/NeuMF/LightGCN) and baselines;
- :mod:`repro.core` — the IMCAT method (IRM + IMCA + ISA + trainer);
- :mod:`repro.eval` — ranking metrics, evaluator, group analyses;
- :mod:`repro.perf` — timers/counters instrumentation for perf reports;
- :mod:`repro.obs` — unified observability (hierarchical trace spans,
  metrics registry with Prometheus/JSONL export, sampling profiler);
- :mod:`repro.ckpt` — fault-tolerant checkpoint/resume (atomic rolling
  snapshots of the full training state, bit-exact continuation);
- :mod:`repro.testing` — fault-injection harness (crash points, I/O
  fault proxies, latency injection) exercising the checkpoint and
  serving subsystems;
- :mod:`repro.serve` — resilient online serving (deadlines, circuit
  breaker, degradation ladder, validated hot reload);
- :mod:`repro.train` — shared-memory data-parallel training (worker
  replicas over a shared parameter arena, bit-deterministic epochs);
- :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.

Quick start::

    from repro.data import generate_preset, split_dataset
    from repro.models import LightGCN
    from repro.core import IMCAT, IMCATConfig, IMCATTrainer

    dataset = generate_preset("hetrec-del", scale=0.1, seed=0)
    split = split_dataset(dataset, seed=0)
    backbone = LightGCN(dataset.num_users, dataset.num_items,
                        (split.train.user_ids, split.train.item_ids))
    model = IMCAT(backbone, dataset, split.train, IMCATConfig(num_intents=4))
    IMCATTrainer(model, split).fit()
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    bench,
    ckpt,
    core,
    data,
    eval,
    models,
    nn,
    obs,
    perf,
    serve,
    testing,
    train,
)
from .io import load_model, save_model

__all__ = [
    "bench", "ckpt", "core", "data", "eval", "load_model", "models",
    "nn", "obs", "perf", "save_model", "serve", "testing", "train",
    "__version__",
]
