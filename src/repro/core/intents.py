"""IRM: intent-aware representation modelling (Section IV.A.1).

User and item embeddings of size ``d`` are interpreted as the
concatenation of ``K`` sub-embeddings of size ``d/K`` (Eq. 3), one per
intent.  No extra parameters are introduced — the paper keeps the total
embedding size fixed for fair comparison — so the operations here are
views plus the intent-independence regulariser.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import Tensor
from ..nn import functional as F


def validate_intent_dims(embed_dim: int, num_intents: int) -> int:
    """Return ``d/K``, raising if ``K`` does not divide ``d``."""
    if embed_dim % num_intents != 0:
        raise ValueError(
            f"embedding size {embed_dim} is not divisible by "
            f"num_intents {num_intents}"
        )
    return embed_dim // num_intents


def intent_view(
    embeddings: Tensor,
    intent: int,
    num_intents: int,
    dim: int | None = None,
) -> Tensor:
    """Slice the ``intent``-th sub-embedding block: ``(n, d/K)``.

    ``dim`` is the sub-embedding size from :func:`validate_intent_dims`;
    callers on hot paths validate once at construction and pass it here,
    making the per-call path a pure slice.
    """
    if dim is None:
        dim = validate_intent_dims(embeddings.shape[-1], num_intents)
    return embeddings[:, intent * dim : (intent + 1) * dim]


def intent_views(
    embeddings: Tensor, num_intents: int, dim: int | None = None
) -> List[Tensor]:
    """All ``K`` sub-embedding views of an ``(n, d)`` tensor."""
    if dim is None:
        dim = validate_intent_dims(embeddings.shape[-1], num_intents)
    return [
        intent_view(embeddings, k, num_intents, dim=dim)
        for k in range(num_intents)
    ]


def split_intents(array: np.ndarray, num_intents: int) -> np.ndarray:
    """Reshape a plain ``(n, d)`` array to ``(n, K, d/K)`` (no autograd)."""
    n, d = array.shape
    dim = validate_intent_dims(d, num_intents)
    return array.reshape(n, num_intents, dim)


def independence_loss(
    embeddings: Tensor, num_intents: int, dim: int | None = None
) -> Tensor:
    """Penalise correlation between intent sub-embeddings.

    Section V.D: "we encourage independence of different intents by
    minimizing their correlation following the approach in [31]".  For a
    batch of entities this computes the mean squared cosine similarity
    between every pair of distinct intent blocks, which is zero exactly
    when the sub-embeddings are mutually orthogonal on average.
    """
    if num_intents <= 1:
        # Single intent: nothing to disentangle.
        return Tensor(np.zeros(()))
    views = [
        F.l2_normalize(v)
        for v in intent_views(embeddings, num_intents, dim=dim)
    ]
    total = None
    pairs = 0
    for a in range(num_intents):
        for b in range(a + 1, num_intents):
            cos = (views[a] * views[b]).sum(axis=1)
            term = (cos * cos).mean()
            total = term if total is None else total + term
            pairs += 1
    return total * (1.0 / pairs)
