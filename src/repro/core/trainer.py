"""IMCAT training loop with the paper's phase schedule (Section V.D).

Phase 1 (pre-training): optimise ``L_UV + alpha * L_VT`` (plus the
alignment loss with all tags in one cluster) so tag embeddings become
informative.  Phase 2: warm-start the cluster centres with K-means,
activate ``L_KL``, and refresh hard memberships every
``cluster_refresh_every`` steps.  Early stopping monitors validation
Recall@20.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.sampling import BPRSampler, ItemTagSampler, sample_item_batches
from ..data.split import Split
from ..eval.evaluator import Evaluator
from ..nn import Adam
from .config import IMCATConfig
from .imcat import IMCAT


@dataclass
class IMCATTrainConfig:
    """Optimisation settings for the IMCAT trainer."""

    epochs: int = 60
    batch_size: int = 1024
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    eval_every: int = 5
    patience: int = 4
    top_n: int = 20
    seed: int = 0
    verbose: bool = False


@dataclass
class IMCATTrainResult:
    """Outcome of an IMCAT training run."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    wall_time: float
    history: List[dict] = field(default_factory=list)


class IMCATTrainer:
    """Drives the two-phase IMCAT optimisation.

    Args:
        model: the :class:`IMCAT` wrapper.
        split: train/valid/test split; training batches come from
            ``split.train``, early stopping from ``split.valid``.
        train_config: optimisation settings.
        evaluator: optional custom validation evaluator.
    """

    def __init__(
        self,
        model: IMCAT,
        split: Split,
        train_config: Optional[IMCATTrainConfig] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        self.model = model
        self.split = split
        self.config = train_config or IMCATTrainConfig()
        self.evaluator = evaluator or Evaluator(
            split.train,
            split.valid,
            top_n=(self.config.top_n,),
            metrics=("recall",),
        )

    def fit(self) -> IMCATTrainResult:
        """Run the full schedule; restores the best validation state."""
        model = self.model
        config = self.config
        imcat_config: IMCATConfig = model.config
        rng = np.random.default_rng(config.seed)
        ui_sampler = BPRSampler(self.split.train, seed=config.seed)
        # The split propagates the full item-tag assignments to every
        # part, so the training view carries all tag labels (tags are
        # item metadata, not held-out interactions).
        it_sampler = ItemTagSampler(self.split.train, seed=config.seed + 1)
        metric_key = f"recall@{config.top_n}"
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )

        # Phase-1 alignment uses a single degenerate cluster; build the
        # ISA index for it once.
        model.refresh_clusters(rng)

        best_metric = -np.inf
        best_epoch = -1
        best_state = None
        bad_evals = 0
        history: List[dict] = []
        start = time.time()
        step = 0
        epochs_run = 0

        for epoch in range(config.epochs):
            epochs_run = epoch + 1
            if epoch == imcat_config.pretrain_epochs:
                model.activate_clustering(rng)
            model.train()
            model.refresh_epoch(epoch)
            it_batches = itertools.cycle(list(it_sampler.epoch(config.batch_size)))
            item_batches = itertools.cycle(
                list(
                    sample_item_batches(
                        model.num_items, imcat_config.align_batch_size, rng
                    )
                )
            )
            epoch_loss = 0.0
            num_batches = 0
            for ui_batch in ui_sampler.epoch(config.batch_size):
                model.begin_step()
                loss = model.training_loss(
                    ui_batch, next(it_batches), next(item_batches), rng
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
                step += 1
                if (
                    model.clustering_active
                    and step % imcat_config.cluster_refresh_every == 0
                ):
                    model.refresh_clusters(rng)

            record = {"epoch": epoch, "loss": epoch_loss / max(num_batches, 1)}
            if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
                model.eval()
                model.begin_step()
                result = self.evaluator.evaluate(model)
                record[metric_key] = result[metric_key]
                if config.verbose:
                    print(
                        f"[IMCAT/{model.backbone.__class__.__name__}] "
                        f"epoch {epoch}: loss={record['loss']:.4f} "
                        f"{metric_key}={result[metric_key]:.4f}"
                    )
                if result[metric_key] > best_metric:
                    best_metric = result[metric_key]
                    best_epoch = epoch
                    best_state = model.state_dict()
                    bad_evals = 0
                else:
                    bad_evals += 1
                    if bad_evals >= config.patience:
                        history.append(record)
                        break
            history.append(record)

        if best_state is not None:
            model.load_state_dict(best_state)
            model.begin_step()
        model.eval()
        return IMCATTrainResult(
            best_metric=float(best_metric) if best_metric > -np.inf else 0.0,
            best_epoch=best_epoch,
            epochs_run=epochs_run,
            wall_time=time.time() - start,
            history=history,
        )

