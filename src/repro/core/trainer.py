"""IMCAT training loop with the paper's phase schedule (Section V.D).

Phase 1 (pre-training): optimise ``L_UV + alpha * L_VT`` (plus the
alignment loss with all tags in one cluster) so tag embeddings become
informative.  Phase 2: warm-start the cluster centres with K-means,
activate ``L_KL``, and refresh hard memberships every
``cluster_refresh_every`` steps.  Early stopping monitors validation
Recall@20.

Every run carries a :class:`~repro.perf.StopwatchRegistry` /
:class:`~repro.perf.CounterRegistry` pair: the trainer times the
sampling / forward / backward / cluster-refresh / eval phases and
attaches the resulting :class:`~repro.perf.PerfReport` to the train
result, so any experiment can print a phase breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs, testing
from ..ckpt import (
    CheckpointError,
    CheckpointManager,
    config_fingerprint,
    resolve_resume,
    rng_state,
    set_rng_state,
)
from ..data.sampling import (
    BPRSampler,
    IndexCycler,
    ItemTagSampler,
    TripletBatch,
    TripletCycler,
)
from ..data.split import Split
from ..eval.evaluator import Evaluator
from ..nn import Adam, detect_anomaly, fusion
from ..perf import CounterRegistry, PerfReport, StopwatchRegistry
from ..train.parallel import DataParallelEngine, DataParallelTask, shard_bounds
from .config import IMCATConfig
from .imcat import IMCAT


@dataclass
class IMCATTrainConfig:
    """Optimisation settings for the IMCAT trainer."""

    epochs: int = 60
    batch_size: int = 1024
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    eval_every: int = 5
    patience: int = 4
    top_n: int = 20
    seed: int = 0
    verbose: bool = False
    detect_anomaly: bool = False
    """Run the whole fit under :class:`repro.nn.detect_anomaly`, so a
    NaN/Inf raises at the creating op instead of surfacing as a NaN
    loss epochs later.  Costs one finiteness scan per op output."""
    checkpoint_dir: Optional[str] = None
    """Directory for :mod:`repro.ckpt` snapshots; ``None`` disables
    checkpointing entirely."""
    checkpoint_every: int = 1
    """Snapshot every N epochs (at the epoch boundary, where the full
    RNG/sampler state makes the continuation bit-exact)."""
    keep_last: int = 3
    """Rolling retention: newest snapshots kept (plus the best by the
    validation metric)."""
    resume_from: Optional[str] = None
    """``"auto"`` resumes from the newest valid snapshot under
    ``checkpoint_dir`` (fresh start when there is none); a path loads
    that checkpoint file or directory explicitly."""
    fused: bool = False
    """Run the loss under :func:`repro.nn.fusion.fused_mode`: the BPR
    tails, InfoNCE blocks, and per-intent projection fans execute as
    single fused kernels, bit-identical to the eager tape."""
    dp_workers: int = 0
    """Data-parallel worker count; ``0`` keeps the serial loop.  With
    ``1`` worker the run is bit-identical to serial (see
    :mod:`repro.train.parallel` for the determinism contract)."""
    dp_backend: str = "fork"
    """``"fork"`` (shared-memory processes) or ``"inline"`` (same task
    protocol executed sequentially in-process)."""

    def __post_init__(self) -> None:
        if self.dp_workers < 0:
            raise ValueError(
                f"dp_workers must be non-negative, got {self.dp_workers}"
            )
        if self.dp_backend not in ("fork", "inline"):
            raise ValueError(
                f"dp_backend must be 'fork' or 'inline', got {self.dp_backend!r}"
            )


@dataclass
class IMCATTrainResult:
    """Outcome of an IMCAT training run."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    wall_time: float
    history: List[dict] = field(default_factory=list)
    perf: Optional[PerfReport] = field(default=None, repr=False)


class _ImcatEpochTask(DataParallelTask):
    """The IMCAT epoch loop in data-parallel form.

    Every worker replica replays the serial step order — ui/it/item
    batch sampling (identical across replicas, since the sampler and
    cycler RNG streams are forked in lockstep), the full
    :meth:`IMCAT.training_loss` including its loss-time RNG draws (ISA
    positive masks), and the post-step cluster refresh — but the
    user-item triplet batch is sharded, so each rank's gradients cover
    ``n_w / B`` of the ranking loss and the same fraction of the shared
    auxiliary losses (their per-rank copies sum back to weight one).
    When a batch is smaller than the worker count every rank computes
    it whole (for RNG parity) and only rank 0 publishes, at scale 1.
    """

    def __init__(
        self,
        trainer: "IMCATTrainer",
        optimizer: Adam,
        rng: np.random.Generator,
        ui_sampler: BPRSampler,
        it_sampler: ItemTagSampler,
        it_batches: TripletCycler,
        item_batches: IndexCycler,
        perf: StopwatchRegistry,
        counters: CounterRegistry,
        metrics,
        tracer,
    ) -> None:
        self.trainer = trainer
        self.model = trainer.model
        self.config = trainer.config
        self.imcat_config: IMCATConfig = trainer.model.config
        self.optimizer = optimizer
        self.rng = rng
        self.ui_sampler = ui_sampler
        self.it_sampler = it_sampler
        self.it_batches = it_batches
        self.item_batches = item_batches
        self.perf = perf
        self.counters = counters
        self.metrics = metrics
        self.tracer = tracer
        self.epoch = 0
        self.global_step = 0
        self._local_steps = 0
        self._ui_epoch = None
        self._ui: Optional[TripletBatch] = None
        self._it: Optional[TripletBatch] = None
        self._item: Optional[np.ndarray] = None

    def steps_per_epoch(self) -> int:
        return -(-self.ui_sampler.num_positives // self.config.batch_size)

    def begin_epoch(self) -> None:
        self.model.train()
        self.model.refresh_epoch(self.epoch)
        self._ui_epoch = self.ui_sampler.epoch(self.config.batch_size)
        self._local_steps = 0

    def next_step(self) -> None:
        self._ui = next(self._ui_epoch)
        self._it = next(self.it_batches)
        self._item = next(self.item_batches)

    def save_draw_state(self):
        return self.rng.bit_generator.state

    def restore_draw_state(self, state) -> None:
        self.rng.bit_generator.state = state

    def compute(self, rank: int, workers: int) -> Optional[float]:
        batch = self._ui
        assert batch is not None
        n = len(batch)
        publish = True
        if n < workers:
            shard, scale = batch, 1.0
            publish = rank == 0
        else:
            lo, hi = shard_bounds(n, workers)[rank]
            if (lo, hi) == (0, n):
                shard, scale = batch, 1.0
            else:
                shard = TripletBatch(
                    batch.anchors[lo:hi],
                    batch.positives[lo:hi],
                    batch.negatives[lo:hi],
                )
                scale = (hi - lo) / n
        self.model.begin_step()
        loss = self.model.training_loss(shard, self._it, self._item, self.rng)
        if scale != 1.0:
            loss = loss * scale
        self.optimizer.zero_grad()
        loss.backward()
        return float(loss.item()) if publish else None

    def apply_step(self) -> None:
        self.optimizer.step()

    def after_apply(self) -> None:
        self._local_steps += 1
        step = self.global_step + self._local_steps
        if (
            self.model.clustering_active
            and step % self.imcat_config.cluster_refresh_every == 0
        ):
            self.trainer._refresh_clusters(
                self.rng, self.perf, self.tracer, self.metrics
            )

    def on_parent_step(self, step_index: int, loss: float) -> None:
        self.counters.add("steps")
        remaining = (
            self.ui_sampler.num_positives - step_index * self.config.batch_size
        )
        self.counters.add("triplets", min(self.config.batch_size, remaining))
        testing.check(testing.TRAINER_STEP)

    def handback(self) -> dict:
        return {
            "rng": self.rng.bit_generator.state,
            "samplers": {
                "ui": self.ui_sampler.state_dict(),
                "it": self.it_sampler.state_dict(),
            },
            "cyclers": {
                "triplets": self.it_batches.state_dict(),
                "items": self.item_batches.state_dict(),
            },
            "model_extra": self.model.get_extra_state(),
        }

    def adopt(self, handback: dict) -> None:
        self.rng.bit_generator.state = handback["rng"]
        self.ui_sampler.load_state_dict(handback["samplers"]["ui"])
        self.it_sampler.load_state_dict(handback["samplers"]["it"])
        self.it_batches.load_state_dict(handback["cyclers"]["triplets"])
        self.item_batches.load_state_dict(handback["cyclers"]["items"])
        self.model.set_extra_state(handback["model_extra"])


class IMCATTrainer:
    """Drives the two-phase IMCAT optimisation.

    Args:
        model: the :class:`IMCAT` wrapper.
        split: train/valid/test split; training batches come from
            ``split.train``, early stopping from ``split.valid``.
        train_config: optimisation settings.
        evaluator: optional custom validation evaluator.
        perf: optional timer registry to record phase timings into
            (a fresh one is created per :meth:`fit` call otherwise).
        tracer: optional :class:`repro.obs.Tracer`; falls back to the
            process-global tracer (disabled by default).  When tracing
            is on, the run records a ``train`` → ``epoch`` → ``step`` →
            phase span tree plus per-epoch loss and cluster-drift
            gauges in :func:`repro.obs.get_metrics`.
    """

    def __init__(
        self,
        model: IMCAT,
        split: Split,
        train_config: Optional[IMCATTrainConfig] = None,
        evaluator: Optional[Evaluator] = None,
        perf: Optional[StopwatchRegistry] = None,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        self.model = model
        self.split = split
        self.config = train_config or IMCATTrainConfig()
        self.evaluator = evaluator or Evaluator(
            split.train,
            split.valid,
            top_n=(self.config.top_n,),
            metrics=("recall",),
        )
        self.perf = perf
        self.tracer = tracer

    def fit(self) -> IMCATTrainResult:
        """Run the full schedule; restores the best validation state.

        With ``config.detect_anomaly`` the run is wrapped in the
        autograd numeric sanitizer: any NaN/Inf produced on the tape
        raises :class:`repro.nn.NumericAnomalyError` naming the
        creating op and its parent shapes.
        """
        with detect_anomaly(self.config.detect_anomaly), fusion.fused_mode(
            self.config.fused
        ):
            return self._fit()

    def _fit(self) -> IMCATTrainResult:
        tracer = obs.resolve_tracer(self.tracer)
        with tracer.span(
            "train",
            method="IMCAT",
            backbone=type(self.model.backbone).__name__,
            epochs=self.config.epochs,
        ) as train_span:
            result = self._fit_loop(tracer)
            train_span.set_attributes(
                best_metric=result.best_metric, epochs_run=result.epochs_run
            )
            return result

    def _refresh_clusters(self, rng, perf, tracer, metrics) -> None:
        """One membership refresh, with the drift gauge updated.

        Drift is the fraction of tags whose hard cluster changed — the
        convergence signal the end-to-end clustering (and ELCRec-style
        variants) are tuned against.
        """
        model = self.model
        with perf.timed("cluster-refresh"):
            with tracer.span("cluster-refresh") as span:
                before = model.tag_clusters.copy()
                model.refresh_clusters(rng)
                drift = (
                    float(np.mean(before != model.tag_clusters))
                    if before.size
                    else 0.0
                )
                span.set_attribute("drift", drift)
        metrics.gauge("trainer.cluster_drift").set(drift)

    def _fit_loop(self, tracer: obs.Tracer) -> IMCATTrainResult:
        model = self.model
        config = self.config
        imcat_config: IMCATConfig = model.config
        rng = np.random.default_rng(config.seed)
        ui_sampler = BPRSampler(self.split.train, seed=config.seed)
        # The split propagates the full item-tag assignments to every
        # part, so the training view carries all tag labels (tags are
        # item metadata, not held-out interactions).
        it_sampler = ItemTagSampler(self.split.train, seed=config.seed + 1)
        metric_key = f"recall@{config.top_n}"
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        perf = self.perf if self.perf is not None else StopwatchRegistry()
        counters = CounterRegistry()
        metrics = obs.get_metrics()
        if model.tracer is None:
            model.tracer = tracer

        # Auxiliary batch streams: index arrays are cached once and
        # reshuffled in place at each wrap instead of rebuilding Python
        # lists of every batch at every epoch.
        it_batches = TripletCycler(it_sampler, config.batch_size, rng)
        item_batches = IndexCycler(
            model.num_items, imcat_config.align_batch_size, rng
        )

        manager = None
        if config.checkpoint_dir is not None:
            manager = CheckpointManager(
                config.checkpoint_dir, keep_last=config.keep_last,
                tracer=tracer,
            )
        fingerprint = config_fingerprint(
            config,
            imcat_config,
            {"kind": "imcat", "backbone": type(model.backbone).__name__},
        )

        best_metric = -np.inf
        best_epoch = -1
        best_state = None
        bad_evals = 0
        history: List[dict] = []
        start = time.time()
        step = 0
        epochs_run = 0
        start_epoch = 0

        resumed = resolve_resume(config.resume_from, manager)
        if resumed is not None:
            if resumed.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "checkpoint/config mismatch: the snapshot was written "
                    f"under fingerprint {resumed.get('fingerprint')!r} but "
                    f"this run has {fingerprint!r}; resume with the same "
                    "optimisation settings (the epoch budget may differ)"
                )
            model.load_state_dict(resumed["model"])
            model.set_extra_state(resumed["model_extra"])
            optimizer.load_state_dict(resumed["optimizer"])
            set_rng_state(rng, resumed["rng"])
            ui_sampler.load_state_dict(resumed["samplers"]["ui"])
            it_sampler.load_state_dict(resumed["samplers"]["it"])
            it_batches.load_state_dict(resumed["cyclers"]["triplets"])
            item_batches.load_state_dict(resumed["cyclers"]["items"])
            best = resumed["best"]
            best_metric = -np.inf if best["metric"] is None else best["metric"]
            best_epoch = best["epoch"]
            best_state = best["state"]
            bad_evals = best["bad_evals"]
            history = list(resumed["history"])
            step = resumed["step"]
            epochs_run = resumed["epochs_run"]
            start_epoch = resumed["epoch"]
            model.begin_step()
        else:
            # Phase-1 alignment uses a single degenerate cluster; build
            # the ISA index for it once.
            self._refresh_clusters(rng, perf, tracer, metrics)

        dp_task = None
        engine = None
        if config.dp_workers > 0:
            dp_task = _ImcatEpochTask(
                self,
                optimizer,
                rng,
                ui_sampler,
                it_sampler,
                it_batches,
                item_batches,
                perf,
                counters,
                metrics,
                tracer,
            )
            engine = DataParallelEngine(
                optimizer.parameters,
                workers=config.dp_workers,
                backend=config.dp_backend,
                tracer=tracer,
                metrics=metrics,
            )

        def snapshot(next_epoch: int) -> dict:
            """Full training state at an epoch boundary (bit-exact)."""
            return {
                "version": 1,
                "kind": "imcat",
                "fingerprint": fingerprint,
                "epoch": next_epoch,
                "step": step,
                "epochs_run": epochs_run,
                "model": model.state_dict(),
                "model_extra": model.get_extra_state(),
                "optimizer": optimizer.state_dict(),
                "rng": rng_state(rng),
                "samplers": {
                    "ui": ui_sampler.state_dict(),
                    "it": it_sampler.state_dict(),
                },
                "cyclers": {
                    "triplets": it_batches.state_dict(),
                    "items": item_batches.state_dict(),
                },
                "best": {
                    "metric": None if best_state is None else float(best_metric),
                    "epoch": best_epoch,
                    "state": best_state,
                    "bad_evals": bad_evals,
                },
                "history": history,
            }

        try:
            for epoch in range(start_epoch, config.epochs):
                epochs_run = epoch + 1
                if epoch == imcat_config.pretrain_epochs:
                    with tracer.span("activate-clustering"):
                        model.activate_clustering(rng)
                stop_early = False
                epoch_start = time.perf_counter()
                with tracer.span(
                    "epoch", index=epoch, clustering=model.clustering_active
                ) as epoch_span:
                    epoch_loss = 0.0
                    num_batches = 0
                    if engine is not None:
                        dp_task.epoch = epoch
                        dp_task.global_step = step
                        outcome = engine.run_epoch(dp_task)
                        for value in outcome.losses:
                            epoch_loss += value
                        num_batches = outcome.steps
                        step += outcome.steps
                    else:
                        model.train()
                        model.refresh_epoch(epoch)
                        ui_epoch = ui_sampler.epoch(config.batch_size)
                        while True:
                            with perf.timed("sampling"), tracer.span("sampling"):
                                ui_batch = next(ui_epoch, None)
                                if ui_batch is not None:
                                    it_batch = next(it_batches)
                                    item_batch = next(item_batches)
                            if ui_batch is None:
                                break
                            model.begin_step()
                            with perf.timed("forward"), tracer.span("forward"):
                                loss = model.training_loss(
                                    ui_batch, it_batch, item_batch, rng
                                )
                            with perf.timed("backward"), tracer.span("backward"):
                                optimizer.zero_grad()
                                loss.backward()
                                optimizer.step()
                            epoch_loss += loss.item()
                            num_batches += 1
                            step += 1
                            counters.add("steps")
                            counters.add("triplets", len(ui_batch))
                            testing.check(testing.TRAINER_STEP)
                            if (
                                model.clustering_active
                                and step % imcat_config.cluster_refresh_every == 0
                            ):
                                self._refresh_clusters(rng, perf, tracer, metrics)

                    record = {
                        "epoch": epoch, "loss": epoch_loss / max(num_batches, 1)
                    }
                    epoch_span.set_attributes(
                        loss=record["loss"], steps=num_batches
                    )
                    metrics.gauge("trainer.loss").set(record["loss"])
                    if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
                        model.eval()
                        model.begin_step()
                        with perf.timed("eval"):
                            with tracer.span("eval") as eval_span:
                                result = self.evaluator.evaluate(
                                    model, perf=perf, tracer=tracer
                                )
                                eval_span.set_attribute(
                                    "metric", result[metric_key]
                                )
                        counters.add("evals")
                        metrics.gauge(f"trainer.valid.{metric_key}").set(
                            result[metric_key]
                        )
                        record[metric_key] = result[metric_key]
                        if config.verbose:
                            print(
                                f"[IMCAT/{model.backbone.__class__.__name__}] "
                                f"epoch {epoch}: loss={record['loss']:.4f} "
                                f"{metric_key}={result[metric_key]:.4f}"
                            )
                        if result[metric_key] > best_metric:
                            best_metric = result[metric_key]
                            best_epoch = epoch
                            best_state = model.state_dict()
                            bad_evals = 0
                        else:
                            bad_evals += 1
                            if bad_evals >= config.patience:
                                stop_early = True
                    history.append(record)
                    if not stop_early and manager is not None and (
                        (epoch + 1) % config.checkpoint_every == 0
                    ):
                        with perf.timed("checkpoint"):
                            manager.save(
                                snapshot(next_epoch=epoch + 1),
                                step=step,
                                metric=record.get(metric_key),
                            )
                        counters.add("checkpoints")
                if config.fused:
                    fusion.record_metrics(metrics)
                metrics.histogram("trainer.epoch_seconds").observe(
                    time.perf_counter() - epoch_start
                )
                if stop_early:
                    break
                testing.check(testing.TRAINER_EPOCH)

        finally:
            if engine is not None:
                engine.close()

        if best_state is not None:
            model.load_state_dict(best_state)
            model.begin_step()
        model.eval()
        return IMCATTrainResult(
            best_metric=float(best_metric) if best_metric > -np.inf else 0.0,
            best_epoch=best_epoch,
            epochs_run=epochs_run,
            wall_time=time.time() - start,
            history=history,
            perf=PerfReport.from_registries(perf, counters),
        )
