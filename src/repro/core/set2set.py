"""ISA: intent-aware set-to-set alignment (Section IV.C).

For each intent ``k`` two items are *similar* when the Jaccard index of
their cluster-``k`` tag sets exceeds the threshold ``delta`` (Eq. 15).
Similar items widen each other's positive sets in the contrastive loss
(Eqs. 16-17), which multiplies the supervision received by long-tail
items — the items sharing tags with a cold item lend it their users.

The similarity structure is stored as one boolean CSR matrix per intent
and recomputed whenever the hard tag-cluster memberships change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp


def cluster_tag_matrix(
    tags_of_item: Sequence[np.ndarray],
    tag_clusters: np.ndarray,
    intent: int,
    num_items: int,
    num_tags: int,
) -> sp.csr_matrix:
    """Binary item x tag matrix restricted to one cluster's tags."""
    rows, cols = [], []
    for item in range(num_items):
        tags = tags_of_item[item]
        if len(tags) == 0:
            continue
        in_cluster = tags[tag_clusters[tags] == intent]
        rows.extend([item] * len(in_cluster))
        cols.extend(in_cluster.tolist())
    data = np.ones(len(rows))
    return sp.coo_matrix(
        (data, (rows, cols)), shape=(num_items, num_tags)
    ).tocsr()


def jaccard_similar_pairs(
    membership: sp.csr_matrix, threshold: float
) -> sp.csr_matrix:
    """Boolean item x item matrix of pairs with Jaccard > ``threshold``.

    Eq. (15): ``s_{j,j'} = |T(j) ∩ T(j')| / |T(j) ∪ T(j')|``.  Only pairs
    with non-empty intersection can pass a positive threshold, so the
    sparse product ``B B^T`` enumerates exactly the candidates.  The
    diagonal (self pairs) is excluded — Eq. 17 already counts the item's
    own pairing.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    sizes = np.asarray(membership.sum(axis=1)).ravel()
    intersection = (membership @ membership.T).tocoo()
    rows, cols, inter = intersection.row, intersection.col, intersection.data
    union = sizes[rows] + sizes[cols] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        jaccard = np.where(union > 0, inter / np.maximum(union, 1e-12), 0.0)
    keep = (jaccard > threshold) & (rows != cols)
    result = sp.coo_matrix(
        (np.ones(keep.sum(), dtype=bool), (rows[keep], cols[keep])),
        shape=intersection.shape,
    )
    return result.tocsr()


class SetToSetIndex:
    """Per-intent similar-item structure with positive sampling.

    Args:
        tags_of_item: per-item tag index arrays.
        tag_clusters: hard cluster membership per tag.
        num_intents: K.
        num_items / num_tags: entity counts.
        threshold: the Jaccard threshold ``delta``.
    """

    def __init__(
        self,
        tags_of_item: Sequence[np.ndarray],
        tag_clusters: np.ndarray,
        num_intents: int,
        num_items: int,
        num_tags: int,
        threshold: float,
    ) -> None:
        self.num_intents = num_intents
        self.threshold = threshold
        self._similar: List[sp.csr_matrix] = []
        for k in range(num_intents):
            membership = cluster_tag_matrix(
                tags_of_item, tag_clusters, k, num_items, num_tags
            )
            self._similar.append(jaccard_similar_pairs(membership, threshold))

    def similar_items(self, item: int, intent: int) -> np.ndarray:
        """``S_j^k``: indices of items similar to ``item`` under ``intent``."""
        matrix = self._similar[intent]
        start, stop = matrix.indptr[item], matrix.indptr[item + 1]
        return matrix.indices[start:stop]

    def num_similar(self, intent: int) -> int:
        """Total number of similar pairs recorded for one intent."""
        return int(self._similar[intent].nnz)

    def batch_positive_mask(
        self,
        item_batch: np.ndarray,
        intent: int,
        rng: np.random.Generator,
        max_positives: int = 4,
    ) -> Optional[np.ndarray]:
        """In-batch positive mask for Eq. (17), ``(B, B)`` boolean.

        ``mask[a, b]`` marks batch position ``b`` as a positive for the
        anchor at position ``a``: either the same item or a sampled
        member of ``P_a^k`` (at most ``max_positives`` per anchor).
        Returns ``None`` when the batch contains no similar pair, so the
        caller can skip mask handling entirely.
        """
        block = self._similar[intent][item_batch][:, item_batch]
        if block.nnz == 0:
            return None
        mask = np.asarray(block.todense(), dtype=bool)
        np.fill_diagonal(mask, False)
        # Cap |P_j^k| by down-sampling only the (few) over-budget rows.
        counts = mask.sum(axis=1)
        for row in np.where(counts > max_positives)[0]:
            cols = np.where(mask[row])[0]
            keep = rng.choice(cols, size=max_positives, replace=False)
            mask[row] = False
            mask[row, keep] = True
        mask |= np.eye(len(item_batch), dtype=bool)
        return mask
