"""IMCAT hyper-parameter configuration.

Defaults follow Section V.D: embedding size 64, batch size 1024,
learning rate and weight decay 1e-3, smoothing factors eta and tau 1,
scaling factors tuned from {1e-3, 1e-2, 1e-1, 1, 5, 10}, threshold
delta from {0.1, 0.3, 0.5, 0.7, 0.9}, K from {1, 2, 4, 8, 16},
pre-training before the clustering loss activates, and cluster
memberships refreshed every 10 iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class IMCATConfig:
    """All knobs of the IMCAT framework.

    Attributes:
        num_intents: K, the number of user intents / tag clusters.
        alpha: weight of the item-tag BPR loss ``L_VT`` (Eq. 18).
        beta: weight of the contrastive alignment loss ``L_CA*``.
        gamma: weight of the clustering KL loss ``L_KL``.
        tau: InfoNCE smoothing factor (Eq. 12).
        eta: Student-t temperature of the soft assignment (Eq. 4).
        delta: Jaccard threshold of the ISA module (Eq. 15).
        independence_weight: weight of the intent-independence
            regulariser (Section V.D, following KGIN).
        use_isa: enable set-to-set alignment (ablated in Fig. 6).
        use_nlt: enable the non-linear transformation (Table III).
        use_end_to_end_clustering: True for the Student-t self-supervised
            clustering (Eqs. 4-6); False for the paper's "naive solution"
            — periodic K-means on the tag embeddings, decoupled from the
            downstream objective (ablation baseline).
        align_item: include the item sub-embedding in ``z`` ("w/o UI"
            ablation of Table III sets this False).
        align_tag: include the tag aggregation in ``z`` ("w/o UT").
        use_alignment: master switch for the CA loss ("w/o UIT").
        use_relatedness: apply the ``M`` re-weighting of Eq. 9/12.
        alignment_objective: "infonce" for the paper's bidirectional
            contrastive loss (Eqs. 11-13); "byol" for a non-contrastive
            positive-pairs-only variant (predictor + stop-gradient,
            following the papers the related work cites as [35, 36]) —
            an extension ablation, not a paper configuration.
        user_aggregation: "mean" for the paper's arithmetic average in
            Eq. 7, or "attention" for item-conditioned attention over
            the interacting users (an extension the paper hints at by
            calling the average "the most intuitive way").
        max_users_per_item: cap on the user aggregation sample (Eq. 7).
        max_positives: cap on ``|P_j^k|`` positives per item (Eq. 17).
        align_batch_size: items per in-batch contrastive step.
        pretrain_epochs: epochs before the clustering loss activates.
        cluster_refresh_every: steps between hard-membership refreshes.
    """

    num_intents: int = 4
    alpha: float = 1.0
    beta: float = 0.1
    gamma: float = 0.1
    tau: float = 1.0
    eta: float = 1.0
    delta: float = 0.7
    independence_weight: float = 0.01
    use_isa: bool = True
    use_nlt: bool = True
    use_end_to_end_clustering: bool = True
    align_item: bool = True
    align_tag: bool = True
    use_alignment: bool = True
    use_relatedness: bool = True
    alignment_objective: str = "infonce"
    user_aggregation: str = "mean"
    max_users_per_item: int = 32
    max_positives: int = 4
    align_batch_size: int = 256
    pretrain_epochs: int = 5
    cluster_refresh_every: int = 10

    def __post_init__(self) -> None:
        if self.num_intents < 1:
            raise ValueError(f"num_intents must be >= 1, got {self.num_intents}")
        if not 0.0 <= self.delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {self.delta}")
        if self.tau <= 0 or self.eta <= 0:
            raise ValueError("tau and eta must be positive")
        for field_name in ("alpha", "beta", "gamma", "independence_weight"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.user_aggregation not in ("mean", "attention"):
            raise ValueError(
                "user_aggregation must be 'mean' or 'attention', "
                f"got {self.user_aggregation!r}"
            )
        if self.alignment_objective not in ("infonce", "byol"):
            raise ValueError(
                "alignment_objective must be 'infonce' or 'byol', "
                f"got {self.alignment_objective!r}"
            )

    def validate_embedding_dim(self, embed_dim: int) -> int:
        """Return ``d/K``, raising unless ``K`` divides ``d`` evenly.

        The intent sub-embedding views (Eq. 3) and the IMCA projection
        (Eq. 10) both require ``d % K == 0``; checking at config time
        turns a subtle broadcast bug into an immediate error.
        """
        if embed_dim % self.num_intents != 0:
            raise ValueError(
                f"embedding size {embed_dim} is not divisible by "
                f"num_intents {self.num_intents}"
            )
        return embed_dim // self.num_intents

    def ablated(self, **changes) -> "IMCATConfig":
        """Return a copy with the given fields changed (ablation helper)."""
        return replace(self, **changes)

    def without_uit(self) -> "IMCATConfig":
        """Table III "w/o UIT": no contrastive alignment at all."""
        return self.ablated(use_alignment=False)

    def without_ut(self) -> "IMCATConfig":
        """Table III "w/o UT": align users with items only."""
        return self.ablated(align_tag=False)

    def without_ui(self) -> "IMCATConfig":
        """Table III "w/o UI": align users with tags only."""
        return self.ablated(align_item=False)

    def without_nlt(self) -> "IMCATConfig":
        """Table III "w/o NLT": drop the non-linear transformation."""
        return self.ablated(use_nlt=False)
