"""IMCAT core: the paper's contribution.

- :class:`IMCATConfig` — hyper-parameters and ablation switches;
- IRM (:mod:`repro.core.intents`) — intent sub-embedding views and the
  independence regulariser;
- tag clustering (:mod:`repro.core.clustering`) — end-to-end Student-t
  self-supervised clustering plus the K-means baseline;
- IMCA (:mod:`repro.core.alignment`) — multi-source positive sample
  construction and the bidirectional InfoNCE alignment;
- ISA (:mod:`repro.core.set2set`) — Jaccard similar-item sets widening
  the positive pairs;
- :class:`IMCAT` — the model wrapper; :class:`IMCATTrainer` — the
  two-phase training schedule.
"""

from .alignment import (
    IntentAlignment,
    TagAggregator,
    UserAggregator,
    aggregate_tags_per_cluster,
    aggregate_users,
    relatedness_weights,
)
from .clustering import TagClustering, kmeans
from .config import IMCATConfig
from .explain import (
    IntentExplanation,
    cluster_summary,
    explain_pair,
    explain_recommendations,
)
from .imcat import IMCAT
from .intents import (
    independence_loss,
    intent_view,
    intent_views,
    split_intents,
    validate_intent_dims,
)
from .set2set import SetToSetIndex, cluster_tag_matrix, jaccard_similar_pairs
from .trainer import IMCATTrainConfig, IMCATTrainer, IMCATTrainResult

__all__ = [
    "IMCAT",
    "IMCATConfig",
    "IMCATTrainConfig",
    "IMCATTrainResult",
    "IMCATTrainer",
    "IntentAlignment",
    "IntentExplanation",
    "SetToSetIndex",
    "TagAggregator",
    "TagClustering",
    "UserAggregator",
    "aggregate_tags_per_cluster",
    "aggregate_users",
    "cluster_summary",
    "cluster_tag_matrix",
    "explain_pair",
    "explain_recommendations",
    "independence_loss",
    "intent_view",
    "intent_views",
    "jaccard_similar_pairs",
    "kmeans",
    "relatedness_weights",
    "split_intents",
    "validate_intent_dims",
]
