"""IMCA: intent-aware multi-source contrastive alignment (Section IV.B).

Items bridge the user source and the tag source.  For an item batch and
each intent ``k`` this module constructs

- ``ū_j^k`` — the aggregated intent-k sub-embedding of the users who
  interacted with item ``v_j`` (Eq. 7);
- ``t̄_j^k`` — the aggregated embedding of ``v_j``'s tags falling in
  cluster ``k`` (Eq. 8), zero when the item has no such tag;
- ``t̂_j^k`` — the tag aggregation projected ``d -> d/K`` (Eq. 10);
- ``z̄_j^k = L2(t̂_j^k) ⊕ L2(v_j^k)`` — the item-tag view;
- the relatedness weights ``M_{j,k}`` (Eq. 9);

optionally passes both views through the per-intent non-linear
projection head (Eq. 14), and computes the bidirectional InfoNCE of
Eqs. (11)-(13).  The ISA module widens the positive sets (Eqs. 16-17)
via the ``positive_masks`` argument.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Linear, Module, ProjectionHead, Tensor
from ..nn import functional as F
from ..nn import fusion
from .config import IMCATConfig
from .intents import intent_view, validate_intent_dims


class UserAggregator:
    """Vectorised Eq. (7): per-item mean of interacting users' rows.

    Pre-builds a padded ``(|V|, cap)`` matrix of user indices (items
    with more than ``cap`` users hold a random subsample, resampled via
    :meth:`resample`), so a batch aggregation is one embedding gather
    plus a masked mean — no per-item Python work on the training path.
    """

    def __init__(
        self,
        users_of_item: Sequence[np.ndarray],
        max_users: int,
        rng: np.random.Generator,
        mode: str = "mean",
    ) -> None:
        if mode not in ("mean", "attention"):
            raise ValueError(
                f"mode must be 'mean' or 'attention', got {mode!r}"
            )
        self._users_of_item = users_of_item
        self.max_users = max_users
        self.mode = mode
        num_items = len(users_of_item)
        lengths = np.fromiter(
            (len(u) for u in users_of_item), dtype=np.int64, count=num_items
        )
        self._counts = np.minimum(lengths, max_users)
        self._padded = np.zeros((num_items, max_users), dtype=np.int64)
        # Items at or below capacity keep their full user lists forever;
        # fill them once with a single flat scatter.  Only over-capacity
        # items ever change across resamples.
        under = np.flatnonzero((lengths > 0) & (lengths <= max_users))
        if len(under):
            under_lengths = lengths[under]
            rows = np.repeat(under, under_lengths)
            cols = np.arange(int(under_lengths.sum())) - np.repeat(
                np.concatenate([[0], np.cumsum(under_lengths)[:-1]]), under_lengths
            )
            self._padded[rows, cols] = np.concatenate(
                [users_of_item[i] for i in under]
            )
        self._over = np.flatnonzero(lengths > max_users)
        self.resample(rng)

    def resample(self, rng: np.random.Generator) -> None:
        """Redraw the subsample of users for over-capacity items.

        Iterates only the over-capacity items (at-capacity rows were
        written once at construction), so a cluster-refresh resample no
        longer loops the full item vocabulary.
        """
        # Ragged per-item populations keep this scalar; it only walks
        # the (rare) over-capacity items.
        for item in self._over:  # lint: reference-path
            self._padded[item] = rng.choice(
                self._users_of_item[item], size=self.max_users, replace=False
            )

    def subsample_state(self) -> np.ndarray:
        """The stochastic rows of the padded index: over-capacity items.

        At-capacity rows are deterministic from the dataset, so a
        checkpoint only needs the resampled rows to restore the
        aggregation bit-exactly.
        """
        return self._padded[self._over].copy()

    def load_subsample_state(self, rows: np.ndarray) -> None:
        """Restore rows captured by :meth:`subsample_state`."""
        rows = np.asarray(rows, dtype=np.int64)
        expected = (len(self._over), self.max_users)
        if rows.shape != expected:
            raise ValueError(
                f"user-subsample state mismatch: got shape {rows.shape}, "
                f"expected {expected}"
            )
        self._padded[self._over] = rows

    def __call__(
        self,
        item_batch: np.ndarray,
        user_embeddings: Tensor,
        item_embeddings: Optional[Tensor] = None,
    ) -> Tensor:
        """Aggregate per-item user rows.

        Args:
            item_batch: ``(B,)`` item indices.
            user_embeddings: ``(|U|, d)`` tensor.
            item_embeddings: ``(B, d)`` rows of the batch items — only
                required for ``mode="attention"``, where each item
                attends over its users (``softmax(u . v / sqrt(d))``)
                instead of averaging them uniformly.
        """
        indices = self._padded[item_batch]  # (B, cap)
        counts = self._counts[item_batch]  # (B,)
        batch, cap = indices.shape
        rows = F.embedding_lookup(user_embeddings, indices.reshape(-1))
        mask = (np.arange(cap)[None, :] < counts[:, None]).astype(np.float64)
        if self.mode == "attention":
            if item_embeddings is None:
                raise ValueError("attention aggregation needs item_embeddings")
            d = user_embeddings.shape[1]
            stacked = rows.reshape(batch, cap, d)
            queries = item_embeddings.reshape(batch, 1, d)
            logits = (stacked * queries).sum(axis=2) * (1.0 / np.sqrt(d))
            # Mask padding slots out of the softmax.
            logits = logits + Tensor((mask - 1.0) * 1e9)
            weights = F.softmax(logits, axis=1)
            weighted = stacked * weights.reshape(batch, cap, 1)
            out = weighted.sum(axis=1)
            # Items with no users aggregate to zero, matching mean mode.
            return F.scale_rows(out, (counts > 0).astype(np.float64))
        masked = F.scale_rows(rows, mask.reshape(-1))
        stacked = masked.reshape(batch, cap, -1)
        sums = stacked.sum(axis=1)
        return F.scale_rows(sums, 1.0 / np.maximum(counts, 1))


def _reference_aggregate_users(  # lint: reference-path
    item_batch: np.ndarray,
    users_of_item: Sequence[np.ndarray],
    user_embeddings: Tensor,
    rng: np.random.Generator,
    max_users: int = 32,
) -> Tensor:
    """Eq. (7): mean user embedding per batch item, ``(B, d)``.

    Reference implementation — the production path is
    :class:`UserAggregator`, which precomputes the padded index matrix;
    this per-item loop is kept for the equivalence tests.

    Popular items subsample at most ``max_users`` interacting users to
    bound the cost; the mean commutes with intent slicing, so one full-
    dimension aggregation serves all ``K`` intents.  Items without any
    interacting user (possible for cold items in the training split)
    aggregate to the zero vector.
    """
    segment_ids = []
    user_ids = []
    for pos, item in enumerate(item_batch):
        users = users_of_item[item]
        if len(users) == 0:
            continue
        if len(users) > max_users:
            users = rng.choice(users, size=max_users, replace=False)
        segment_ids.append(np.full(len(users), pos, dtype=np.int64))
        user_ids.append(np.asarray(users))
    if not user_ids:
        d = user_embeddings.shape[1]
        return Tensor(np.zeros((len(item_batch), d)))
    segment_ids = np.concatenate(segment_ids)
    user_ids = np.concatenate(user_ids)
    rows = F.embedding_lookup(user_embeddings, user_ids)
    return F.segment_mean(rows, segment_ids, len(item_batch))


#: Public alias — kept importable, but new code should prefer
#: :class:`UserAggregator` (the vectorized production path).
aggregate_users = _reference_aggregate_users


class TagAggregator:
    """Vectorised Eq. (8): per-(item, cluster) mean tag embeddings.

    Stores the item→tags lists in CSR form once; a batch aggregation
    gathers the flat tag ids with arithmetic on the index pointers —
    no per-item Python loop.
    """

    def __init__(self, tags_of_item: Sequence[np.ndarray], num_intents: int) -> None:
        self.num_intents = num_intents
        lengths = np.array([len(t) for t in tags_of_item], dtype=np.int64)
        self._indptr = np.concatenate([[0], np.cumsum(lengths)])
        self._flat = (
            np.concatenate([t for t in tags_of_item if len(t)])
            if lengths.sum()
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64)

    def __call__(
        self,
        item_batch: np.ndarray,
        tag_embeddings: Tensor,
        tag_clusters: np.ndarray,
    ) -> tuple[Tensor, np.ndarray]:
        k = self.num_intents
        batch = len(item_batch)
        starts = self._indptr[item_batch]
        lengths = self._indptr[item_batch + 1] - starts
        total = int(lengths.sum())
        counts = np.zeros((batch, k), dtype=np.int64)
        if total == 0:
            d = tag_embeddings.shape[1]
            return Tensor(np.zeros((batch * k, d))), counts
        # Flat positions of every (item in batch, tag) assignment.
        row_ids = np.repeat(np.arange(batch), lengths)
        within = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(lengths)[:-1]]), lengths
        )
        flat_positions = np.repeat(starts, lengths) + within
        tags = self._flat[flat_positions]
        segments = row_ids * k + tag_clusters[tags]
        counts = np.bincount(segments, minlength=batch * k).reshape(batch, k)
        rows = F.embedding_lookup(tag_embeddings, tags)
        aggregated = F.segment_mean(rows, segments, batch * k)
        return aggregated, counts


def _reference_aggregate_tags_per_cluster(  # lint: reference-path
    item_batch: np.ndarray,
    tags_of_item: Sequence[np.ndarray],
    tag_embeddings: Tensor,
    tag_clusters: np.ndarray,
    num_intents: int,
) -> tuple[Tensor, np.ndarray]:
    """Eq. (8): per-(item, cluster) mean tag embedding.

    Reference implementation — the production path is
    :class:`TagAggregator`, which stores the item→tags lists in CSR
    form; this per-item loop is kept for the equivalence tests.

    Returns:
        A ``(B * K, d)`` tensor whose row ``pos * K + k`` is
        ``t̄_{item}^{k}`` (zero when the item has no tag in cluster k),
        and the integer count matrix ``|T^k(v_j)|`` of shape ``(B, K)``
        feeding the relatedness weights of Eq. (9).
    """
    segment_ids = []
    tag_ids = []
    counts = np.zeros((len(item_batch), num_intents), dtype=np.int64)
    for pos, item in enumerate(item_batch):
        tags = tags_of_item[item]
        if len(tags) == 0:
            continue
        clusters = tag_clusters[tags]
        segment_ids.append(pos * num_intents + clusters)
        tag_ids.append(np.asarray(tags))
        np.add.at(counts[pos], clusters, 1)
    if not tag_ids:
        d = tag_embeddings.shape[1]
        return Tensor(np.zeros((len(item_batch) * num_intents, d))), counts
    segment_ids = np.concatenate(segment_ids)
    tag_ids = np.concatenate(tag_ids)
    rows = F.embedding_lookup(tag_embeddings, tag_ids)
    aggregated = F.segment_mean(
        rows, segment_ids, len(item_batch) * num_intents
    )
    return aggregated, counts


#: Public alias — kept importable, but new code should prefer
#: :class:`TagAggregator` (the vectorized production path).
aggregate_tags_per_cluster = _reference_aggregate_tags_per_cluster


def relatedness_weights(counts: np.ndarray) -> np.ndarray:
    """Eq. (9): softmax of tag counts per item over intents, ``(B, K)``.

    Computed with the standard max-shift for numerical stability (counts
    can be large for heavily tagged items).
    """
    counts = np.asarray(counts, dtype=np.float64)
    shifted = counts - counts.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


class IntentAlignment(Module):
    """The trainable pieces of IMCA plus the alignment loss.

    Holds, per intent ``k``: the tag projection ``W_0^k`` (Eq. 10) and
    the non-linear projection head (Eq. 14, shared between both views).

    Args:
        embed_dim: full embedding size ``d``.
        config: IMCAT hyper-parameters (K, tau, ablation switches).
        rng: initialisation RNG.
    """

    def __init__(
        self,
        embed_dim: int,
        config: IMCATConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.config = config
        self.embed_dim = embed_dim
        self.intent_dim = validate_intent_dims(embed_dim, config.num_intents)
        self._tag_projections: List[Linear] = []
        self._heads: List[ProjectionHead] = []
        self._predictors: List[Linear] = []
        for k in range(config.num_intents):
            proj = Linear(embed_dim, self.intent_dim, rng)
            head = ProjectionHead(self.intent_dim, rng)
            setattr(self, f"tag_proj{k}", proj)
            setattr(self, f"head{k}", head)
            self._tag_projections.append(proj)
            self._heads.append(head)
            if config.alignment_objective == "byol":
                predictor = Linear(self.intent_dim, self.intent_dim, rng)
                setattr(self, f"predictor{k}", predictor)
                self._predictors.append(predictor)

    # ------------------------------------------------------------------
    # view construction
    # ------------------------------------------------------------------
    def item_tag_view(
        self,
        intent: int,
        item_embeddings: Tensor,
        tag_aggregation: Tensor,
        has_tags: np.ndarray,
    ) -> Tensor:
        """Build ``z̄^k`` for one intent (Section IV.B.2).

        Args:
            intent: intent index ``k``.
            item_embeddings: ``(B, d)`` item final representations.
            tag_aggregation: ``(B, d)`` rows of ``t̄^k`` for this intent.
            has_tags: ``(B,)`` bool — items with no cluster-k tag keep a
                zero tag component rather than an L2-normalised garbage
                direction.
        """
        config = self.config
        components = []
        if config.align_tag:
            projected = self._tag_projections[intent](tag_aggregation)
            normalized = F.l2_normalize(projected)
            mask = has_tags.astype(np.float64)[:, None]
            components.append(F.scale_rows(normalized, mask))
        if config.align_item:
            item_sub = intent_view(
                item_embeddings, intent, config.num_intents,
                dim=self.intent_dim,
            )
            components.append(F.l2_normalize(item_sub))
        if not components:
            raise ValueError(
                "at least one of align_tag/align_item must be enabled "
                "when the alignment loss is active"
            )
        total = components[0]
        for part in components[1:]:
            total = total + part
        return total

    def project(self, intent: int, view: Tensor) -> Tensor:
        """Apply the per-intent non-linear head (Eq. 14) if enabled."""
        if not self.config.use_nlt:
            return view
        return self._heads[intent](view)

    # ------------------------------------------------------------------
    # loss
    # ------------------------------------------------------------------
    def alignment_loss(
        self,
        item_batch: np.ndarray,
        user_aggregation: Tensor,
        item_embeddings: Tensor,
        tag_aggregation_all: Tensor,
        tag_counts: np.ndarray,
        positive_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> Tensor:
        """``L_CA`` / ``L_CA*`` over one item batch (Eqs. 11-13, 16-17).

        Args:
            item_batch: ``(B,)`` item indices (defines in-batch negatives).
            user_aggregation: ``(B, d)`` rows of ``ū_j`` (Eq. 7).
            item_embeddings: ``(B, d)`` item final representations.
            tag_aggregation_all: ``(B * K, d)`` output of
                :func:`aggregate_tags_per_cluster`.
            tag_counts: ``(B, K)`` counts ``|T^k(v_j)|``.
            positive_masks: per-intent ``(B, B)`` boolean ISA positives;
                ``None`` entries fall back to identity pairing.

        Returns:
            Scalar loss, normalised by ``2K`` and the batch size.
        """
        config = self.config
        if not config.use_alignment:
            return Tensor(np.zeros(()))
        batch_size = len(item_batch)
        k_count = config.num_intents
        weights = (
            relatedness_weights(tag_counts)
            if config.use_relatedness
            else np.ones((batch_size, k_count)) / k_count
        )
        if (
            fusion.is_fused()
            and config.alignment_objective != "byol"
            and batch_size > 0
        ):
            return self._alignment_loss_fused(
                batch_size,
                user_aggregation,
                item_embeddings,
                tag_aggregation_all,
                tag_counts,
                weights,
                positive_masks,
            )
        total = None
        for k in range(k_count):
            rows = np.arange(batch_size) * k_count + k
            tag_agg = tag_aggregation_all[rows]
            has_tags = tag_counts[:, k] > 0
            u_view = intent_view(
                user_aggregation, k, k_count, dim=self.intent_dim
            )
            z_view = self.item_tag_view(k, item_embeddings, tag_agg, has_tags)
            # The paper maximises *cosine* similarity (Section IV.B.2),
            # so both projected views are L2-normalised before the logits.
            u_proj = F.l2_normalize(self.project(k, u_view))
            z_proj = F.l2_normalize(self.project(k, z_view))
            mask = positive_masks[k] if positive_masks is not None else None
            row_w = weights[:, k]
            if config.alignment_objective == "byol":
                term = self._byol_term(k, u_proj, z_proj, row_w)
            else:
                # Bidirectional InfoNCE (Eq. 11): u2it uses u as query,
                # it2u uses z as query; the mask transposes accordingly.
                u2it = F.info_nce(
                    u_proj, z_proj, config.tau,
                    row_weights=row_w, positive_mask=mask,
                )
                it2u = F.info_nce(
                    z_proj,
                    u_proj,
                    config.tau,
                    row_weights=row_w,
                    positive_mask=mask.T if mask is not None else None,
                )
                term = u2it + it2u
            total = term if total is None else total + term
        return total * (1.0 / (2.0 * k_count * max(batch_size, 1)))

    def _alignment_loss_fused(
        self,
        batch_size: int,
        user_aggregation: Tensor,
        item_embeddings: Tensor,
        tag_aggregation_all: Tensor,
        tag_counts: np.ndarray,
        weights: np.ndarray,
        positive_masks: Optional[Sequence[Optional[np.ndarray]]],
    ) -> Tensor:
        """Eqs. (10)-(14) with the K per-intent projections batched.

        The per-intent tag projections and both projection-head layers
        run as single block-diagonal :func:`repro.nn.fusion.batched_linear`
        matmuls over ``(K, B, ·)`` stacks instead of K separate Linear
        calls; normalisation, masking and the per-intent InfoNCE terms
        operate on the exact same per-slice values, so the loss and every
        parameter gradient are bit-identical to the eager per-``k`` loop.
        """
        config = self.config
        k_count = config.num_intents
        dim = self.intent_dim

        def heads(stacked: Tensor) -> Tensor:
            if not config.use_nlt:
                return stacked
            hidden = fusion.batched_linear(
                stacked,
                [head.fc1.weight for head in self._heads],
                [head.fc1.bias for head in self._heads],
            ).leaky_relu()
            return fusion.batched_linear(
                hidden, [head.fc2.weight for head in self._heads], None
            )

        # (B, K*dim) -> (K, B, dim): stack[k] is exactly intent_view(·, k).
        u_stacked = user_aggregation.reshape(
            batch_size, k_count, dim
        ).transpose(1, 0, 2)
        components = []
        if config.align_tag:
            # (B*K, d) -> (K, B, d): stack[k] rows are tag_agg for intent k.
            tag_stacked = tag_aggregation_all.reshape(
                batch_size, k_count, self.embed_dim
            ).transpose(1, 0, 2)
            projected = fusion.batched_linear(
                tag_stacked,
                [proj.weight for proj in self._tag_projections],
                [proj.bias for proj in self._tag_projections],
            )
            has_tags = (tag_counts.T > 0).astype(np.float64)[:, :, None]
            components.append(
                F.scale_rows(F.l2_normalize(projected), has_tags)
            )
        if config.align_item:
            item_stacked = item_embeddings.reshape(
                batch_size, k_count, dim
            ).transpose(1, 0, 2)
            components.append(F.l2_normalize(item_stacked))
        if not components:
            raise ValueError(
                "at least one of align_tag/align_item must be enabled "
                "when the alignment loss is active"
            )
        z_stacked = components[0]
        for part in components[1:]:
            z_stacked = z_stacked + part
        u_proj = F.l2_normalize(heads(u_stacked))
        z_proj = F.l2_normalize(heads(z_stacked))
        total = None
        for k in range(k_count):
            mask = positive_masks[k] if positive_masks is not None else None
            row_w = weights[:, k]
            u_p = u_proj[k]
            z_p = z_proj[k]
            u2it = F.info_nce(
                u_p, z_p, config.tau, row_weights=row_w, positive_mask=mask
            )
            it2u = F.info_nce(
                z_p,
                u_p,
                config.tau,
                row_weights=row_w,
                positive_mask=mask.T if mask is not None else None,
            )
            term = u2it + it2u
            total = term if total is None else total + term
        return total * (1.0 / (2.0 * k_count * max(batch_size, 1)))

    def _byol_term(
        self, intent: int, u_proj: Tensor, z_proj: Tensor, row_weights: np.ndarray
    ) -> Tensor:
        """Non-contrastive symmetric alignment (extension variant).

        Each view predicts the *detached* other view through a per-intent
        predictor; the loss is ``2 - 2 cos`` summed with the relatedness
        weights, and no negatives are used.  The stop-gradient breaks
        the collapse symmetry, as in BYOL/SimSiam.
        """
        predictor = self._predictors[intent]
        w = Tensor(np.asarray(row_weights, dtype=np.float64))

        def direction(query: Tensor, target: Tensor) -> Tensor:
            predicted = F.l2_normalize(predictor(query))
            anchored = F.l2_normalize(target.detach())
            cos = (predicted * anchored).sum(axis=1)
            return ((cos * -2.0 + 2.0) * w).sum()

        return direction(u_proj, z_proj) + direction(z_proj, u_proj)
