"""Self-supervised end-to-end tag clustering (Section IV.A.2).

Learnable cluster centres ``mu in R^{K x d}`` produce a Student-t soft
assignment ``Q`` of every tag to every cluster (Eq. 4).  A sharpened
target distribution ``Q̂`` (Eq. 5) provides the self-supervision signal,
and the KL divergence between them (Eq. 6) is minimised jointly with
the recommendation objectives, pulling tag embeddings toward cohesive
clusters.  Hard memberships — ``argmax_k Q_lk`` — identify each intent's
tag cluster.

A plain Lloyd's K-means is included both to initialise the centres
after pre-training and as the paper's "naive solution" ablation
baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Module, Parameter, Tensor, as_tensor, no_grad


class TagClustering(Module):
    """End-to-end Student-t clustering head over tag embeddings.

    Args:
        num_clusters: K, matching the number of user intents.
        embed_dim: tag embedding size ``d``.
        eta: Student-t temperature (degrees of freedom) of Eq. 4.
        rng: initialisation RNG for the cluster centres.
    """

    def __init__(
        self,
        num_clusters: int,
        embed_dim: int,
        eta: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_clusters = num_clusters
        self.eta = eta
        self.centers = Parameter(rng.normal(0.0, 0.1, size=(num_clusters, embed_dim)))

    # ------------------------------------------------------------------
    # Eq. (4): Student-t soft assignment
    # ------------------------------------------------------------------
    def soft_assignments(self, tag_embeddings: Tensor) -> Tensor:
        """``Q`` with ``Q_lk`` the probability of tag l in cluster k."""
        tags = as_tensor(tag_embeddings)
        n = tags.shape[0]
        # Squared distances ||t_l - mu_k||^2, shape (n, K).
        diff = tags.reshape(n, 1, -1) - self.centers.reshape(
            1, self.num_clusters, -1
        )
        sq_dist = (diff * diff).sum(axis=2)
        power = -(self.eta + 1.0) / 2.0
        kernel = (sq_dist * (1.0 / self.eta) + 1.0) ** power
        return kernel / kernel.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # Eq. (5): sharpened target distribution (no gradient)
    # ------------------------------------------------------------------
    @staticmethod
    def target_distribution(q: np.ndarray) -> np.ndarray:
        """``Q̂`` strengthening cluster cohesion; treated as constant."""
        q = np.asarray(q, dtype=np.float64)
        weight = q**2 / np.maximum(q.sum(axis=0, keepdims=True), 1e-12)
        return weight / np.maximum(weight.sum(axis=1, keepdims=True), 1e-12)

    # ------------------------------------------------------------------
    # Eq. (6): KL self-training loss
    # ------------------------------------------------------------------
    def kl_loss(
        self, tag_embeddings: Tensor, target: np.ndarray | None = None
    ) -> Tensor:
        """``KL(Q̂ || Q)`` with the target detached.

        Pass a pre-computed ``target`` to keep it *fixed between cluster
        refreshes* (the DEC self-training schedule the paper follows —
        recomputing Q̂ every step makes the objective chase its own
        sharpening and diverge).  Without one, the target is derived
        from the current assignments.
        """
        q = self.soft_assignments(tag_embeddings)
        if target is None:
            target = self.target_distribution(q.data)
        q_safe = q.clip(1e-12, 1.0)
        log_ratio = Tensor(np.log(np.maximum(target, 1e-12))) - q_safe.log()
        return (Tensor(target) * log_ratio).sum()

    def hard_assignments(self, tag_embeddings) -> np.ndarray:
        """``argmax_k Q_lk`` per tag (Section IV.A.2, hard allocation)."""
        with no_grad():
            q = self.soft_assignments(as_tensor(tag_embeddings))
            return np.argmax(q.data, axis=1)

    def initialize_from(self, tag_embeddings: np.ndarray, rng: np.random.Generator) -> None:
        """Set the centres by K-means on the (pre-trained) tag embeddings.

        The paper pre-trains without the clustering loss first so the tag
        embeddings are informative; this provides the warm start when the
        loss activates.
        """
        centers, _ = kmeans(
            np.asarray(tag_embeddings), self.num_clusters, rng=rng
        )
        self.centers.data[...] = centers


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator | None = None,
    max_iters: int = 50,
    tol: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's K-means with k-means++ seeding.

    The paper's "naive solution" baseline: iteratively re-clustering tag
    embeddings decoupled from the downstream objective.  Also used to
    warm-start :class:`TagClustering`.

    Returns:
        ``(centers, labels)`` with shapes ``(K, d)`` and ``(n,)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("kmeans needs at least one point")
    rng = rng if rng is not None else np.random.default_rng(0)
    k = min(num_clusters, n)

    # k-means++ seeding.
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(0, n)]
    closest_sq = ((points - centers[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[c:] = points[rng.integers(0, n, size=k - c)]
            break
        probs = closest_sq / total
        centers[c] = points[rng.choice(n, p=probs)]
        dist = ((points - centers[c]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, dist)

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        # Assign step.
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        # Update step.
        new_centers = centers.copy()
        for c in range(k):
            members = points[new_labels == c]
            if len(members):
                new_centers[c] = members.mean(axis=0)
        shift = np.abs(new_centers - centers).max()
        centers = new_centers
        if (new_labels == labels).all() and shift < tol:
            labels = new_labels
            break
        labels = new_labels

    if k < num_clusters:
        # Degenerate case: fewer points than requested clusters.
        pad = np.repeat(centers[-1:], num_clusters - k, axis=0)
        centers = np.vstack([centers, pad])
    return centers, labels
