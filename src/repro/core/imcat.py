"""The IMCAT model: backbone + IRM + IMCA + ISA (Section IV).

:class:`IMCAT` wraps any :class:`~repro.models.base.Recommender`
backbone (the paper demonstrates BPRMF, NeuMF, and LightGCN) and adds

- a tag embedding table and the item-tag ranking loss ``L_VT`` (Eq. 2);
- the self-supervised tag clustering head and ``L_KL`` (Eq. 6);
- the intent-aware contrastive alignment ``L_CA*`` (Eqs. 11-17);
- the intent-independence regulariser (Section V.D).

The joint objective (Eq. 18) is assembled per training step by
:meth:`IMCAT.training_loss`; phase scheduling (pre-training, cluster
refresh) lives in :class:`repro.core.trainer.IMCATTrainer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..data.dataset import TagRecDataset
from ..data.sampling import TripletBatch
from ..models.base import Recommender
from ..nn import Embedding, Module, Tensor, no_grad
from ..nn import functional as F
from .alignment import IntentAlignment, TagAggregator, UserAggregator
from .clustering import TagClustering, kmeans
from .config import IMCATConfig
from .intents import independence_loss
from .set2set import SetToSetIndex


class IMCAT(Module):
    """Intent-aware multi-source contrastive alignment wrapper.

    Args:
        backbone: any recommender exposing the :class:`Recommender`
            contract; its embeddings receive the auxiliary signal.
        dataset: the *full* dataset (supplies tag assignments).
        train: the training interactions (supplies the user aggregation
            of Eq. 7 — test users must never leak into it).
        config: IMCAT hyper-parameters.
        rng: initialisation RNG.
    """

    def __init__(
        self,
        backbone: Recommender,
        dataset: TagRecDataset,
        train: TagRecDataset,
        config: Optional[IMCATConfig] = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config or IMCATConfig()
        self.backbone = backbone
        self.num_users = backbone.num_users
        self.num_items = backbone.num_items
        self.num_tags = dataset.num_tags
        self.embed_dim = backbone.embed_dim

        self.tag_embedding = Embedding(dataset.num_tags, backbone.embed_dim, rng)
        self.clustering = TagClustering(
            self.config.num_intents, backbone.embed_dim, eta=self.config.eta, rng=rng
        )
        self.alignment = IntentAlignment(backbone.embed_dim, self.config, rng)
        # d/K, validated once here — hot-path intent slicing below skips
        # the per-call divisibility check.
        self.intent_dim = self.alignment.intent_dim

        self._users_of_item = train.users_of_item()
        self._tags_of_item = dataset.tags_of_item()
        self._user_aggregator = UserAggregator(
            self._users_of_item,
            self.config.max_users_per_item,
            rng,
            mode=self.config.user_aggregation,
        )
        self._tag_aggregator = TagAggregator(
            self._tags_of_item, self.config.num_intents
        )

        # Observability: the trainer injects its tracer here so the
        # per-phase loss spans land in the same trace; ``None`` falls
        # back to the process-global tracer (disabled by default).
        self.tracer: Optional[obs.Tracer] = None

        # Mutable training state managed by the trainer.
        self.clustering_active = False
        self.tag_clusters = np.zeros(dataset.num_tags, dtype=np.int64)
        self.isa_index: Optional[SetToSetIndex] = None
        self._kl_target: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # delegation to the backbone
    # ------------------------------------------------------------------
    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.backbone.pair_scores(users, items)

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        return self.backbone.all_scores(users)

    def recommend(
        self, user: int, top_n: int = 20, exclude: Optional[set] = None
    ) -> np.ndarray:
        """Top-``top_n`` items for one user (delegates to the backbone),
        so an IMCAT wrapper can sit directly behind :mod:`repro.serve`."""
        return self.backbone.recommend(user, top_n=top_n, exclude=exclude)

    def begin_step(self) -> None:
        self.backbone.begin_step()

    def refresh_epoch(self, epoch: int) -> None:
        self.backbone.refresh_epoch(epoch)

    def user_repr(self) -> Tensor:
        return self.backbone.user_repr()

    def item_repr(self) -> Tensor:
        return self.backbone.item_repr()

    # ------------------------------------------------------------------
    # learned-structure export (consumed by repro.retrieval)
    # ------------------------------------------------------------------
    def item_intent_assignments(self) -> Optional[np.ndarray]:
        """Hard intent id per item from the learned tag clusters.

        Each item inherits the majority intent of its tags' hard
        cluster memberships (Eq. 6's assignments, refreshed by the
        trainer); tagless items carry ``-1`` so consumers can route
        them separately.  ``None`` before the clustering phase
        activates — there is no learned structure to export yet.
        """
        if not self.clustering_active:
            return None
        assignments = np.full(self.num_items, -1, dtype=np.int64)
        for item, tags in enumerate(self._tags_of_item):
            if len(tags):
                votes = np.bincount(
                    self.tag_clusters[tags],
                    minlength=self.config.num_intents,
                )
                assignments[item] = int(votes.argmax())
        return assignments

    # ------------------------------------------------------------------
    # loss components
    # ------------------------------------------------------------------
    def ui_loss(self, batch: TripletBatch) -> Tensor:
        """``L_UV`` (Eq. 1), delegated to the backbone's scorer."""
        return self.backbone.bpr_loss(batch)

    def vt_loss(self, batch: TripletBatch) -> Tensor:
        """``L_VT`` (Eq. 2): BPR over item-tag pairs.

        Items use the backbone's base item embeddings; tags use IMCAT's
        own table (backbones are tag-agnostic).
        """
        v = self.backbone.item_embedding(batch.anchors)
        pos = self.tag_embedding(batch.positives)
        neg = self.tag_embedding(batch.negatives)
        pos_scores = (v * pos).sum(axis=1)
        neg_scores = (v * neg).sum(axis=1)
        return F.bpr_loss(pos_scores, neg_scores)

    def kl_loss(self) -> Tensor:
        """``L_KL`` (Eq. 6) over the full tag table (zero before the
        clustering phase activates).

        The target distribution is the one cached at the last cluster
        refresh, keeping the self-training signal stable between
        refreshes (Section V.D's every-10-iterations schedule).
        """
        if not self.clustering_active or not self.config.use_end_to_end_clustering:
            return Tensor(np.zeros(()))
        loss = self.clustering.kl_loss(
            self.tag_embedding.all(), target=self._kl_target
        )
        # Per-tag normalisation keeps gamma's effect independent of the
        # vocabulary size (Eq. 6 sums over |T| tags).
        return loss * (1.0 / max(self.num_tags, 1))

    def alignment_loss(
        self, item_batch: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """``L_CA*`` (Eq. 16) on one batch of items."""
        config = self.config
        if not config.use_alignment:
            return Tensor(np.zeros(()))
        user_final = self.backbone.user_repr()
        item_final = self.backbone.item_repr()
        batch_item_embeddings = item_final[item_batch]
        u_agg = self._user_aggregator(
            item_batch,
            user_final,
            item_embeddings=(
                batch_item_embeddings
                if config.user_aggregation == "attention"
                else None
            ),
        )
        t_agg, counts = self._tag_aggregator(
            item_batch, self.tag_embedding.all(), self.tag_clusters
        )
        masks = None
        if config.use_isa and self.isa_index is not None:
            masks = [
                self.isa_index.batch_positive_mask(
                    item_batch, k, rng, config.max_positives
                )
                for k in range(config.num_intents)
            ]
        return self.alignment.alignment_loss(
            item_batch,
            u_agg,
            batch_item_embeddings,
            t_agg,
            counts,
            positive_masks=masks,
        )

    def intent_independence_loss(self, item_batch: np.ndarray) -> Tensor:
        """Independence of intent sub-embeddings on the batch items."""
        if self.config.num_intents <= 1:
            return Tensor(np.zeros(()))
        items = self.backbone.item_embedding(item_batch)
        return independence_loss(
            items, self.config.num_intents, dim=self.intent_dim
        )

    def training_loss(
        self,
        ui_batch: TripletBatch,
        it_batch: TripletBatch,
        item_batch: np.ndarray,
        rng: np.random.Generator,
    ) -> Tensor:
        """The joint objective of Eq. (18).

        Each active component is wrapped in a trace span (``loss:bpr`` /
        ``loss:tag`` / ``loss:align`` / ``loss:kl`` /
        ``loss:independence``), so a recorded run attributes forward
        time to the paper's individual objectives.
        """
        config = self.config
        tracer = obs.resolve_tracer(self.tracer)
        with tracer.span("loss:bpr"):
            loss = self.ui_loss(ui_batch)
        if config.alpha > 0:
            with tracer.span("loss:tag"):
                loss = loss + self.vt_loss(it_batch) * config.alpha
        if config.beta > 0 and config.use_alignment:
            with tracer.span("loss:align"):
                loss = loss + self.alignment_loss(item_batch, rng) * config.beta
        if config.gamma > 0 and self.clustering_active:
            with tracer.span("loss:kl"):
                loss = loss + self.kl_loss() * config.gamma
        if config.independence_weight > 0 and config.num_intents > 1:
            with tracer.span("loss:independence"):
                loss = loss + (
                    self.intent_independence_loss(item_batch)
                    * config.independence_weight
                )
        return loss

    # ------------------------------------------------------------------
    # cluster lifecycle (driven by the trainer)
    # ------------------------------------------------------------------
    def activate_clustering(self, rng: np.random.Generator) -> None:
        """Warm-start the cluster centres after pre-training."""
        self.clustering.initialize_from(self.tag_embedding.all().data, rng)
        self.clustering_active = True
        self.refresh_clusters(rng)

    def _assign_clusters(self, rng: np.random.Generator) -> np.ndarray:
        """Hard tag memberships under the configured clustering mode."""
        tag_table = self.tag_embedding.all().data
        if self.config.use_end_to_end_clustering:
            return self.clustering.hard_assignments(tag_table)
        # "Naive solution" ablation: periodic K-means decoupled from the
        # training objective (Section IV.A.2's strawman).
        _, labels = kmeans(tag_table, self.config.num_intents, rng=rng)
        return labels

    def refresh_clusters(self, rng: np.random.Generator) -> None:
        """Recompute hard memberships and rebuild the ISA index.

        Section V.D: memberships are refreshed every 10 iterations to
        avoid instability; before the clustering phase all tags sit in
        cluster 0 (equivalent to intent-unaware alignment).
        """
        # Redraw the user subsample of popular items alongside the
        # cluster refresh so the aggregation stays stochastic.
        self._user_aggregator.resample(rng)
        if self.clustering_active:
            self.tag_clusters = self._assign_clusters(rng)
            if self.config.use_end_to_end_clustering:
                with no_grad():
                    q = self.clustering.soft_assignments(
                        self.tag_embedding.all().detach()
                    )
                    self._kl_target = self.clustering.target_distribution(q.data)
        if self.config.use_isa:
            self.isa_index = SetToSetIndex(
                self._tags_of_item,
                self.tag_clusters,
                self.config.num_intents,
                self.num_items,
                self.num_tags,
                self.config.delta,
            )

    # ------------------------------------------------------------------
    # checkpointable non-parameter state
    # ------------------------------------------------------------------
    def get_extra_state(self) -> dict:
        """Non-parameter training state for :mod:`repro.ckpt` snapshots.

        Intent-cluster state is *training* state, not just weights: the
        hard memberships, the clustering-phase flag, the cached KL
        target of Eq. 6, and the stochastic user subsample all shape the
        next gradient step, so a bit-exact resume must carry them.  The
        ISA index is derived deterministically from the memberships and
        is rebuilt on load rather than stored.
        """
        return {
            "clustering_active": self.clustering_active,
            "tag_clusters": self.tag_clusters.copy(),
            "kl_target": (
                None if self._kl_target is None else self._kl_target.copy()
            ),
            "user_subsample": self._user_aggregator.subsample_state(),
        }

    def set_extra_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_extra_state`."""
        self.clustering_active = bool(state["clustering_active"])
        self.tag_clusters = np.asarray(state["tag_clusters"], dtype=np.int64)
        kl_target = state["kl_target"]
        self._kl_target = None if kl_target is None else np.asarray(kl_target)
        self._user_aggregator.load_subsample_state(state["user_subsample"])
        if self.config.use_isa:
            self.isa_index = SetToSetIndex(
                self._tags_of_item,
                self.tag_clusters,
                self.config.num_intents,
                self.num_items,
                self.num_tags,
                self.config.delta,
            )
