"""Intent-level explanation of recommendations.

One motivation for IRM (Section IV.A) is interpretability: with user
and item embeddings decomposed into ``K`` intent sub-embeddings, the
relevance score of an inner-product scorer decomposes exactly as

    y(u, v) = sum_k  u^k . v^k

so each intent's share of the score is observable, and each intent is
anchored to a concrete tag cluster.  This module exposes that
decomposition plus per-cluster tag summaries, turning "user u was
recommended item v" into "…mostly due to intent 2, whose tags are
{delicious, yummy, …}".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn import no_grad
from .imcat import IMCAT
from .intents import split_intents


@dataclass(frozen=True)
class IntentExplanation:
    """Per-intent decomposition of one user-item relevance score."""

    user: int
    item: int
    total_score: float
    intent_scores: np.ndarray  # (K,)
    item_tag_counts: np.ndarray  # (K,) |T^k(v)|

    @property
    def dominant_intent(self) -> int:
        """The intent contributing the largest score share."""
        return int(np.argmax(self.intent_scores))

    def shares(self) -> np.ndarray:
        """Softmax-normalised intent contributions (sums to 1)."""
        scores = self.intent_scores - self.intent_scores.max()
        exps = np.exp(scores)
        return exps / exps.sum()


def explain_pair(model: IMCAT, user: int, item: int) -> IntentExplanation:
    """Decompose ``y(u, v)`` into per-intent contributions.

    Uses the backbone's final representations; exact for inner-product
    scorers (BPRMF, LightGCN) and a first-order attribution for NeuMF.
    """
    k = model.config.num_intents
    with no_grad():
        model.begin_step()
        u_vec = model.backbone.user_repr().data[user]
        v_vec = model.backbone.item_repr().data[item]
    u_blocks = split_intents(u_vec[None, :], k)[0]  # (K, d/K)
    v_blocks = split_intents(v_vec[None, :], k)[0]
    intent_scores = (u_blocks * v_blocks).sum(axis=1)
    tags = model._tags_of_item[item]
    counts = np.zeros(k, dtype=np.int64)
    if len(tags):
        np.add.at(counts, model.tag_clusters[tags], 1)
    return IntentExplanation(
        user=user,
        item=item,
        total_score=float(intent_scores.sum()),
        intent_scores=intent_scores,
        item_tag_counts=counts,
    )


def cluster_summary(
    model: IMCAT,
    tag_names: Optional[Dict[int, str]] = None,
    top: int = 8,
) -> List[Dict[str, object]]:
    """Summarise each tag cluster: size and most central member tags.

    Centrality is the distance to the learned cluster centre (or the
    cluster mean when end-to-end clustering is disabled).

    Args:
        model: a trained :class:`IMCAT`.
        tag_names: optional id -> name mapping for readable output.
        top: number of member tags to list per cluster.
    """
    embeddings = model.tag_embedding.weight.data
    clusters = model.tag_clusters
    summaries: List[Dict[str, object]] = []
    for k in range(model.config.num_intents):
        members = np.where(clusters == k)[0]
        if len(members) == 0:
            summaries.append({"intent": k, "size": 0, "tags": []})
            continue
        if model.config.use_end_to_end_clustering:
            center = model.clustering.centers.data[k]
        else:
            center = embeddings[members].mean(axis=0)
        distances = np.linalg.norm(embeddings[members] - center, axis=1)
        order = members[np.argsort(distances)][:top]
        names = [
            tag_names.get(int(t), f"tag{t}") if tag_names else f"tag{int(t)}"
            for t in order
        ]
        summaries.append({"intent": k, "size": int(len(members)), "tags": names})
    return summaries


def explain_recommendations(
    model: IMCAT,
    user: int,
    items: Sequence[int],
) -> List[IntentExplanation]:
    """Explain a ranked list of recommendations for one user."""
    return [explain_pair(model, user, int(item)) for item in items]
