"""Item-popularity groups and cold-start user subsets.

Implements the analysis protocols of Fig. 7 (five equal-size item groups
G1..G5 by ascending popularity; each group's *contribution* to overall
Recall@20) and Fig. 8 (sparse users with fewer than 10 training
interactions).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data.dataset import TagRecDataset
from .metrics import rank_items


def popularity_groups(train: TagRecDataset, num_groups: int = 5) -> List[np.ndarray]:
    """Split items into equal-size groups by ascending training degree.

    Group 1 holds the least-interacted (long-tail) items, matching the
    paper's ``G_1``; group ``num_groups`` holds the most popular.
    """
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    degrees = train.item_degrees()
    order = np.argsort(degrees, kind="stable")
    return [np.asarray(chunk) for chunk in np.array_split(order, num_groups)]


def group_recall_contributions(
    model,
    train: TagRecDataset,
    test: TagRecDataset,
    groups: Sequence[np.ndarray],
    top_n: int = 20,
    chunk_size: int = 256,
) -> np.ndarray:
    """Per-group contribution to overall Recall@``top_n``.

    Following SGL's protocol (used by the paper for Fig. 7), each user's
    recall is decomposed by which group the *hit* items belong to; the
    result sums to the overall recall across groups.
    """
    group_of_item = np.empty(train.num_items, dtype=np.int64)
    for g, members in enumerate(groups):
        group_of_item[members] = g

    train_items = train.items_of_user()
    test_items = test.items_of_user()
    eval_users = [u for u in range(test.num_users) if len(test_items[u]) > 0]

    contributions = np.zeros(len(groups))
    for start in range(0, len(eval_users), chunk_size):
        users = np.asarray(eval_users[start : start + chunk_size])
        scores = np.asarray(model.all_scores(users))
        for row, user in enumerate(users):
            exclude = set(train_items[user].tolist())
            relevant = set(test_items[user].tolist())
            if not relevant:
                continue
            ranked = rank_items(scores[row], exclude, top_n)
            for item in ranked:
                if item in relevant:
                    contributions[group_of_item[item]] += 1.0 / len(relevant)
    return contributions / max(len(eval_users), 1)


def sparse_user_subset(train: TagRecDataset, max_interactions: int = 10) -> np.ndarray:
    """Users with fewer than ``max_interactions`` training interactions.

    The paper follows [59] to build this cold-start subset (Fig. 8).
    """
    degrees = train.user_degrees()
    return np.where(degrees < max_interactions)[0]


def normalize_per_group(values: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Normalise each group/column into [0, 1] by the best method.

    Matches the presentation of Figs. 7-8: per group (or dataset), every
    method's value is divided by the maximum across methods.
    """
    if not values:
        return {}
    matrix = np.stack(list(values.values()))
    best = matrix.max(axis=0)
    best = np.where(best > 0, best, 1.0)
    return {name: vals / best for name, vals in values.items()}
