"""Full-ranking evaluation masking training items.

Evaluation protocol of Section V.B: for each user with a non-empty test
set, rank all items not in the user's training set and measure
Recall@N / NDCG@N against the held-out items.  Scores come from the
model's ``all_scores()`` in user chunks so NeuMF-style pairwise scorers
stay memory-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data.dataset import TagRecDataset
from .metrics import METRIC_FUNCTIONS, rank_items


@dataclass
class EvalResult:
    """Mean metrics plus the per-user values for significance tests."""

    metrics: Dict[str, float]
    per_user: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    user_ids: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, int))

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def summary(self) -> str:
        return ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))


class Evaluator:
    """Evaluates a scoring model on a train/test interaction pair.

    Args:
        train: training interactions (masked out of the ranking).
        test: held-out interactions defining relevance.
        top_n: cutoff list, e.g. ``(20,)`` for the paper's tables.
        metrics: metric names from :data:`METRIC_FUNCTIONS`.
        user_subset: optionally restrict to a user subset (cold-start
            analysis, Fig. 8).
    """

    def __init__(
        self,
        train: TagRecDataset,
        test: TagRecDataset,
        top_n: Sequence[int] = (20,),
        metrics: Sequence[str] = ("recall", "ndcg"),
        user_subset: Optional[Iterable[int]] = None,
    ) -> None:
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise ValueError(
                f"unknown metrics {unknown}; available: {sorted(METRIC_FUNCTIONS)}"
            )
        self._train_items = train.items_of_user()
        self._test_items = test.items_of_user()
        self.top_n = tuple(top_n)
        self.metric_names = tuple(metrics)
        allowed = set(user_subset) if user_subset is not None else None
        self.eval_users = np.asarray(
            [
                u
                for u in range(test.num_users)
                if len(self._test_items[u]) > 0
                and (allowed is None or u in allowed)
            ],
            dtype=np.int64,
        )

    def evaluate(self, model, chunk_size: int = 256) -> EvalResult:
        """Evaluate ``model`` (anything exposing ``all_scores(users)``).

        ``all_scores(users)`` must return an ``(len(users), |V|)`` score
        array without tracking gradients.
        """
        max_n = max(self.top_n)
        columns: Dict[str, List[float]] = {
            f"{m}@{n}": [] for m in self.metric_names for n in self.top_n
        }
        for start in range(0, len(self.eval_users), chunk_size):
            users = self.eval_users[start : start + chunk_size]
            scores = np.asarray(model.all_scores(users))
            if scores.shape[0] != len(users):
                raise ValueError(
                    f"all_scores returned {scores.shape[0]} rows for "
                    f"{len(users)} users"
                )
            for row, user in enumerate(users):
                exclude = set(self._train_items[user].tolist())
                relevant = set(self._test_items[user].tolist())
                ranked = rank_items(scores[row], exclude, max_n)
                for metric in self.metric_names:
                    func = METRIC_FUNCTIONS[metric]
                    for n in self.top_n:
                        columns[f"{metric}@{n}"].append(func(ranked, relevant, n))
        per_user = {key: np.asarray(vals) for key, vals in columns.items()}
        means = {
            key: float(vals.mean()) if len(vals) else 0.0
            for key, vals in per_user.items()
        }
        return EvalResult(metrics=means, per_user=per_user, user_ids=self.eval_users)
