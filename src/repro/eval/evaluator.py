"""Full-ranking evaluation masking training items.

Evaluation protocol of Section V.B: for each user with a non-empty test
set, rank all items not in the user's training set and measure
Recall@N / NDCG@N against the held-out items.  Scores come from the
model's ``all_scores()`` in user chunks so NeuMF-style pairwise scorers
stay memory-bounded.

The default :meth:`Evaluator.evaluate` path is fully vectorized: one
chunk is masked with a precomputed CSR interaction structure, top-``N``
selected with a single ``argpartition``, and all metrics computed from
a chunk-wide hit matrix — no per-user Python.  The original per-user
loop survives as :meth:`Evaluator.evaluate_reference` for equivalence
tests and the hot-path benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..data.dataset import TagRecDataset
from ..nn import no_grad
from ..perf import StopwatchRegistry
from .metrics import METRIC_FUNCTIONS, rank_items


@dataclass
class EvalResult:
    """Mean metrics plus the per-user values for significance tests."""

    metrics: Dict[str, float]
    per_user: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    user_ids: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, int))

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def summary(self) -> str:
        return ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))


def _csr_over_users(
    items_of_user: Sequence[np.ndarray], users: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, flat sorted columns) restricted to ``users``.

    Row ``i`` of the structure holds the sorted item ids of
    ``users[i]``; sorting per row makes both the masking scatter and
    the ``searchsorted`` membership tests below valid.
    """
    lengths = np.fromiter(
        (len(items_of_user[u]) for u in users), dtype=np.int64, count=len(users)
    )
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    if lengths.sum():
        flat = np.concatenate([np.sort(items_of_user[u]) for u in users])
    else:
        flat = np.empty(0, dtype=np.int64)
    return indptr, flat.astype(np.int64)


class Evaluator:
    """Evaluates a scoring model on a train/test interaction pair.

    Args:
        train: training interactions (masked out of the ranking).
        test: held-out interactions defining relevance.
        top_n: cutoff list, e.g. ``(20,)`` for the paper's tables.
        metrics: metric names from :data:`METRIC_FUNCTIONS`.
        user_subset: optionally restrict to a user subset (cold-start
            analysis, Fig. 8).
    """

    def __init__(
        self,
        train: TagRecDataset,
        test: TagRecDataset,
        top_n: Sequence[int] = (20,),
        metrics: Sequence[str] = ("recall", "ndcg"),
        user_subset: Optional[Iterable[int]] = None,
    ) -> None:
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise ValueError(
                f"unknown metrics {unknown}; available: {sorted(METRIC_FUNCTIONS)}"
            )
        self._train_items = train.items_of_user()
        self._test_items = test.items_of_user()
        self.num_items = train.num_items
        self.top_n = tuple(top_n)
        self.metric_names = tuple(metrics)
        allowed = set(user_subset) if user_subset is not None else None
        self.eval_users = np.asarray(
            [
                u
                for u in range(test.num_users)
                if len(self._test_items[u]) > 0
                and (allowed is None or u in allowed)
            ],
            dtype=np.int64,
        )
        # Precomputed CSR structures over the evaluation users: training
        # items (the -inf mask) and test items (the relevance sets,
        # globally-sorted keys for vectorized membership).
        self._mask_indptr, self._mask_flat = _csr_over_users(
            self._train_items, self.eval_users
        )
        self._rel_indptr, self._rel_flat = _csr_over_users(
            self._test_items, self.eval_users
        )
        self._rel_counts = np.diff(self._rel_indptr)

    # ------------------------------------------------------------------
    # vectorized fast path
    # ------------------------------------------------------------------
    def evaluate(
        self,
        model,
        chunk_size: int = 256,
        perf: Optional[StopwatchRegistry] = None,
        tracer: Optional[obs.Tracer] = None,
        approximate: bool = False,
        index=None,
        n_probe: int = 2,
    ) -> EvalResult:
        """Evaluate ``model`` (anything exposing ``all_scores(users)``).

        ``all_scores(users)`` must return an ``(len(users), |V|)`` score
        array without tracking gradients.

        Args:
            model: the scorer.
            chunk_size: users ranked per ``all_scores`` call.
            perf: optional timer registry; when given, the phases
                ``score`` / ``rank`` / ``metrics`` are recorded.
            tracer: optional :class:`repro.obs.Tracer` (falls back to
                the process-global tracer); records per-chunk
                ``eval:score`` / ``eval:rank`` spans and one
                ``metric:<name>@<n>`` span per configured metric.
            approximate: rank only the cluster-routed shortlist of each
                user (see :mod:`repro.retrieval`) instead of the full
                catalogue.  Off-shortlist items score ``-inf`` and never
                enter the top-N; ``n_probe = num_partitions`` reproduces
                the exact result bit-for-bit.
            index: a prebuilt :class:`repro.retrieval.ClusterIndex`
                (``None`` builds one from ``model`` on the fly).  A
                fingerprint mismatch with ``model`` raises
                :class:`repro.retrieval.IndexMismatch` — approximate
                eval against a stale index would silently misreport.
            n_probe: partitions probed per user in approximate mode.
        """
        perf = perf if perf is not None else StopwatchRegistry()
        tracer = obs.resolve_tracer(tracer)
        if approximate:
            # Local import: retrieval depends on ckpt/obs, the eval
            # layer must stay importable without it.
            from ..retrieval import ApproximateScorer, build_index

            if index is None:
                index = build_index(model)
            model = ApproximateScorer(
                model, index, n_probe=n_probe, tracer=tracer
            )
        max_n = max(self.top_n)
        chunks: Dict[str, List[np.ndarray]] = {
            f"{m}@{n}": [] for m in self.metric_names for n in self.top_n
        }
        for start in range(0, len(self.eval_users), chunk_size):
            users = self.eval_users[start : start + chunk_size]
            with perf.timed("score"), tracer.span("eval:score", users=len(users)):
                # Scoring runs under no_grad so a model that forgets to
                # detach cannot grow the tape across the full |U| x |V|
                # ranking; the copy is needed because the chunk is
                # masked in place below and the model may hand back a
                # cached or shared array.
                with no_grad():
                    scores = np.array(model.all_scores(users), dtype=np.float64)
            if scores.shape[0] != len(users):
                raise ValueError(
                    f"all_scores returned {scores.shape[0]} rows for "
                    f"{len(users)} users"
                )
            with perf.timed("rank"), tracer.span("eval:rank"):
                hits = self._rank_chunk(scores, start, len(users), max_n)
            with perf.timed("metrics"):
                relevant = self._rel_counts[start : start + len(users)]
                for key, values in self._chunk_metrics(
                    hits, relevant, tracer
                ).items():
                    chunks[key].append(values)
        per_user = {
            key: (
                np.concatenate(vals)
                if vals
                else np.empty(0, dtype=np.float64)
            )
            for key, vals in chunks.items()
        }
        means = {
            key: float(vals.mean()) if len(vals) else 0.0
            for key, vals in per_user.items()
        }
        return EvalResult(metrics=means, per_user=per_user, user_ids=self.eval_users)

    def _rank_chunk(
        self, scores: np.ndarray, start: int, rows: int, max_n: int
    ) -> np.ndarray:
        """Mask, select, and label the top ``max_n`` of one chunk.

        Returns the boolean ``(rows, k)`` hit matrix: ``hits[i, j]``
        means the j-th ranked item of user i is one of its test items.
        Slots past a user's candidate count (possible when the training
        mask leaves fewer than ``max_n`` items) are always False —
        masked candidates sort to the tail exactly as in
        :func:`rank_items`'s trim, so positions of real candidates are
        unaffected.
        """
        lo, hi = self._mask_indptr[start], self._mask_indptr[start + rows]
        mask_rows = np.repeat(
            np.arange(rows, dtype=np.int64),
            np.diff(self._mask_indptr[start : start + rows + 1]),
        )
        scores[mask_rows, self._mask_flat[lo:hi]] = -np.inf
        k = min(max_n, scores.shape[1])
        part = np.argpartition(scores, -k, axis=1)[:, -k:]
        part_scores = np.take_along_axis(scores, part, axis=1)
        order = np.argsort(part_scores, axis=1)[:, ::-1]
        ranked = np.take_along_axis(part, order, axis=1)
        valid = np.isfinite(np.take_along_axis(part_scores, order, axis=1))
        # Membership of every ranked slot in its user's test set: one
        # dense boolean scatter of the chunk's relevance lists, then a
        # gather at the ranked positions (measurably faster than a
        # searchsorted over (row, item) keys).
        rel_lo, rel_hi = self._rel_indptr[start], self._rel_indptr[start + rows]
        rel_rows = np.repeat(
            np.arange(rows, dtype=np.int64),
            np.diff(self._rel_indptr[start : start + rows + 1]),
        )
        relevance = np.zeros((rows, scores.shape[1]), dtype=bool)
        relevance[rel_rows, self._rel_flat[rel_lo:rel_hi]] = True
        hits = relevance[np.arange(rows)[:, None], ranked]
        return hits & valid

    def _chunk_metrics(
        self,
        hits: np.ndarray,
        relevant: np.ndarray,
        tracer: Optional[obs.Tracer] = None,
    ) -> Dict[str, np.ndarray]:
        """All configured metrics for one chunk from its hit matrix."""
        tracer = obs.resolve_tracer(tracer)
        hits = hits.astype(np.float64)
        k = hits.shape[1]
        discounts = 1.0 / np.log2(np.arange(k, dtype=np.float64) + 2.0)
        cum_discount = np.concatenate([[0.0], np.cumsum(discounts)])
        cum_hits = np.cumsum(hits, axis=1)
        relevant = relevant.astype(np.float64)
        out: Dict[str, np.ndarray] = {}
        for n in self.top_n:
            m = min(n, k)
            hits_n = cum_hits[:, m - 1] if m > 0 else np.zeros(len(hits))
            ideal = np.minimum(relevant, n)
            for metric in self.metric_names:
                key = f"{metric}@{n}"
                with tracer.span(f"metric:{key}"):
                    if metric == "recall":
                        out[key] = hits_n / np.maximum(relevant, 1.0)
                    elif metric == "precision":
                        out[key] = hits_n / n if n > 0 else np.zeros(len(hits))
                    elif metric == "hit_rate":
                        out[key] = (hits_n > 0).astype(np.float64)
                    elif metric == "ndcg":
                        dcg = (hits[:, :m] * discounts[:m]).sum(axis=1)
                        idcg = cum_discount[
                            np.minimum(ideal, k).astype(np.int64)
                        ]
                        out[key] = np.divide(
                            dcg, idcg, out=np.zeros_like(dcg), where=idcg > 0
                        )
                    elif metric == "map":
                        ranks = np.arange(1, m + 1, dtype=np.float64)
                        ap = (
                            hits[:, :m] * cum_hits[:, :m] / ranks
                        ).sum(axis=1)
                        out[key] = np.divide(
                            ap, ideal, out=np.zeros_like(ap), where=ideal > 0
                        )
                    else:  # pragma: no cover - guarded in __init__
                        raise AssertionError(f"unhandled metric {metric!r}")
        return out

    # ------------------------------------------------------------------
    # reference path (per-user Python loop, kept for equivalence tests
    # and as the baseline of the hot-path benchmarks)
    # ------------------------------------------------------------------
    def evaluate_reference(  # lint: reference-path
        self, model, chunk_size: int = 256
    ) -> EvalResult:
        """The original per-user implementation of :meth:`evaluate`."""
        max_n = max(self.top_n)
        columns: Dict[str, List[float]] = {
            f"{m}@{n}": [] for m in self.metric_names for n in self.top_n
        }
        for start in range(0, len(self.eval_users), chunk_size):
            users = self.eval_users[start : start + chunk_size]
            with no_grad():
                scores = np.asarray(model.all_scores(users))
            if scores.shape[0] != len(users):
                raise ValueError(
                    f"all_scores returned {scores.shape[0]} rows for "
                    f"{len(users)} users"
                )
            for row, user in enumerate(users):
                exclude = set(self._train_items[user].tolist())
                relevant = set(self._test_items[user].tolist())
                ranked = rank_items(scores[row], exclude, max_n)
                for metric in self.metric_names:
                    func = METRIC_FUNCTIONS[metric]
                    for n in self.top_n:
                        columns[f"{metric}@{n}"].append(func(ranked, relevant, n))
        per_user = {key: np.asarray(vals) for key, vals in columns.items()}
        means = {
            key: float(vals.mean()) if len(vals) else 0.0
            for key, vals in per_user.items()
        }
        return EvalResult(metrics=means, per_user=per_user, user_ids=self.eval_users)
