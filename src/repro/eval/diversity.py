"""Beyond-accuracy metrics: coverage, diversity, novelty.

The paper's opening sentence promises "accurate and diverse
recommendation services"; its evaluation reports accuracy only.  These
metrics complete the picture and power the extension bench
(``bench_ext_diversity.py``):

- **catalogue coverage** — fraction of the item universe that appears
  in at least one user's top-N list;
- **intra-list diversity (ILD)** — mean pairwise dissimilarity of the
  items inside one list, measured on the item-tag vectors (1 - cosine);
- **novelty** — mean self-information ``-log2 p(v)`` of recommended
  items under the training popularity distribution (recommending only
  head items scores low);
- **tag entropy** — entropy of the tag distribution over a list,
  capturing how many distinct intents a list serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
import scipy.sparse as sp

from ..data.dataset import TagRecDataset
from .metrics import rank_items


@dataclass(frozen=True)
class DiversityReport:
    """Aggregate beyond-accuracy metrics over all evaluated users."""

    coverage: float
    intra_list_diversity: float
    novelty: float
    tag_entropy: float

    def as_row(self) -> Dict[str, float]:
        return {
            "coverage": self.coverage,
            "ILD": self.intra_list_diversity,
            "novelty": self.novelty,
            "tag_entropy": self.tag_entropy,
        }


def catalogue_coverage(lists: Sequence[np.ndarray], num_items: int) -> float:
    """Fraction of the catalogue recommended to at least one user."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    seen: set = set()
    for items in lists:
        seen.update(int(i) for i in items)
    return len(seen) / num_items


def intra_list_diversity(
    items: np.ndarray, tag_matrix: sp.csr_matrix
) -> float:
    """Mean pairwise (1 - cosine) over the item-tag vectors of one list.

    Items without tags contribute maximal dissimilarity against tagged
    items (their tag vector is the zero vector).
    """
    if len(items) < 2:
        return 0.0
    vectors = np.asarray(tag_matrix[items].todense(), dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    unit = np.divide(vectors, norms, out=np.zeros_like(vectors), where=norms > 0)
    sims = unit @ unit.T
    n = len(items)
    upper = sims[np.triu_indices(n, k=1)]
    return float((1.0 - upper).mean())


def novelty(items: np.ndarray, item_popularity: np.ndarray) -> float:
    """Mean self-information ``-log2 p(v)`` of the recommended items.

    ``item_popularity`` holds training interaction counts; unseen items
    get a half-count so their information content stays finite.
    """
    counts = np.asarray(item_popularity, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probs = np.maximum(counts[items], 0.5) / total
    return float(-np.log2(probs).mean())


def tag_entropy(items: np.ndarray, tag_matrix: sp.csr_matrix) -> float:
    """Shannon entropy (bits) of the tag histogram of one list."""
    histogram = np.asarray(tag_matrix[items].sum(axis=0)).ravel()
    total = histogram.sum()
    if total <= 0:
        return 0.0
    probs = histogram[histogram > 0] / total
    return float(-(probs * np.log2(probs)).sum())


def evaluate_diversity(
    model,
    train: TagRecDataset,
    test: TagRecDataset,
    top_n: int = 20,
    chunk_size: int = 256,
) -> DiversityReport:
    """Compute all beyond-accuracy metrics for a trained model.

    Lists are built with the same protocol as the accuracy evaluator:
    per user with a non-empty test set, rank all items outside the
    training set and keep the top-``top_n``.
    """
    tag_matrix = train.tag_matrix()
    popularity = train.item_degrees()
    train_items = train.items_of_user()
    test_items = test.items_of_user()
    eval_users = [
        u for u in range(test.num_users) if len(test_items[u]) > 0
    ]

    lists: List[np.ndarray] = []
    for start in range(0, len(eval_users), chunk_size):
        users = np.asarray(eval_users[start : start + chunk_size])
        scores = np.asarray(model.all_scores(users))
        for row, user in enumerate(users):
            exclude = set(train_items[user].tolist())
            lists.append(rank_items(scores[row], exclude, top_n))

    if not lists:
        return DiversityReport(0.0, 0.0, 0.0, 0.0)
    return DiversityReport(
        coverage=catalogue_coverage(lists, train.num_items),
        intra_list_diversity=float(
            np.mean([intra_list_diversity(l, tag_matrix) for l in lists])
        ),
        novelty=float(np.mean([novelty(l, popularity) for l in lists])),
        tag_entropy=float(np.mean([tag_entropy(l, tag_matrix) for l in lists])),
    )
