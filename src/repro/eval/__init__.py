"""Evaluation layer: ranking metrics, full-ranking evaluator, popularity
groups, cold-start subsets, and significance testing."""

from .diversity import (
    DiversityReport,
    catalogue_coverage,
    evaluate_diversity,
    intra_list_diversity,
    novelty,
    tag_entropy,
)
from .evaluator import EvalResult, Evaluator
from .groups import (
    group_recall_contributions,
    normalize_per_group,
    popularity_groups,
    sparse_user_subset,
)
from .metrics import (
    METRIC_FUNCTIONS,
    average_precision_at_n,
    hit_rate_at_n,
    ndcg_at_n,
    precision_at_n,
    rank_items,
    recall_at_n,
)
from .significance import TTestResult, paired_t_test
from .tag_ranking import (
    TagRankingResult,
    evaluate_tag_ranking,
    split_tag_assignments,
)

__all__ = [
    "DiversityReport",
    "EvalResult",
    "Evaluator",
    "METRIC_FUNCTIONS",
    "TTestResult",
    "TagRankingResult",
    "average_precision_at_n",
    "catalogue_coverage",
    "evaluate_diversity",
    "evaluate_tag_ranking",
    "group_recall_contributions",
    "hit_rate_at_n",
    "intra_list_diversity",
    "ndcg_at_n",
    "normalize_per_group",
    "novelty",
    "paired_t_test",
    "popularity_groups",
    "precision_at_n",
    "rank_items",
    "recall_at_n",
    "sparse_user_subset",
    "split_tag_assignments",
    "tag_entropy",
]
