"""Tag-recommendation evaluation: ranking tags for items.

Section III.B frames ``L_VT`` as "recommending tags to items based on
the previous item-tag pairing history".  This evaluator measures that
auxiliary task directly: hold out a fraction of each item's tags, rank
the full vocabulary with the model's item-tag scorer, and compute
Recall@N / NDCG@N — a useful diagnostic for whether the tag embeddings
carry semantic signal before the alignment consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..data.dataset import TagRecDataset
from ..nn import no_grad
from .metrics import ndcg_at_n, rank_items, recall_at_n


def split_tag_assignments(
    dataset: TagRecDataset, holdout: float = 0.3, seed: int = 0
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Per-item split of tag assignments into (observed, held-out).

    Items keep at least one observed tag; items with a single tag get
    no held-out part (skipped by the evaluator).
    """
    if not 0.0 < holdout < 1.0:
        raise ValueError(f"holdout must be in (0, 1), got {holdout}")
    rng = np.random.default_rng(seed)
    observed: List[np.ndarray] = []
    held_out: List[np.ndarray] = []
    for tags in dataset.tags_of_item():
        tags = np.asarray(tags)
        if len(tags) < 2:
            observed.append(tags)
            held_out.append(np.empty(0, dtype=np.int64))
            continue
        perm = rng.permutation(tags)
        n_out = max(int(round(holdout * len(tags))), 1)
        n_out = min(n_out, len(tags) - 1)
        held_out.append(perm[:n_out])
        observed.append(perm[n_out:])
    return observed, held_out


@dataclass(frozen=True)
class TagRankingResult:
    """Mean tag-recommendation metrics over evaluable items."""

    recall: float
    ndcg: float
    num_items: int

    def as_row(self) -> Dict[str, float]:
        return {"recall": self.recall, "ndcg": self.ndcg}


def evaluate_tag_ranking(
    item_embeddings: np.ndarray,
    tag_embeddings: np.ndarray,
    observed: List[np.ndarray],
    held_out: List[np.ndarray],
    top_n: int = 10,
) -> TagRankingResult:
    """Rank tags per item by inner product; score against held-out tags.

    Args:
        item_embeddings: ``(|V|, d)`` array.
        tag_embeddings: ``(|T|, d)`` array.
        observed: per-item observed tags (masked out of the ranking).
        held_out: per-item held-out tags (the relevance sets).
        top_n: cutoff ``N``.
    """
    with no_grad():
        scores = np.asarray(item_embeddings) @ np.asarray(tag_embeddings).T
    recalls: List[float] = []
    ndcgs: List[float] = []
    for item, relevant in enumerate(held_out):
        if len(relevant) == 0:
            continue
        exclude = set(np.asarray(observed[item]).tolist())
        ranked = rank_items(scores[item], exclude, top_n)
        relevant_set = set(relevant.tolist())
        recalls.append(recall_at_n(list(ranked), relevant_set, top_n))
        ndcgs.append(ndcg_at_n(list(ranked), relevant_set, top_n))
    if not recalls:
        return TagRankingResult(recall=0.0, ndcg=0.0, num_items=0)
    return TagRankingResult(
        recall=float(np.mean(recalls)),
        ndcg=float(np.mean(ndcgs)),
        num_items=len(recalls),
    )
