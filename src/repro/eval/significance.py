"""Statistical significance testing between per-user metric vectors.

The paper reports paired t-tests at ``p <= 0.01`` between L-IMCAT and the
best baseline on each dataset (Table II caption).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a paired t-test between two methods."""

    statistic: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value <= alpha


def paired_t_test(values_a: np.ndarray, values_b: np.ndarray) -> TTestResult:
    """Paired t-test over per-user metric values.

    Args:
        values_a: per-user metric of method A (e.g. L-IMCAT).
        values_b: per-user metric of method B (best baseline), same users
            in the same order.

    Raises:
        ValueError: on length mismatch or fewer than two users.
    """
    values_a = np.asarray(values_a, dtype=np.float64)
    values_b = np.asarray(values_b, dtype=np.float64)
    if values_a.shape != values_b.shape:
        raise ValueError(
            f"paired t-test needs equal-length vectors, got "
            f"{values_a.shape} and {values_b.shape}"
        )
    if len(values_a) < 2:
        raise ValueError("paired t-test needs at least two users")
    diff = values_a - values_b
    if np.allclose(diff, 0.0):
        return TTestResult(statistic=0.0, p_value=1.0, mean_difference=0.0)
    statistic, p_value = stats.ttest_rel(values_a, values_b)
    return TTestResult(
        statistic=float(statistic),
        p_value=float(p_value),
        mean_difference=float(diff.mean()),
    )
