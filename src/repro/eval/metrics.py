"""Ranking metrics for top-N recommendation.

The paper reports Recall@N and NDCG@N (Section V.B); precision, hit
rate, and MAP are included for completeness.  All metrics operate on a
ranked list of recommended item ids and the set of held-out relevant
items for one user, then get averaged over users by the evaluator.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np


def recall_at_n(ranked: Sequence[int], relevant: Set[int], n: int) -> float:
    """Fraction of the relevant items that appear in the top-``n``."""
    if not relevant:
        return 0.0
    hits = sum(1 for item in ranked[:n] if item in relevant)
    return hits / len(relevant)


def precision_at_n(ranked: Sequence[int], relevant: Set[int], n: int) -> float:
    """Fraction of the top-``n`` recommendations that are relevant."""
    if n <= 0:
        return 0.0
    hits = sum(1 for item in ranked[:n] if item in relevant)
    return hits / n


def hit_rate_at_n(ranked: Sequence[int], relevant: Set[int], n: int) -> float:
    """1.0 if any relevant item appears in the top-``n``."""
    return 1.0 if any(item in relevant for item in ranked[:n]) else 0.0


def ndcg_at_n(ranked: Sequence[int], relevant: Set[int], n: int) -> float:
    """Normalised discounted cumulative gain with binary relevance.

    The ideal DCG places ``min(|relevant|, n)`` hits at the top of the
    list, which makes the metric 1.0 for a perfect ranking.
    """
    if not relevant:
        return 0.0
    dcg = 0.0
    for rank, item in enumerate(ranked[:n]):
        if item in relevant:
            dcg += 1.0 / np.log2(rank + 2.0)
    ideal_hits = min(len(relevant), n)
    idcg = sum(1.0 / np.log2(rank + 2.0) for rank in range(ideal_hits))
    return dcg / idcg if idcg > 0 else 0.0


def average_precision_at_n(ranked: Sequence[int], relevant: Set[int], n: int) -> float:
    """Mean of precision values at each hit position (MAP component)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, item in enumerate(ranked[:n]):
        if item in relevant:
            hits += 1
            total += hits / (rank + 1.0)
    denom = min(len(relevant), n)
    return total / denom if denom else 0.0


METRIC_FUNCTIONS = {
    "recall": recall_at_n,
    "ndcg": ndcg_at_n,
    "precision": precision_at_n,
    "hit_rate": hit_rate_at_n,
    "map": average_precision_at_n,
}


def rank_items(scores: np.ndarray, exclude: Set[int], top_n: int) -> np.ndarray:
    """Return the ``top_n`` item indices by score, skipping ``exclude``.

    ``exclude`` holds the user's training items: the task definition
    (Section III.A) requires the recommended set to be disjoint from the
    training set.  Implemented with ``argpartition`` for O(|V|) selection
    followed by an O(top_n log top_n) sort.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if exclude:
        scores = scores.copy()
        scores[list(exclude)] = -np.inf
    k = min(top_n, len(scores))
    top = np.argpartition(scores, -k)[-k:]
    ranked = top[np.argsort(scores[top])[::-1]]
    # Excluded items must never be recommended, even when fewer than
    # ``top_n`` candidates remain.
    return ranked[np.isfinite(scores[ranked])]
