"""Sparse graph operators for GNN backbones.

LightGCN, TGCN, KGAT, SGL, etc. all propagate embeddings through a
normalised adjacency matrix.  The adjacency is constant during one
forward pass, so the only gradient path is through the dense operand:
``d/dX (A @ X) = A.T @ G``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor


def sparse_matmul(adj: sp.spmatrix, x: Tensor) -> Tensor:
    """Differentiable ``adj @ x`` for a constant sparse ``adj``."""
    x = as_tensor(x)
    adj = adj.tocsr()
    out_data = adj @ x.data
    adj_t = adj.T.tocsr()

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(adj_t @ g)

    return Tensor._make(out_data, (x,), backward)


def build_interaction_matrix(
    user_ids: np.ndarray,
    item_ids: np.ndarray,
    num_users: int,
    num_items: int,
) -> sp.csr_matrix:
    """Binary user-item interaction matrix ``Y`` as CSR."""
    data = np.ones(len(user_ids), dtype=np.float64)
    mat = sp.coo_matrix(
        (data, (user_ids, item_ids)), shape=(num_users, num_items)
    )
    mat.sum_duplicates()
    mat.data[:] = 1.0
    return mat.tocsr()


def normalized_bipartite_adjacency(interactions: sp.csr_matrix) -> sp.csr_matrix:
    """Symmetric-normalised bipartite adjacency used by LightGCN.

    Builds the ``(|U|+|V|) x (|U|+|V|)`` block matrix
    ``[[0, R], [R.T, 0]]`` and normalises it as ``D^-1/2 A D^-1/2``.
    Zero-degree nodes get zero rows (their embeddings pass through the
    residual/self term in the model).
    """
    num_users, num_items = interactions.shape
    upper = sp.hstack(
        [sp.csr_matrix((num_users, num_users)), interactions], format="csr"
    )
    lower = sp.hstack(
        [interactions.T.tocsr(), sp.csr_matrix((num_items, num_items))],
        format="csr",
    )
    adj = sp.vstack([upper, lower], format="csr")
    return symmetric_normalize(adj)


def symmetric_normalize(adj: sp.csr_matrix) -> sp.csr_matrix:
    """``D^-1/2 A D^-1/2`` with zero-degree rows left as zeros."""
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def row_normalize(adj: sp.csr_matrix) -> sp.csr_matrix:
    """``D^-1 A`` row-stochastic normalisation."""
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return (sp.diags(inv) @ adj).tocsr()


def drop_edges(
    adj: sp.csr_matrix, drop_ratio: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Randomly drop a fraction of edges (SGL's edge-dropout, "ED").

    Returns a new matrix with ``drop_ratio`` of the non-zeros removed.
    The result is *not* re-normalised; callers normalise afterwards.
    """
    if not 0.0 <= drop_ratio < 1.0:
        raise ValueError(f"drop_ratio must be in [0, 1), got {drop_ratio}")
    coo = adj.tocoo()
    keep = rng.random(coo.nnz) >= drop_ratio
    return sp.coo_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=adj.shape
    ).tocsr()


def drop_nodes(
    adj: sp.csr_matrix, drop_ratio: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Drop a fraction of *nodes* with all their edges (SGL's "ND").

    A dropped row index loses every incident edge — both the edges it
    owns as a row and those pointing at it as a column (the matrix is
    treated as an adjacency over one shared node universe).
    """
    if not 0.0 <= drop_ratio < 1.0:
        raise ValueError(f"drop_ratio must be in [0, 1), got {drop_ratio}")
    num_rows, num_cols = adj.shape
    keep_rows = rng.random(num_rows) >= drop_ratio
    keep_cols = (
        keep_rows if num_rows == num_cols else rng.random(num_cols) >= drop_ratio
    )
    coo = adj.tocoo()
    keep = keep_rows[coo.row] & keep_cols[coo.col]
    return sp.coo_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=adj.shape
    ).tocsr()


def random_walk_edges(
    adj: sp.csr_matrix,
    drop_ratio: float,
    rng: np.random.Generator,
    num_layers: int,
) -> list[sp.csr_matrix]:
    """Per-layer independent edge dropouts (SGL's random-walk, "RW").

    Where ED shares one subgraph across all propagation layers, RW
    re-samples the dropped edges for every layer, which is equivalent to
    a layer-dependent random-walk normalisation.  Returns one matrix per
    layer; callers normalise each.
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    return [drop_edges(adj, drop_ratio, rng) for _ in range(num_layers)]
