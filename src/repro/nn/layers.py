"""Standard neural network layers on top of the autograd substrate."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import functional as F
from .init import xavier_uniform
from .module import Module, Parameter
from .tensor import Tensor, as_tensor


class Linear(Module):
    """Affine transformation ``y = x @ W.T + b``.

    Weight shape is ``(out_features, in_features)`` to match the paper's
    notation (Eq. 10 uses ``W_0^k in R^{(d/K) x d}`` applied to a
    ``d``-vector).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = as_tensor(x) @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(xavier_uniform((num_embeddings, embedding_dim), rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)

    def all(self) -> Tensor:
        """Return the full table as a tensor participating in autograd."""
        return self.weight


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class LeakyReLU(Module):
    """Leaky rectifier activation module."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).leaky_relu(self.negative_slope)


class ReLU(Module):
    """Rectifier activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).relu()


class Sigmoid(Module):
    """Logistic activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).sigmoid()


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``hidden`` lists the sizes of every layer after the input, e.g.
    ``MLP(64, [32, 16, 8], rng)`` builds three affine layers with the
    activation between them (not after the last).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
        activation: Callable[[Tensor], Tensor] | None = None,
        final_activation: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("MLP needs at least one output layer size")
        self._activation = activation or (lambda t: t.relu())
        self._final_activation = final_activation
        self._layers = []
        self._dropouts = []
        prev = in_features
        for i, size in enumerate(hidden):
            layer = Linear(prev, size, rng)
            setattr(self, f"fc{i}", layer)
            self._layers.append(layer)
            if dropout > 0:
                drop = Dropout(dropout, rng)
                setattr(self, f"drop{i}", drop)
                self._dropouts.append(drop)
            else:
                self._dropouts.append(None)
            prev = size
        self.out_features = prev

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._layers) - 1
        for i, layer in enumerate(self._layers):
            x = layer(x)
            if i < last or self._final_activation:
                x = self._activation(x)
                if self._dropouts[i] is not None:
                    x = self._dropouts[i](x)
        return x


class ProjectionHead(Module):
    """The non-linear transformation of Eq. (14).

    ``z <- W2 . LeakyReLU(W1 . z + b1)``; the second layer has no bias,
    matching the equation.  One head is instantiated per intent and is
    shared between the user view and the item-tag view.
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(dim, dim, rng, bias=True)
        self.fc2 = Linear(dim, dim, rng, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).leaky_relu())
