"""Graph-level kernel fusion for the autograd tape.

The eager tape records one node per primitive op, which makes the hot
losses (BPR, InfoNCE) long chains of tiny NumPy calls: every link pays a
closure, a fresh temporary, and a Python dispatch.  This module collapses
those chains into *fused kernels* — single tape nodes whose forward and
backward replay **exactly the same NumPy operations in exactly the same
association order** as the eager chain, but through reusable scratch
buffers and without the per-link bookkeeping.  Bit-identity with eager
execution is therefore a property of the construction, not of tolerance
thresholds; ``tests/nn/test_fusion_diff.py`` enforces it across every
registered model.

Three kernel families are provided:

- :func:`elementwise_bpr` — the ``-log_sigmoid(pos - neg).mean()`` tail
  (six eager nodes → one);
- :func:`contrastive_info_nce` — the full InfoNCE block: logits matmul,
  temperature scale, log-softmax, positive-mask weighting and reduction
  (seven eager nodes → one);
- :func:`batched_linear` — the K per-intent projections of Eq. (10)/(14)
  collapsed into one block-diagonal (strided) ``np.matmul`` over a
  ``(K, B, d)`` stack (K matmul+bias chains → one node);
- :func:`dot_bpr` — the whole default-scorer BPR step for embedding-table
  models: four lookups, two inner-product reductions and the loss tail
  in one node, with gradient scatters written straight into freshly
  allocated tables (no intermediate full-table copies).

Fused mode is off by default and enabled via ``fused=True`` on the
trainer configs or the :class:`fused_mode` context manager.  Kernels
apply strict eligibility checks (dtype, shape, leaf-ness) and return
``None`` when a call cannot be fused bit-exactly, so callers always keep
the eager path as fallback.

:func:`analyze` walks a recorded tape and reports the fusable
elementwise chains — the introspection pass the differential tests and
benchmarks use to prove the fused tape actually shrank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor, _op_name

__all__ = [
    "FusionStats",
    "TapeReport",
    "analyze",
    "batched_linear",
    "contrastive_info_nce",
    "dot_bpr",
    "elementwise_bpr",
    "fused_mode",
    "is_fused",
    "reset",
    "set_fused",
    "stats",
]

_fused = False


def set_fused(mode: bool) -> bool:
    """Set fused execution globally; returns the previous mode."""
    global _fused
    previous = _fused
    _fused = bool(mode)
    return previous


def is_fused() -> bool:
    """Whether fused kernels are currently routed to."""
    return _fused


class fused_mode:
    """Re-entrant context manager enabling (or disabling) fused kernels.

    Mirrors :class:`repro.nn.set_grad_enabled`: each ``__enter__`` pushes
    the previous mode, so instances nest and can be reused::

        with fused_mode(config.fused):
            trainer.fit()
    """

    def __init__(self, enabled: bool = True) -> None:
        self._mode = bool(enabled)
        self._stack: List[bool] = []

    def __enter__(self) -> "fused_mode":
        self._stack.append(set_fused(self._mode))
        return self

    def __exit__(self, *exc) -> None:
        set_fused(self._stack.pop())


# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
@dataclass
class FusionStats:
    """Process-local counters behind the ``fusion.*`` obs metrics."""

    kernel_calls: int = 0
    kernels_compiled: int = 0
    state_reuses: int = 0
    state_allocs: int = 0
    nodes_saved: int = 0
    fallbacks: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "kernel_calls": self.kernel_calls,
            "kernels_compiled": self.kernels_compiled,
            "state_reuses": self.state_reuses,
            "state_allocs": self.state_allocs,
            "nodes_saved": self.nodes_saved,
            "fallbacks": self.fallbacks,
        }

    def clear(self) -> None:
        self.kernel_calls = 0
        self.kernels_compiled = 0
        self.state_reuses = 0
        self.state_allocs = 0
        self.nodes_saved = 0
        self.fallbacks = 0


stats = FusionStats()


def record_metrics(metrics, reset_after: bool = True) -> None:
    """Flush the fusion counters into an obs metrics registry.

    Trainers call this once per fused epoch, so the hot kernel path
    never touches the (locked) metrics registry itself.
    """
    for name, value in stats.snapshot().items():
        if value:
            metrics.counter(f"fusion.{name}").inc(value)
    if reset_after:
        stats.clear()


class _StatePool:
    """Free-list of per-node buffer sets for one kernel signature.

    A fused node's backward closure needs arrays computed during forward
    (e.g. the sigmoid of the score difference).  Several nodes of the
    same kernel can be live on one tape (IMCAT records the UI and VT BPR
    losses before either backward runs), so the buffers are checked out
    per call and released by the backward closure — steady-state
    training reuses the same few allocations forever.
    """

    _MAX_FREE = 8

    def __init__(self, factory: Callable[[], dict]) -> None:
        self._factory = factory
        self._free: List[dict] = []

    def acquire(self) -> dict:
        if self._free:
            stats.state_reuses += 1
            return self._free.pop()
        stats.state_allocs += 1
        return self._factory()

    def release(self, state: dict) -> None:
        if len(self._free) < self._MAX_FREE:
            self._free.append(state)


_kernel_cache: Dict[tuple, object] = {}
_KERNEL_CACHE_MAX = 256


def _kernel(key: tuple, factory: Callable[[], object]):
    kernel = _kernel_cache.get(key)
    if kernel is None:
        if len(_kernel_cache) >= _KERNEL_CACHE_MAX:
            _kernel_cache.clear()
        kernel = factory()
        _kernel_cache[key] = kernel
        stats.kernels_compiled += 1
    return kernel


def reset() -> None:
    """Drop all cached kernels/buffers and zero the counters (tests)."""
    _kernel_cache.clear()
    stats.clear()


def _is_f64(*tensors: Tensor) -> bool:
    return all(t.data.dtype == np.float64 for t in tensors)


def _is_leaf(t: Tensor) -> bool:
    return t._backward is None and not t._parents


# ----------------------------------------------------------------------
# kernel 1: the BPR loss tail   -log_sigmoid(pos - neg).mean()
# ----------------------------------------------------------------------
class _ElementwiseBPR:
    """Fuses neg → add → log_sigmoid → sum → scale → neg into one node.

    Forward and backward replicate the eager op sequence exactly —
    ``a + (-b)``, ``min(d,0) - log1p(exp(-|d|))``, pairwise ``.sum()``,
    ``* (1/n)`` — so outputs and gradients are bit-identical to the
    unfused chain; only the tape shape and the temporaries change.
    """

    NODES_SAVED = 5  # 6 eager nodes -> 1 fused node

    def __init__(self, shape: Tuple[int, ...]) -> None:
        self._shape = shape
        self._scratch = np.empty(shape)
        self._ls = np.empty(shape)
        self._gbuf = np.empty(shape)
        self._gneg = np.empty(shape)
        self._states = _StatePool(lambda: {"sig": np.empty(shape)})

    def __call__(self, pos: Tensor, neg: Tensor) -> Tensor:
        n = pos.data.size
        inv = np.float64(1.0 / n)
        state = self._states.acquire()
        d = state["sig"]  # holds d first, sigmoid after
        # d = pos + (-neg), exactly as eager __sub__ computes it.
        np.negative(neg.data, out=d)
        np.add(pos.data, d, out=d)
        # log_sigmoid(d) = min(d, 0) - log1p(exp(-|d|))
        t = self._scratch
        np.abs(d, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)
        np.log1p(t, out=t)
        ls = self._ls
        np.minimum(d, 0.0, out=ls)
        np.subtract(ls, t, out=ls)
        # The eager backward captures sigmoid(d) at forward time.
        np.clip(d, -500, 500, out=d)
        np.negative(d, out=d)
        np.exp(d, out=d)
        np.add(d, 1.0, out=d)
        np.divide(1.0, d, out=d)  # d now holds sig, kept for backward
        s = ls.sum()
        out_data = np.asarray(-(s * inv))

        pool = self._states
        gbuf = self._gbuf
        gneg_buf = self._gneg

        def backward(g: np.ndarray) -> None:
            sig = state["sig"]
            gs = (-g) * inv  # grad reaching every log-sigmoid element
            np.subtract(1.0, sig, out=gbuf)
            np.multiply(gbuf, gs, out=gbuf)
            if pos.requires_grad:
                pos._accumulate(gbuf)
            if neg.requires_grad:
                np.negative(gbuf, out=gneg_buf)
                neg._accumulate(gneg_buf)
            pool.release(state)

        out = Tensor._make(out_data, (pos, neg), backward)
        if not out.requires_grad:
            pool.release(state)
        stats.kernel_calls += 1
        stats.nodes_saved += self.NODES_SAVED
        return out


def elementwise_bpr(pos: Tensor, neg: Tensor) -> Optional[Tensor]:
    """Fused ``-log_sigmoid(pos - neg).mean()``; None when ineligible."""
    if not _fused:
        return None
    if pos.shape != neg.shape or pos.data.size == 0 or not _is_f64(pos, neg):
        stats.fallbacks += 1
        return None
    kernel = _kernel(
        ("bpr", pos.shape), lambda: _ElementwiseBPR(pos.shape)
    )
    return kernel(pos, neg)


# ----------------------------------------------------------------------
# kernel 2: InfoNCE (logits -> scale -> log-softmax -> pick -> sum -> neg)
# ----------------------------------------------------------------------
def nce_weights(
    n: int,
    positive_mask: Optional[np.ndarray],
    row_weights: Optional[np.ndarray],
) -> np.ndarray:
    """The constant positive-set weight matrix of Eq. (17).

    Shared verbatim by the eager and fused InfoNCE paths so mask
    validation and the weight arithmetic cannot drift apart.
    """
    if positive_mask is None:
        positive_mask = np.eye(n, dtype=bool)
    else:
        positive_mask = np.asarray(positive_mask, dtype=bool)
        if positive_mask.shape != (n, n):
            raise ValueError(
                f"positive_mask shape {positive_mask.shape} != ({n}, {n})"
            )
        # Ensure the self-pair is always a positive.
        positive_mask = positive_mask | np.eye(n, dtype=bool)
    pos_counts = positive_mask.sum(axis=1).astype(np.float64)
    weights = positive_mask.astype(np.float64) / pos_counts[:, None]
    if row_weights is not None:
        weights = weights * np.asarray(row_weights, dtype=np.float64)[:, None]
    return weights


class _InfoNCE:
    """One-node InfoNCE replicating the eager seven-op chain bit-exactly."""

    NODES_SAVED = 6

    def __init__(self, n: int, d: int) -> None:
        self._logits = np.empty((n, n))
        self._rowsum = np.empty((n, 1))
        self._gq = np.empty((n, d))
        self._gk = np.empty((d, n))
        self._tmp = np.empty((n, n))
        self._states = _StatePool(
            lambda: {"soft": np.empty((n, n)), "weights": np.empty((n, n))}
        )

    def __call__(
        self,
        queries: Tensor,
        keys: Tensor,
        temperature: float,
        row_weights: Optional[np.ndarray],
        positive_mask: Optional[np.ndarray],
    ) -> Tensor:
        n = queries.shape[0]
        inv_tau = np.asarray(1.0 / temperature)
        state = self._states.acquire()
        lg = self._logits
        # (queries @ keys.T) * (1/tau) — same transposed-view matmul as eager.
        np.matmul(queries.data, keys.data.transpose(1, 0), out=lg)
        np.multiply(lg, inv_tau, out=lg)
        # log_softmax(axis=1), max-shifted exactly like F.log_softmax.
        mx = lg.max(axis=1, keepdims=True)
        np.subtract(lg, mx, out=lg)  # lg now holds `shifted`
        t = self._tmp
        np.exp(lg, out=t)
        rs = self._rowsum
        np.sum(t, axis=1, keepdims=True, out=rs)
        np.log(rs, out=rs)
        np.subtract(lg, rs, out=lg)  # lg now holds log_probs
        soft = state["soft"]
        np.exp(lg, out=soft)
        weights = state["weights"]
        np.copyto(weights, nce_weights(n, positive_mask, row_weights))
        np.multiply(lg, weights, out=t)
        out_data = np.asarray(-(t.sum()))

        pool = self._states
        tmp = self._tmp
        rowsum = self._rowsum
        gq = self._gq
        gk = self._gk

        def backward(g: np.ndarray) -> None:
            soft_b = state["soft"]
            w = state["weights"]
            gs = -g  # grad of the picked sum
            # mul-by-weights backward: g * weights (scalar broadcast).
            np.multiply(w, gs, out=w)  # w now holds g_logprobs
            # log_softmax backward: g - soft * g.sum(axis=1, keepdims=True)
            np.sum(w, axis=1, keepdims=True, out=rowsum)
            np.multiply(soft_b, rowsum, out=tmp)
            np.subtract(w, tmp, out=w)
            # temperature-scale backward.
            np.multiply(w, inv_tau, out=w)
            # matmul backward, queries first then keys — eager order.
            if queries.requires_grad:
                np.matmul(w, keys.data, out=gq)
                queries._accumulate(gq)
            if keys.requires_grad:
                np.matmul(queries.data.transpose(1, 0), w, out=gk)
                keys._accumulate(gk.transpose(1, 0))
            pool.release(state)

        out = Tensor._make(out_data, (queries, keys), backward)
        if not out.requires_grad:
            pool.release(state)
        stats.kernel_calls += 1
        stats.nodes_saved += self.NODES_SAVED
        return out


def contrastive_info_nce(
    queries: Tensor,
    keys: Tensor,
    temperature: float,
    row_weights: Optional[np.ndarray] = None,
    positive_mask: Optional[np.ndarray] = None,
) -> Optional[Tensor]:
    """Fused InfoNCE; ``None`` when the call cannot be fused bit-exactly."""
    if not _fused:
        return None
    if (
        queries.ndim != 2
        or keys.shape != queries.shape
        or queries.shape[0] == 0
        or queries is keys
        or not _is_f64(queries, keys)
    ):
        stats.fallbacks += 1
        return None
    kernel = _kernel(
        ("nce", queries.shape), lambda: _InfoNCE(*queries.shape)
    )
    return kernel(queries, keys, temperature, row_weights, positive_mask)


# ----------------------------------------------------------------------
# kernel 3: K per-intent Linears as one block-diagonal matmul
# ----------------------------------------------------------------------
class _BatchedLinear:
    """``K`` independent ``x_k @ W_k.T + b_k`` in one strided matmul.

    The batched 3-D ``np.matmul`` computes each ``(B, in) @ (in, out)``
    slice with the same dgemm the eager per-intent call used, so both
    forward and the weight/bias/input gradients are bit-identical; each
    parameter receives exactly one contribution per call, so accumulation
    order cannot change the result.
    """

    def __init__(self, k: int, b: int, d_in: int, d_out: int) -> None:
        self._w = np.empty((k, d_out, d_in))
        self._gx = np.empty((k, b, d_in))
        self._gw = np.empty((k, d_in, d_out))

    def __call__(
        self,
        x: Tensor,
        weights: Sequence[Tensor],
        biases: Optional[Sequence[Tensor]],
    ) -> Tensor:
        w_stack = self._w
        for i, w in enumerate(weights):
            w_stack[i] = w.data
        # The transpose must stay a strided *view*: the eager Linear
        # multiplies by ``weight.T`` (an F-order view), and dgemm's
        # transposed path is not bit-identical to a contiguous copy.
        out_data = np.matmul(x.data, w_stack.swapaxes(1, 2))
        if biases is not None:
            for i, b in enumerate(biases):
                np.add(out_data[i], b.data, out=out_data[i])

        gx = self._gx
        gw = self._gw

        def backward(g: np.ndarray) -> None:
            # Per-intent bias grads first, then weights, then the input —
            # each parameter gets exactly one contribution, so only the
            # per-contribution arithmetic has to match the eager chain.
            if biases is not None:
                for i, b in enumerate(biases):
                    if b.requires_grad:
                        b._accumulate(g[i].sum(axis=0))
            if x.requires_grad:
                for i, w in enumerate(weights):
                    w_stack[i] = w.data
                np.matmul(g, w_stack, out=gx)
                x._accumulate(gx)
            np.matmul(np.swapaxes(x.data, -1, -2), g, out=gw)
            for i, w in enumerate(weights):
                if w.requires_grad:
                    w._accumulate(gw[i].transpose(1, 0))

        parents = (x, *weights) + (tuple(biases) if biases is not None else ())
        out = Tensor._make(out_data, parents, backward)
        stats.kernel_calls += 1
        # Eager: per intent a transpose + matmul (+ add) node.
        stats.nodes_saved += (3 if biases is not None else 2) * len(weights) - 1
        return out


def batched_linear(
    x: Tensor,
    weights: Sequence[Tensor],
    biases: Optional[Sequence[Tensor]] = None,
) -> Tensor:
    """Apply ``K`` per-intent Linear layers as one batched matmul.

    Args:
        x: ``(K, B, d_in)`` stacked per-intent inputs.
        weights: K weight tensors of shape ``(d_out, d_in)``.
        biases: optional K bias tensors of shape ``(d_out,)``.

    The caller guarantees ``x[k]`` is the tensor the eager path would
    have fed to ``weights[k]``; this function then produces bit-identical
    outputs and gradients to the K separate eager Linear calls.
    """
    k, b, d_in = x.shape
    d_out = weights[0].shape[0]
    kernel = _kernel(
        ("blin", k, b, d_in, d_out, biases is not None),
        lambda: _BatchedLinear(k, b, d_in, d_out),
    )
    return kernel(x, weights, biases)


# ----------------------------------------------------------------------
# kernel 4: the whole default-scorer BPR step for embedding-table models
# ----------------------------------------------------------------------
class _DotBPR:
    """Lookup + inner-product + BPR tail in one node with direct scatters.

    Replaces the eager chain ``(U[a] * V[p]).sum(1)`` / ``(U[a] *
    V[n]).sum(1)`` / ``-log_sigmoid(pos - neg).mean()`` (twelve nodes,
    four full-table gradient arrays plus copies) with one node whose
    backward writes each table's two scatter contributions into a single
    freshly allocated table (``np.zeros`` + ``np.add.at``), handing the
    buffer to ``.grad`` without the eager path's extra full-table copy.
    The per-element arithmetic and the per-table contribution count are
    identical, and float addition is commutative, so gradients match the
    eager chain bit for bit.
    """

    NODES_SAVED = 11

    def __init__(self, b: int, d: int) -> None:
        self._u = None
        self._rows = np.empty((b, d))
        self._pos = np.empty(b)
        self._neg = np.empty(b)
        self._gneg = np.empty(b)
        self._states = _StatePool(
            lambda: {
                "u": np.empty((b, d)),
                "vp": np.empty((b, d)),
                "vn": np.empty((b, d)),
                "sig": np.empty(b),
            }
        )

    def __call__(
        self,
        user_table: Tensor,
        item_table: Tensor,
        anchors: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> Tensor:
        state = self._states.acquire()
        u, vp, vn = state["u"], state["vp"], state["vn"]
        np.take(user_table.data, anchors, axis=0, out=u)
        np.take(item_table.data, positives, axis=0, out=vp)
        np.take(item_table.data, negatives, axis=0, out=vn)
        rows = self._rows
        np.multiply(u, vp, out=rows)
        pos = self._pos
        np.sum(rows, axis=1, out=pos)
        np.multiply(u, vn, out=rows)
        neg = self._neg
        np.sum(rows, axis=1, out=neg)

        n = pos.size
        inv = np.float64(1.0 / n)
        # BPR tail, identical op sequence to the eager chain.
        d = state["sig"]
        np.negative(neg, out=d)
        np.add(pos, d, out=d)
        t = self._neg  # neg scores no longer needed past this point
        np.abs(d, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)
        np.log1p(t, out=t)
        ls = self._pos
        np.minimum(d, 0.0, out=ls)
        np.subtract(ls, t, out=ls)
        np.clip(d, -500, 500, out=d)
        np.negative(d, out=d)
        np.exp(d, out=d)
        np.add(d, 1.0, out=d)
        np.divide(1.0, d, out=d)  # sigmoid, kept for backward
        out_data = np.asarray(-(ls.sum() * inv))

        pool = self._states
        gd_buf = self._rows  # reuse (B, d) scratch rows in backward
        gneg = self._gneg

        def scatter(table: Tensor, idx: np.ndarray, grad_rows: np.ndarray):
            full = np.zeros_like(table.data)
            np.add.at(full, idx, grad_rows)
            if table.grad is None:
                # `full` is freshly allocated and exclusively ours, so it
                # can become the grad directly — same bits as the eager
                # copy, one fewer full-table pass.
                table.grad = full
            else:
                table.grad += full

        def backward(g: np.ndarray) -> None:
            sig = state["sig"]
            u_b, vp_b, vn_b = state["u"], state["vp"], state["vn"]
            gs = (-g) * inv
            gd = self._pos
            np.subtract(1.0, sig, out=gd)
            np.multiply(gd, gs, out=gd)  # grad of pos scores
            np.negative(gd, out=gneg)  # grad of neg scores
            if user_table.requires_grad:
                np.multiply(vp_b, gd[:, None], out=gd_buf)
                scatter(user_table, anchors, gd_buf)
                np.multiply(vn_b, gneg[:, None], out=gd_buf)
                scatter(user_table, anchors, gd_buf)
            if item_table.requires_grad:
                np.multiply(u_b, gd[:, None], out=gd_buf)
                scatter(item_table, positives, gd_buf)
                np.multiply(u_b, gneg[:, None], out=gd_buf)
                scatter(item_table, negatives, gd_buf)
            pool.release(state)

        out = Tensor._make(out_data, (user_table, item_table), backward)
        if not out.requires_grad:
            pool.release(state)
        stats.kernel_calls += 1
        stats.nodes_saved += self.NODES_SAVED
        return out


def dot_bpr(
    user_repr: Tensor,
    item_repr: Tensor,
    anchors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> Optional[Tensor]:
    """Fused default-scorer BPR step; ``None`` when ineligible.

    Eligible when both representations are distinct float64 *leaf*
    tensors (raw embedding tables, not propagated GNN outputs) — exactly
    the case where the eager chain is four lookups, two inner products
    and the loss tail.
    """
    if not _fused:
        return None
    if (
        user_repr is item_repr
        or not _is_leaf(user_repr)
        or not _is_leaf(item_repr)
        or user_repr.ndim != 2
        or item_repr.ndim != 2
        or len(anchors) == 0
        or not _is_f64(user_repr, item_repr)
    ):
        stats.fallbacks += 1
        return None
    b = len(anchors)
    d = user_repr.shape[1]
    kernel = _kernel(("dotbpr", b, d), lambda: _DotBPR(b, d))
    return kernel(user_repr, item_repr, anchors, positives, negatives)


# ----------------------------------------------------------------------
# tape analysis
# ----------------------------------------------------------------------
_ELEMENTWISE_OPS = {
    "Tensor.__add__",
    "Tensor.__neg__",
    "Tensor.__mul__",
    "Tensor.__truediv__",
    "Tensor.__pow__",
    "Tensor.exp",
    "Tensor.log",
    "Tensor.sqrt",
    "Tensor.sigmoid",
    "Tensor.tanh",
    "Tensor.relu",
    "Tensor.leaky_relu",
    "Tensor.abs",
    "Tensor.clip",
    "Tensor.sum",
    "log_sigmoid",
    "log_softmax",
    "softmax",
    "softplus",
    "l2_normalize",
    "scale_rows",
}


@dataclass
class TapeReport:
    """What :func:`analyze` found in a recorded autograd tape."""

    nodes: int
    leaves: int
    by_op: Dict[str, int] = field(default_factory=dict)
    chains: List[List[str]] = field(default_factory=list)

    @property
    def fusable_nodes(self) -> int:
        """Nodes sitting inside a fusable elementwise chain (length >= 2)."""
        return sum(len(chain) for chain in self.chains)


def analyze(root: Tensor) -> TapeReport:
    """Walk the tape below ``root`` and report fusable elementwise chains.

    A *chain* is a maximal path of recorded elementwise ops in which
    every interior node has exactly one consumer — precisely the shape a
    fused kernel collapses into one node.  The differential suite uses
    this to assert that eager tapes expose the expected fusion targets
    and that fused tapes actually shrank.
    """
    order: List[Tensor] = []
    consumers: Dict[int, int] = {}
    seen: Dict[int, Tensor] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        order.append(node)
        for parent in node._parents:
            consumers[id(parent)] = consumers.get(id(parent), 0) + 1
            stack.append(parent)

    by_op: Dict[str, int] = {}
    leaves = 0
    for node in order:
        if node._backward is None:
            leaves += 1
            continue
        name = _op_name(node._backward)
        by_op[name] = by_op.get(name, 0) + 1

    def is_elementwise(node: Tensor) -> bool:
        return (
            node._backward is not None
            and _op_name(node._backward) in _ELEMENTWISE_OPS
        )

    chains: List[List[str]] = []
    in_chain: set = set()
    for node in order:
        if id(node) in in_chain or not is_elementwise(node):
            continue
        # Only start from a chain head: no elementwise single-consumer
        # child above it (the walk from the head covers the rest).
        chain = []
        current: Optional[Tensor] = node
        while (
            current is not None
            and is_elementwise(current)
            and id(current) not in in_chain
        ):
            chain.append(_op_name(current._backward))
            in_chain.add(id(current))
            nxt = None
            for parent in current._parents:
                if (
                    is_elementwise(parent)
                    and consumers.get(id(parent), 0) == 1
                ):
                    nxt = parent
                    break
            current = nxt
        if len(chain) >= 2:
            chains.append(chain)
    return TapeReport(
        nodes=len(order) - 1 if order else 0,
        leaves=leaves,
        by_op=by_op,
        chains=chains,
    )
