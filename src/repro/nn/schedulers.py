"""Learning-rate schedulers.

Small, optimiser-agnostic schedulers: each wraps an
:class:`~repro.nn.optim.Optimizer` and rewrites its ``lr`` on
:meth:`step`.  Used by the longer bench runs where a fixed ``1e-3``
under-trains the miniature datasets early and over-trains late.
"""

from __future__ import annotations

import math

from .optim import Optimizer


class Scheduler:
    """Base class: tracks the epoch counter and the base learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        lr = self.compute_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Schedule position (epoch counter + base rate) for checkpoints.

        The optimiser's *current* rate travels in the optimiser's own
        state dict; restoring both resumes the schedule exactly.
        """
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore the position saved by :meth:`state_dict`."""
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealing(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(
        self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0
    ) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLinear(Scheduler):
    """Linear warmup for ``warmup_epochs`` then linear decay to zero."""

    def __init__(
        self, optimizer: Optimizer, warmup_epochs: int, total_epochs: int
    ) -> None:
        super().__init__(optimizer)
        if not 0 < warmup_epochs < total_epochs:
            raise ValueError(
                f"need 0 < warmup ({warmup_epochs}) < total ({total_epochs})"
            )
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs

    def compute_lr(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        remaining = (self.total_epochs - epoch) / (
            self.total_epochs - self.warmup_epochs
        )
        return self.base_lr * max(remaining, 0.0)


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total = 0.0
    for param in params:
        total += float((param.grad**2).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            param.grad *= scale
    return norm
