"""Weight initialisation schemes.

The paper fixes Xavier (Glorot) initialisation for all methods
(Section V.D), so that is the default throughout the reproduction.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: ``U(-a, a)`` with ``a = gain * sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: ``N(0, std^2)`` with ``std = gain * sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain zero-mean normal initialisation."""
    return rng.normal(0.0, std, size=shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
