"""NumPy autograd substrate replacing PyTorch for the IMCAT reproduction.

Public surface:

- :class:`Tensor` plus tensor factories (:func:`zeros`, :func:`ones`,
  :func:`concat`, :func:`stack`, :func:`where`) and the grad-mode
  contexts (:class:`no_grad`, :class:`enable_grad`,
  :class:`set_grad_enabled`);
- correctness tooling: the numeric sanitizer (:class:`detect_anomaly`,
  raising :class:`NumericAnomalyError` at the op creating a NaN/Inf)
  and finite-difference :func:`gradcheck`;
- :mod:`repro.nn.functional` (softmax, InfoNCE, BPR, segment means, …);
- module system (:class:`Module`, :class:`Parameter`) and layers
  (:class:`Linear`, :class:`Embedding`, :class:`MLP`, …);
- optimisers (:class:`Adam`, :class:`SGD`);
- sparse graph operators (:func:`sparse_matmul`,
  :func:`normalized_bipartite_adjacency`, …).
"""

from . import functional, fusion
from .fusion import fused_mode, is_fused, set_fused
from .gradcheck import GradcheckError, gradcheck
from .init import normal, uniform, xavier_normal, xavier_uniform
from .layers import (
    MLP,
    Dropout,
    Embedding,
    LeakyReLU,
    Linear,
    ProjectionHead,
    ReLU,
    Sequential,
    Sigmoid,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .schedulers import (
    CosineAnnealing,
    Scheduler,
    StepDecay,
    WarmupLinear,
    clip_grad_norm,
)
from .sparse import (
    build_interaction_matrix,
    drop_edges,
    drop_nodes,
    normalized_bipartite_adjacency,
    random_walk_edges,
    row_normalize,
    sparse_matmul,
    symmetric_normalize,
)
from .tensor import (
    NumericAnomalyError,
    Tensor,
    as_tensor,
    concat,
    detect_anomaly,
    enable_grad,
    is_anomaly_enabled,
    is_grad_enabled,
    no_grad,
    ones,
    set_grad_enabled,
    stack,
    where,
    zeros,
)

__all__ = [
    "Adam",
    "CosineAnnealing",
    "Dropout",
    "Embedding",
    "GradcheckError",
    "LeakyReLU",
    "Linear",
    "MLP",
    "Module",
    "NumericAnomalyError",
    "Optimizer",
    "Parameter",
    "ProjectionHead",
    "ReLU",
    "SGD",
    "Scheduler",
    "Sequential",
    "Sigmoid",
    "StepDecay",
    "Tensor",
    "WarmupLinear",
    "as_tensor",
    "build_interaction_matrix",
    "clip_grad_norm",
    "concat",
    "detect_anomaly",
    "drop_edges",
    "drop_nodes",
    "enable_grad",
    "functional",
    "fused_mode",
    "fusion",
    "gradcheck",
    "is_anomaly_enabled",
    "is_fused",
    "is_grad_enabled",
    "no_grad",
    "normal",
    "normalized_bipartite_adjacency",
    "ones",
    "random_walk_edges",
    "row_normalize",
    "set_fused",
    "set_grad_enabled",
    "sparse_matmul",
    "stack",
    "symmetric_normalize",
    "uniform",
    "where",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]
