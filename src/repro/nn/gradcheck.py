"""Finite-difference verification of autograd gradients.

:func:`gradcheck` pins the vector-Jacobian closures of
:mod:`repro.nn.tensor` and :mod:`repro.nn.functional` against central
finite differences of the summed output — the standard way to catch a
wrong backward formula before it silently skews a multi-hour training
run.  The scalar objective is ``sum(fn(*inputs))``, which matches
seeding :meth:`Tensor.backward` with an all-ones gradient.

All arithmetic runs in float64; pick inputs away from kinks
(``relu``/``leaky_relu`` at 0, ``max`` ties) — subgradients there
legitimately disagree with the symmetric difference.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, no_grad


class GradcheckError(AssertionError):
    """An analytic gradient disagrees with its finite difference."""


def _objective(fn: Callable, inputs: Sequence[Tensor]) -> float:
    out = fn(*inputs)
    if not isinstance(out, Tensor):
        raise TypeError(f"fn must return a Tensor, got {type(out).__name__}")
    return float(out.data.sum())


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    raise_on_failure: bool = True,
) -> bool:
    """Compare analytic gradients of ``fn`` with central differences.

    Args:
        fn: callable mapping the input tensors to an output tensor (any
            shape; the check differentiates ``out.sum()``).
        inputs: leaf tensors to differentiate with respect to.  Each is
            promoted to float64 with ``requires_grad=True``; the caller's
            tensors are not mutated.
        eps: half-width of the central difference.
        rtol: relative tolerance of the comparison.
        atol: absolute tolerance of the comparison.
        raise_on_failure: raise :class:`GradcheckError` (default) or
            return False on mismatch.

    Returns:
        True when every input's gradient matches.
    """
    leaves = [
        Tensor(np.array(t.data if isinstance(t, Tensor) else t, dtype=np.float64),
               requires_grad=True)
        for t in inputs
    ]

    out = fn(*leaves)
    if not isinstance(out, Tensor):
        raise TypeError(f"fn must return a Tensor, got {type(out).__name__}")
    if not out.requires_grad:
        raise GradcheckError(
            "fn output does not require grad — no input reaches the output "
            "through differentiable ops"
        )
    out.backward(np.ones_like(out.data))

    for index, leaf in enumerate(leaves):
        analytic = (
            np.zeros_like(leaf.data) if leaf.grad is None else np.asarray(leaf.grad)
        )
        numeric = np.zeros_like(leaf.data)
        flat = leaf.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        with no_grad():
            for j in range(flat.size):
                orig = flat[j]
                flat[j] = orig + eps
                f_plus = _objective(fn, leaves)
                flat[j] = orig - eps
                f_minus = _objective(fn, leaves)
                flat[j] = orig
                numeric_flat[j] = (f_plus - f_minus) / (2.0 * eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            if not raise_on_failure:
                return False
            diff = np.abs(analytic - numeric)
            worst = int(np.argmax(diff))
            raise GradcheckError(
                f"gradient mismatch for input {index} (shape {leaf.shape}): "
                f"max |analytic - numeric| = {diff.max():.3e} at flat index "
                f"{worst} (analytic {analytic.reshape(-1)[worst]:.6e}, "
                f"numeric {numeric.reshape(-1)[worst]:.6e})"
            )
    return True
