"""Gradient-based optimisers.

The paper trains every method with Adam (Section V.D: learning rate and
weight decay both ``1e-3``).  SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter


def _load_buffers(
    target: List[np.ndarray], source: List[np.ndarray], name: str
) -> None:
    """Copy saved per-parameter buffers in place, validating layout."""
    if len(source) != len(target):
        raise ValueError(
            f"optimizer state mismatch: {len(source)} saved {name} buffers "
            f"for {len(target)} parameters"
        )
    for slot, array in zip(target, source):
        if slot.shape != np.shape(array):
            raise ValueError(
                f"optimizer state mismatch: {name} buffer shape "
                f"{np.shape(array)} vs parameter shape {slot.shape}"
            )
        slot[...] = array


class Optimizer:
    """Base class holding the parameter list and zero-grad logic."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear the gradient of every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Internal optimisation state (moments, counters, current lr).

        Together with the parameters themselves this makes an optimiser
        fully resumable: ``load_state_dict`` continues the exact update
        sequence the snapshot interrupted.
        """
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict` (same layout)."""
        if state:
            raise ValueError(
                f"{type(self).__name__} has no state to load, got {sorted(state)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        """Momentum buffers plus the (possibly scheduled) learning rate."""
        return {
            "lr": self.lr,
            "velocity": [vel.copy() for vel in self._velocity],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore momentum buffers saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        _load_buffers(self._velocity, list(state["velocity"]), "velocity")


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with decoupled-style L2 weight decay.

    Weight decay is added to the gradient (the classic formulation, as in
    ``torch.optim.Adam(weight_decay=...)``), matching the paper's setup.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        """First/second moments, step count, and current learning rate.

        The step count drives bias correction, so restoring it is what
        makes a resumed Adam trajectory bit-exact.
        """
        return {
            "lr": self.lr,
            "step": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore moments and step count saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        self._step_count = int(state["step"])
        _load_buffers(self._m, list(state["m"]), "m")
        _load_buffers(self._v, list(state["v"]), "v")
