"""Gradient-based optimisers.

The paper trains every method with Adam (Section V.D: learning rate and
weight decay both ``1e-3``).  SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and zero-grad logic."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear the gradient of every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with decoupled-style L2 weight decay.

    Weight decay is added to the gradient (the classic formulation, as in
    ``torch.optim.Adam(weight_decay=...)``), matching the paper's setup.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
