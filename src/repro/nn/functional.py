"""Differentiable functional operations built on :class:`repro.nn.Tensor`.

These are the composite operations the IMCAT model relies on: stable
softmax / log-softmax, L2 normalisation, embedding lookup with
scatter-add gradients, segment means for per-item aggregation, dropout,
and the loss primitives (logsigmoid for BPR, InfoNCE building blocks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import fusion
from .tensor import Tensor, as_tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    exps = np.exp(x.data - m)
    sums = exps.sum(axis=axis, keepdims=True)
    out_keep = np.log(sums) + m
    out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    soft = exps / sums

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            grad = g if keepdims else np.expand_dims(g, axis=axis)
            x._accumulate(soft * grad)

    return Tensor._make(out_data, (x,), backward)


def log_sigmoid(x: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x))`` — the BPR loss kernel."""
    x = as_tensor(x)
    # log sigmoid(x) = -softplus(-x) = min(x, 0) - log(1 + exp(-|x|))
    out_data = np.minimum(x.data, 0.0) - np.log1p(np.exp(-np.abs(x.data)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500)))

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * (1.0 - sig))

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500)))

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * sig)

    return Tensor._make(out_data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit: ``x`` if positive else ``alpha (e^x - 1)``."""
    x = as_tensor(x)
    exp_term = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, exp_term)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            slope = np.where(x.data > 0, 1.0, exp_term + alpha)
            x._accumulate(g * slope)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = as_tensor(x)
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + tanh_inner)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            sech2 = 1.0 - tanh_inner**2
            d_inner = c * (1.0 + 3 * 0.044715 * x.data**2)
            grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
            x._accumulate(g * grad)

    return Tensor._make(out_data, (x,), backward)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2-normalise ``x`` along ``axis``.

    The paper normalises the projected tag aggregation and item
    sub-embedding before element-wise addition so that neither source
    dominates by magnitude (Section IV.B.2).
    """
    x = as_tensor(x)
    norm = np.sqrt((x.data**2).sum(axis=axis, keepdims=True))
    denom = np.maximum(norm, eps)
    out_data = x.data / denom

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate((g - out_data * dot) / denom)

    return Tensor._make(out_data, (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding table.

    Gradients are scattered back with ``np.add.at`` so repeated indices
    accumulate correctly (the semantics of ``torch.nn.Embedding``).
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    out_data = weight.data[idx]

    def backward(g: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, idx, g)
            weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows of ``x`` grouped by ``segment_ids``.

    Empty segments produce zero rows.  This implements the
    ``aggregate``(·) operator of Eqs. (7) and (8): averaging the
    embeddings of the users who interacted with an item, or of the tags
    of an item falling in one cluster.

    Args:
        x: ``(n, d)`` tensor of row vectors.
        segment_ids: ``(n,)`` integer array assigning each row to a segment.
        num_segments: total number of output segments.
    """
    x = as_tensor(x)
    ids = np.asarray(segment_ids)
    counts = np.bincount(ids, minlength=num_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    sums = np.zeros((num_segments, x.data.shape[1]), dtype=x.data.dtype)
    np.add.at(sums, ids, x.data)
    out_data = sums / safe[:, None]

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g[ids] / safe[ids, None])

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * mask)

    return Tensor._make(out_data, (x,), backward)


def matmul_const(x: Tensor, const: np.ndarray) -> Tensor:
    """Multiply by a constant (non-differentiated) matrix: ``x @ const``."""
    x = as_tensor(x)
    c = np.asarray(const)
    out_data = x.data @ c

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g @ c.T)

    return Tensor._make(out_data, (x,), backward)


def scale_rows(x: Tensor, weights: np.ndarray) -> Tensor:
    """Scale each row of ``x`` by a constant per-row weight.

    Used for the relatedness re-weighting ``M_{j,k}`` of Eq. (12): the
    weights are derived from tag counts and are not differentiated.
    """
    x = as_tensor(x)
    w = np.asarray(weights, dtype=x.data.dtype)
    if w.ndim == 1:
        w = w[:, None] if x.ndim == 2 else w
    out_data = x.data * w

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * w)

    return Tensor._make(out_data, (x,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    pred = as_tensor(pred)
    diff = pred - Tensor(np.asarray(target, dtype=pred.dtype))
    return (diff * diff).mean()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss (Eq. 1 / Eq. 2).

    ``-mean(log sigmoid(pos - neg))`` over the batch.

    Under :func:`repro.nn.fusion.fused_mode` the whole chain runs as one
    fused kernel; the result is bit-identical to the eager path.
    """
    pos_scores = as_tensor(pos_scores)
    neg_scores = as_tensor(neg_scores)
    fused = fusion.elementwise_bpr(pos_scores, neg_scores)
    if fused is not None:
        return fused
    return -log_sigmoid(pos_scores - neg_scores).mean()


def info_nce(
    queries: Tensor,
    keys: Tensor,
    temperature: float,
    row_weights: Optional[np.ndarray] = None,
    positive_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """InfoNCE loss between ``queries`` and ``keys`` (Eqs. 12-13, 17).

    Row ``j`` of ``queries`` is aligned with row ``j`` of ``keys`` by
    default; a boolean ``positive_mask[j, j']`` widens the positive set
    (used by the ISA module, Eq. 17 — the loss averages over all marked
    positives per row).  All other columns act as in-batch negatives.

    Args:
        queries: ``(n, d)`` tensor.
        keys: ``(n, d)`` tensor.
        temperature: InfoNCE smoothing factor ``tau``.
        row_weights: optional ``(n,)`` constant weights (``M_{j,k}``).
        positive_mask: optional ``(n, n)`` boolean positives; defaults to
            the identity.

    Returns:
        Scalar loss (sum over rows, matching the paper's formulation).

    Raises:
        ValueError: if ``temperature`` is not strictly positive — a
            zero/negative tau silently flips or explodes the softmax,
            the classic source of NaN collapse in contrastive stacks.
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    queries = as_tensor(queries)
    keys = as_tensor(keys)
    fused = fusion.contrastive_info_nce(
        queries, keys, temperature, row_weights, positive_mask
    )
    if fused is not None:
        return fused
    logits = (queries @ keys.T) * (1.0 / temperature)
    log_probs = log_softmax(logits, axis=1)
    n = logits.shape[0]
    # Average log-prob over each row's positive set (Eq. 17 outer mean);
    # the weight matrix is shared with the fused kernel so mask handling
    # cannot drift between the two paths.
    weights = fusion.nce_weights(n, positive_mask, row_weights)
    picked = log_probs * Tensor(weights)
    return -picked.sum()
