"""Reverse-mode automatic differentiation on top of NumPy arrays.

This module is the substrate replacing PyTorch's autograd for the IMCAT
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it so that :meth:`Tensor.backward` can propagate
gradients to every reachable leaf with ``requires_grad=True``.

The design mirrors the classic tape-based approach:

- each operation returns a new :class:`Tensor` holding references to its
  parent tensors and a closure computing the local vector-Jacobian product;
- :meth:`Tensor.backward` topologically sorts the graph and runs the
  closures in reverse order, accumulating into ``.grad``.

Broadcasting follows NumPy semantics; gradients of broadcast operands are
reduced back to the operand's shape by :func:`unbroadcast`.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True
_anomaly_enabled = False


class set_grad_enabled:
    """Context manager / decorator forcing tape recording on or off.

    Re-entrant: each ``__enter__`` pushes the previous mode onto an
    instance-local stack, so a single instance can be nested or reused
    (including recursively through the decorator form) without
    clobbering the restore value.
    """

    _mode = True

    def __init__(self, mode: Optional[bool] = None) -> None:
        if mode is not None:
            self._mode = bool(mode)
        self._stack: list[bool] = []

    def __enter__(self) -> "set_grad_enabled":
        global _grad_enabled
        self._stack.append(_grad_enabled)
        _grad_enabled = self._mode
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._stack.pop()

    def __call__(self, fn: Callable) -> Callable:
        mode = self._mode

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with set_grad_enabled(mode):
                return fn(*args, **kwargs)

        return wrapper


class no_grad(set_grad_enabled):
    """Context manager that disables graph construction.

    Use around evaluation code to avoid the memory overhead of recording
    the tape::

        with no_grad():
            scores = model.score_all()

    Also usable as a decorator, and safe to nest or reuse.
    """

    _mode = False

    def __init__(self) -> None:
        super().__init__()


class enable_grad(set_grad_enabled):
    """Context manager that re-enables recording inside a ``no_grad``."""

    _mode = True

    def __init__(self) -> None:
        super().__init__()


def is_grad_enabled() -> bool:
    """Return whether new operations are currently recorded on the tape."""
    return _grad_enabled


# ----------------------------------------------------------------------
# numeric anomaly detection
# ----------------------------------------------------------------------
class NumericAnomalyError(FloatingPointError):
    """A NaN/Inf was produced by an autograd op under ``detect_anomaly``."""


class detect_anomaly:
    """Context manager enabling NaN/Inf sanitisation of the tape.

    While active, every op created through :meth:`Tensor._make` checks
    its forward output, and :meth:`Tensor.backward` checks every
    gradient contribution right after the producing op's backward
    closure runs.  A non-finite value raises
    :class:`NumericAnomalyError` naming the creating op and the shapes
    (and finiteness) of its parents, so a silent NaN collapse — e.g. an
    InfoNCE temperature underflow — is pinned to its origin instead of
    surfacing epochs later as a NaN loss.

    Opt-in because the finiteness scans cost one pass over every op
    output; enable via ``detect_anomaly()`` or the trainers'
    ``detect_anomaly`` config flag.  Re-entrant like :class:`no_grad`.

    Args:
        enabled: when False the context is a no-op, so callers can wrap
            code unconditionally (``with detect_anomaly(cfg.flag): …``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._mode = bool(enabled)
        self._stack: list[bool] = []

    def __enter__(self) -> "detect_anomaly":
        global _anomaly_enabled
        self._stack.append(_anomaly_enabled)
        if self._mode:
            _anomaly_enabled = True
        return self

    def __exit__(self, *exc) -> None:
        global _anomaly_enabled
        _anomaly_enabled = self._stack.pop()

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with detect_anomaly(self._mode):
                return fn(*args, **kwargs)

        return wrapper


def is_anomaly_enabled() -> bool:
    """Return whether NaN/Inf tape sanitisation is currently active."""
    return _anomaly_enabled


def _op_name(backward: Optional[Callable]) -> str:
    """Provenance of an op from its backward closure's qualname.

    Every op's vector-Jacobian closure is defined inside the op itself,
    so ``__qualname__`` is e.g. ``Tensor.log.<locals>.backward`` or
    ``softmax.<locals>.backward`` — the prefix identifies the op with
    no per-op bookkeeping on the hot path.
    """
    if backward is None:
        return "<leaf>"
    qualname = getattr(backward, "__qualname__", "")
    op = qualname.split(".<locals>", 1)[0]
    return op or "<op>"


def _describe_nonfinite(array: np.ndarray) -> str:
    nans = int(np.isnan(array).sum())
    infs = int(np.isinf(array).sum())
    parts = []
    if nans:
        parts.append(f"{nans} NaN")
    if infs:
        parts.append(f"{infs} Inf")
    return " + ".join(parts) if parts else "finite"


def _check_forward(data: np.ndarray, parents: tuple, backward: Callable) -> None:
    if np.isfinite(data).all():
        return
    lines = [
        f"forward output of '{_op_name(backward)}' contains "
        f"{_describe_nonfinite(data)} (output shape {data.shape})"
    ]
    for i, parent in enumerate(parents):
        lines.append(
            f"  parent {i}: shape {parent.shape}, "
            f"{_describe_nonfinite(parent.data)}"
        )
    raise NumericAnomalyError("\n".join(lines))


def _check_backward(node: "Tensor") -> None:
    for i, parent in enumerate(node._parents):
        if not parent.requires_grad or parent.grad is None:
            continue
        if np.isfinite(parent.grad).all():
            continue
        raise NumericAnomalyError(
            f"backward of '{_op_name(node._backward)}' produced "
            f"{_describe_nonfinite(parent.grad)} in the gradient of "
            f"parent {i} (shape {parent.shape}); op output shape "
            f"{node.shape}"
        )


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting.

    Summation is performed over the axes that were introduced or expanded
    by broadcasting.  This is the adjoint of ``np.broadcast_to``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes where the original dimension was 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64 or value.dtype == np.float32:
            return value
        return value.astype(np.float64)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def item(self) -> float:
        """Return the value of a size-1 tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a size-1 tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, recording the tape only when needed."""
        if _anomaly_enabled:
            _check_forward(data, parents, backward)
        if _grad_enabled and any(p.requires_grad for p in parents):
            return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)
        return Tensor(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy so that in-place += below never aliases an upstream buffer.
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            grad: Seed gradient.  Defaults to ``1.0`` which requires the
                tensor to be scalar-valued.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if _anomaly_enabled:
                    _check_backward(node)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.outer(g, other.data) if g.ndim else g * other.data
                    if self.data.ndim == 1:
                        grad_self = g * other.data
                else:
                    grad_self = g @ np.swapaxes(other.data, -1, -2)
                self._accumulate(unbroadcast(np.asarray(grad_self), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, g) if g.ndim else self.data * g
                    if other.data.ndim == 1:
                        grad_other = self.data * g
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(unbroadcast(np.asarray(grad_other), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        orig = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(orig))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data
            grad = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis=axis)
                grad = np.expand_dims(g, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient equally between ties, matching the subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0, 1.0, negative_slope)
                self._accumulate(g * slope)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(g * inside)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """Create a tensor of zeros."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """Create a tensor of ones."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        slices = np.moveaxis(g, axis, 0)
        for t, piece in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Elementwise select ``x`` where ``condition`` else ``y``.

    ``condition`` is a plain boolean array (not differentiated).
    """
    x, y = as_tensor(x), as_tensor(y)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, x.data, y.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(unbroadcast(g * cond, x.shape))
        if y.requires_grad:
            y._accumulate(unbroadcast(g * (~cond), y.shape))

    return Tensor._make(out_data, (x, y), backward)
