"""Minimal module system: parameter containers with recursive traversal.

Mirrors the ``torch.nn.Module`` contract the paper's implementation would
rely on: registering parameters and sub-modules by attribute assignment,
recursive ``parameters()`` iteration, train/eval mode, and state dicts
for (de)serialisation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters recursively."""
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules recursively."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter array keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            param = params[name]
            if param.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {array.shape}"
                )
            param.data[...] = array

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
