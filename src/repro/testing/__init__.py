"""Fault-injection test harness (crash points, I/O and latency proxies).

Lets tests simulate a process dying at step/epoch boundaries or in the
middle of a checkpoint write, torn/garbled file writes, and slow
backends — the scenarios the :mod:`repro.ckpt` and :mod:`repro.serve`
subsystems must survive.  All hooks are no-ops unless a fault is armed,
so production code can call them unconditionally.

The concurrency counterpart lives in :mod:`repro.testing.lockset`: an
Eraser-style lockset race sanitizer plus a runtime lock-order watchdog
(arm with :func:`lockset.arm`/:func:`lockset.sanitize`, or run the
whole suite under ``REPRO_SANITIZE=1``).
"""

from .faults import (
    CKPT_AFTER_REPLACE,
    CKPT_BEFORE_REPLACE,
    CKPT_MANIFEST_WRITE,
    CKPT_PAYLOAD_WRITE,
    DATA_CACHE_WRITE,
    PROC_FRAME,
    PROC_START,
    SERVE_RELOAD,
    SERVE_SCORE,
    SERVE_WORKER,
    TRAINER_EPOCH,
    TRAINER_STEP,
    CrashPoint,
    FaultyWrites,
    Latency,
    SimulatedCrash,
    check,
    delay,
    filter_bytes,
    reset,
    worker_site,
)
from .lockset import (
    ConcurrencyHazard,
    DeadlockHazard,
    RaceHazard,
    SanitizedLock,
    sanitize,
)
from . import lockset

__all__ = [
    "CKPT_AFTER_REPLACE",
    "CKPT_BEFORE_REPLACE",
    "CKPT_MANIFEST_WRITE",
    "CKPT_PAYLOAD_WRITE",
    "ConcurrencyHazard",
    "CrashPoint",
    "DATA_CACHE_WRITE",
    "DeadlockHazard",
    "FaultyWrites",
    "Latency",
    "PROC_FRAME",
    "PROC_START",
    "RaceHazard",
    "SERVE_RELOAD",
    "SERVE_SCORE",
    "SERVE_WORKER",
    "SanitizedLock",
    "SimulatedCrash",
    "TRAINER_EPOCH",
    "TRAINER_STEP",
    "check",
    "delay",
    "filter_bytes",
    "lockset",
    "reset",
    "sanitize",
    "worker_site",
]
