"""Fault-injection test harness (crash points, I/O and latency proxies).

Lets tests simulate a process dying at step/epoch boundaries or in the
middle of a checkpoint write, torn/garbled file writes, and slow
backends — the scenarios the :mod:`repro.ckpt` and :mod:`repro.serve`
subsystems must survive.  All hooks are no-ops unless a fault is armed,
so production code can call them unconditionally.
"""

from .faults import (
    CKPT_AFTER_REPLACE,
    CKPT_BEFORE_REPLACE,
    CKPT_MANIFEST_WRITE,
    CKPT_PAYLOAD_WRITE,
    DATA_CACHE_WRITE,
    SERVE_RELOAD,
    SERVE_SCORE,
    TRAINER_EPOCH,
    TRAINER_STEP,
    CrashPoint,
    FaultyWrites,
    Latency,
    SimulatedCrash,
    check,
    delay,
    filter_bytes,
    reset,
)

__all__ = [
    "CKPT_AFTER_REPLACE",
    "CKPT_BEFORE_REPLACE",
    "CKPT_MANIFEST_WRITE",
    "CKPT_PAYLOAD_WRITE",
    "CrashPoint",
    "DATA_CACHE_WRITE",
    "FaultyWrites",
    "Latency",
    "SERVE_RELOAD",
    "SERVE_SCORE",
    "SimulatedCrash",
    "TRAINER_EPOCH",
    "TRAINER_STEP",
    "check",
    "delay",
    "filter_bytes",
    "reset",
]
