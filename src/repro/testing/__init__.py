"""Fault-injection test harness (crash points and I/O fault proxies).

Lets tests simulate a process dying at step/epoch boundaries or in the
middle of a checkpoint write, and torn/garbled file writes — the
scenarios the :mod:`repro.ckpt` subsystem must survive.  All hooks are
no-ops unless a fault is armed, so production code can call them
unconditionally.
"""

from .faults import (
    CKPT_AFTER_REPLACE,
    CKPT_BEFORE_REPLACE,
    CKPT_MANIFEST_WRITE,
    CKPT_PAYLOAD_WRITE,
    TRAINER_EPOCH,
    TRAINER_STEP,
    CrashPoint,
    FaultyWrites,
    SimulatedCrash,
    check,
    filter_bytes,
    reset,
)

__all__ = [
    "CKPT_AFTER_REPLACE",
    "CKPT_BEFORE_REPLACE",
    "CKPT_MANIFEST_WRITE",
    "CKPT_PAYLOAD_WRITE",
    "CrashPoint",
    "FaultyWrites",
    "SimulatedCrash",
    "TRAINER_EPOCH",
    "TRAINER_STEP",
    "check",
    "filter_bytes",
    "reset",
]
