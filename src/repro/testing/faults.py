"""Fault-injection primitives for crash/corruption/latency testing.

Production code exposes *fault sites* — named points where a crash, an
I/O corruption, or extra latency may be injected — by calling
:func:`check` (crash sites), routing write payloads through
:func:`filter_bytes` (I/O sites), or calling :func:`delay` (latency
sites).  All three are no-ops costing one attribute load and one
truthiness test unless a fault is armed, so the hooks are safe on hot
paths.

Faults are armed with context managers:

- :class:`CrashPoint` raises :class:`SimulatedCrash` (or a custom
  exception) the ``at``-th time a named site is hit — and optionally
  every ``every``-th hit thereafter — simulating a process dying at a
  step/epoch boundary, mid-checkpoint-write, or a flaky dependency
  failing repeatedly under load;
- :class:`FaultyWrites` truncates or garbles the bytes of the
  ``at``-th write routed through a named I/O site, simulating torn
  writes and disk corruption;
- :class:`Latency` sleeps at a named site, simulating a slow model or
  disk so request deadlines actually fire.

Arming is process-local and intended for tests; see
``tests/core/test_resume.py`` and ``tests/serve/test_chaos.py`` for
usage.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Type

import numpy as np

# Fault-site names used by the shipped code (kept here so tests and
# production agree on the spelling).
TRAINER_STEP = "trainer:step"
TRAINER_EPOCH = "trainer:epoch"
CKPT_BEFORE_REPLACE = "ckpt:before-replace"
CKPT_AFTER_REPLACE = "ckpt:after-replace"
CKPT_PAYLOAD_WRITE = "ckpt:payload-write"
CKPT_MANIFEST_WRITE = "ckpt:manifest-write"
SERVE_SCORE = "serve:score"
SERVE_RELOAD = "serve:reload"
SERVE_WORKER = "serve:worker"
DATA_CACHE_WRITE = "data:cache-write"
PROC_FRAME = "proc:frame"
PROC_START = "proc:start"


def worker_site(worker_id: int) -> str:
    """Fault-site name targeting one shard worker of a serving pool.

    The pool front door checks both :data:`SERVE_WORKER` (any worker)
    and this per-worker site before dispatching, so chaos tests can
    crash or slow one specific shard while its replicas stay healthy.
    """
    return f"serve:worker:{int(worker_id)}"


class SimulatedCrash(RuntimeError):
    """Raised by an armed :class:`CrashPoint`; stands in for SIGKILL."""


_CRASH_POINTS: Dict[str, List["CrashPoint"]] = {}
_WRITE_FAULTS: Dict[str, List["FaultyWrites"]] = {}
_LATENCIES: Dict[str, List["Latency"]] = {}


class CrashPoint:
    """Context manager that raises when a named fault site is hit.

    Args:
        point: fault-site name (e.g. :data:`TRAINER_EPOCH`).
        at: which hit triggers the crash, 1-based; earlier hits pass
            through untouched.
        exc: exception type to raise (default :class:`SimulatedCrash`).
        every: when set, keep firing every ``every``-th hit after the
            ``at``-th (so ``at=2, every=1`` fails hit 2 and every hit
            after it) — a persistently-broken dependency rather than a
            single crash.

    The instance records ``hits`` and ``triggered`` so tests can assert
    the site was actually reached.
    """

    def __init__(
        self,
        point: str,
        at: int = 1,
        exc: Type[BaseException] = SimulatedCrash,
        every: Optional[int] = None,
    ) -> None:
        if at < 1:
            raise ValueError(f"at must be >= 1, got {at}")
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.point = point
        self.at = at
        self.exc = exc
        self.every = every
        self.hits = 0
        self.triggered = False

    def __enter__(self) -> "CrashPoint":
        _CRASH_POINTS.setdefault(self.point, []).append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        listeners = _CRASH_POINTS.get(self.point, [])
        if self in listeners:
            listeners.remove(self)
        if not listeners and self.point in _CRASH_POINTS:
            del _CRASH_POINTS[self.point]

    def _hit(self) -> None:
        self.hits += 1
        fire = self.hits == self.at
        if not fire and self.every is not None and self.hits > self.at:
            fire = (self.hits - self.at) % self.every == 0
        if fire:
            self.triggered = True
            raise self.exc(
                f"simulated crash at fault site {self.point!r} (hit {self.hits})"
            )


def check(point: str) -> None:
    """Trigger any :class:`CrashPoint` armed on ``point``.

    Called by production code at crash sites; a no-op unless a test has
    armed a fault there.
    """
    if not _CRASH_POINTS:
        return
    for listener in list(_CRASH_POINTS.get(point, ())):
        listener._hit()


class FaultyWrites:
    """Context manager corrupting the bytes of a named I/O site.

    Args:
        site: I/O fault-site name (e.g. :data:`CKPT_PAYLOAD_WRITE`).
        mode: ``"truncate"`` keeps only the leading ``fraction`` of the
            payload; ``"garble"`` XOR-scrambles a ``fraction``-sized
            slice in the middle of the payload.
        at: which write through the site is corrupted, 1-based; other
            writes pass through untouched.
        fraction: how much of the payload to keep (truncate) or scramble
            (garble).
        seed: RNG seed for the garble noise, so tests are repeatable.
    """

    def __init__(
        self,
        site: str,
        mode: str = "truncate",
        at: int = 1,
        fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if mode not in ("truncate", "garble"):
            raise ValueError(f"mode must be 'truncate' or 'garble', got {mode!r}")
        if at < 1:
            raise ValueError(f"at must be >= 1, got {at}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.site = site
        self.mode = mode
        self.at = at
        self.fraction = fraction
        self.seed = seed
        self.writes_seen = 0
        self.corrupted = False

    def __enter__(self) -> "FaultyWrites":
        _WRITE_FAULTS.setdefault(self.site, []).append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        listeners = _WRITE_FAULTS.get(self.site, [])
        if self in listeners:
            listeners.remove(self)
        if not listeners and self.site in _WRITE_FAULTS:
            del _WRITE_FAULTS[self.site]

    def _apply(self, data: bytes) -> bytes:
        self.writes_seen += 1
        if self.writes_seen != self.at:
            return data
        self.corrupted = True
        if self.mode == "truncate":
            return data[: int(len(data) * self.fraction)]
        noise_len = max(int(len(data) * self.fraction), 1)
        start = (len(data) - noise_len) // 2
        rng = np.random.default_rng(self.seed)
        buffer = bytearray(data)
        noise = rng.integers(1, 256, size=noise_len, dtype=np.uint8)
        chunk = np.frombuffer(bytes(buffer[start : start + noise_len]), np.uint8)
        buffer[start : start + noise_len] = (chunk ^ noise).tobytes()
        return bytes(buffer)


def filter_bytes(site: str, data: bytes) -> bytes:
    """Route a write payload through any armed :class:`FaultyWrites`.

    Production code calls this on the bytes it is about to write; the
    identity function unless a test armed a fault on ``site``.
    """
    if not _WRITE_FAULTS:
        return data
    for fault in list(_WRITE_FAULTS.get(site, ())):
        data = fault._apply(data)
    return data


class Latency:
    """Context manager injecting sleep at a named latency site.

    Args:
        site: fault-site name (e.g. :data:`SERVE_SCORE`).
        seconds: how long :func:`delay` sleeps when the site is hit.
        at: 1-based hit that incurs the latency; ``None`` (default)
            slows *every* hit, modelling a persistently slow backend
            rather than a single hiccup.
        sleep: injectable sleep function (tests may count calls instead
            of actually sleeping).

    Records ``hits`` and ``slept`` (total injected seconds) so tests
    can assert the latency was actually applied.
    """

    def __init__(
        self,
        site: str,
        seconds: float,
        at: Optional[int] = None,
        sleep=time.sleep,
    ) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if at is not None and at < 1:
            raise ValueError(f"at must be >= 1, got {at}")
        self.site = site
        self.seconds = seconds
        self.at = at
        self.sleep = sleep
        self.hits = 0
        self.slept = 0.0

    def __enter__(self) -> "Latency":
        _LATENCIES.setdefault(self.site, []).append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        listeners = _LATENCIES.get(self.site, [])
        if self in listeners:
            listeners.remove(self)
        if not listeners and self.site in _LATENCIES:
            del _LATENCIES[self.site]

    def _hit(self) -> None:
        self.hits += 1
        if self.at is not None and self.hits != self.at:
            return
        self.sleep(self.seconds)
        self.slept += self.seconds


def delay(site: str) -> None:
    """Sleep for any :class:`Latency` armed on ``site``.

    Called by production code at latency sites; a no-op unless a test
    has armed a fault there.
    """
    if not _LATENCIES:
        return
    for fault in list(_LATENCIES.get(site, ())):
        fault._hit()


def reset() -> None:
    """Disarm every fault (test-teardown safety net)."""
    _CRASH_POINTS.clear()
    _WRITE_FAULTS.clear()
    _LATENCIES.clear()
