"""Eraser-style lockset race sanitizer + runtime lock-order watchdog.

Armed (``arm()`` / the ``sanitize()`` context manager / the
``REPRO_SANITIZE=1`` pytest leg), this module turns the annotations in
:mod:`repro.concurrency` into dynamic checking:

- every ``new_lock``/``new_rlock`` construction returns a
  :class:`SanitizedLock` that tracks, per thread, which locks are held
  and, globally, the order locks nest in.  Acquiring ``B`` while
  holding ``A`` records the edge ``A → B``; a later acquisition that
  closes a cycle raises :class:`DeadlockHazard` carrying both stacks
  (where the conflicting order was first recorded, and where it was
  violated) *before* the program can actually deadlock.

- every ``@shared_state`` class gets its ``__setattr__`` patched to run
  the classic Eraser lockset algorithm per ``(object, attribute)``:
  writes from a single thread are free; once a second thread writes,
  the candidate lockset becomes the locks held right then and every
  further write intersects it.  An empty candidate set means no single
  lock consistently protected the attribute — :class:`RaceHazard` is
  raised with the previous writer's stack and the current one.

Disarmed, nothing is patched and nothing is tracked: annotations are
inert metadata and ``new_lock`` returns plain ``threading`` primitives
(the obs/perf layers carry a <3% disabled-overhead budget).
"""

from __future__ import annotations

import itertools
import sys
import threading
from contextlib import contextmanager
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from .. import concurrency

_STATE_ATTR = "_lockset_state"


class ConcurrencyHazard(RuntimeError):
    """Base class for sanitizer verdicts."""


class RaceHazard(ConcurrencyHazard):
    """Two threads wrote an attribute with no common lock held."""


class DeadlockHazard(ConcurrencyHazard):
    """Lock acquisition order forms a cycle (or a self-deadlock)."""


# ----------------------------------------------------------------------
# global sanitizer state (reset by disarm())
# ----------------------------------------------------------------------
_uids = itertools.count(1)
_armed = False
_state_lock = threading.Lock()  # guards _edges / _lock_names
#: lock-order graph: edge a → b with the stack that first recorded it.
_edges: Dict[int, Dict[int, str]] = {}
_lock_names: Dict[int, str] = {}
_held_local = threading.local()
_patched: Dict[type, Any] = {}
_previous_factory: Optional[Any] = None


def _held() -> List[int]:
    stack = getattr(_held_local, "stack", None)
    if stack is None:
        stack = _held_local.stack = []
    return stack


def _capture(skip: int = 2, limit: int = 12) -> str:
    """A cheap formatted stack (no linecache reads on the hot path)."""
    frames = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stacks
        return "  <stack unavailable>"
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        frames.append(
            f'  File "{code.co_filename}", line {frame.f_lineno}, '
            f"in {code.co_name}"
        )
        frame = frame.f_back
    return "\n".join(frames)


def _lock_label(uid: int) -> str:
    return f"{_lock_names.get(uid, 'lock')}#{uid}"


# ----------------------------------------------------------------------
# SanitizedLock
# ----------------------------------------------------------------------
class SanitizedLock:
    """Drop-in ``threading.Lock``/``RLock`` that reports to the watchdog.

    Tracks per-thread held sets for the Eraser lockset intersection and
    feeds every nested acquisition into the global lock-order graph.
    Reentrant acquisitions of an rlock are free; re-acquiring a
    non-reentrant ``SanitizedLock`` on the same thread raises
    :class:`DeadlockHazard` immediately instead of hanging the test.
    """

    def __init__(self, name: str = "lock", reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self.uid = next(_uids)
        self._inner = threading.RLock() if reentrant else threading.Lock()
        with _state_lock:
            _lock_names[self.uid] = name

    # -- watchdog -------------------------------------------------------
    def _before_acquire(self) -> None:
        held = _held()
        if self.uid in held:
            if self.reentrant:
                return
            raise DeadlockHazard(
                f"self-deadlock: non-reentrant {_lock_label(self.uid)} "
                f"re-acquired by the thread already holding it\n"
                f"current acquisition:\n{_capture(3)}"
            )
        if not held:
            return
        with _state_lock:
            for prior in dict.fromkeys(held):
                conflict = _find_path(self.uid, prior)
                if conflict is not None:
                    first_stack = _edges[conflict[0]][conflict[1]]
                    raise DeadlockHazard(
                        f"lock-order inversion: acquiring "
                        f"{_lock_label(self.uid)} while holding "
                        f"{_lock_label(prior)}, but the opposite order "
                        f"{_lock_label(conflict[0])} -> "
                        f"{_lock_label(conflict[1])} was recorded here:\n"
                        f"{first_stack}\n"
                        f"current acquisition:\n{_capture(3)}"
                    )
            stack = _capture(3)
            for prior in dict.fromkeys(held):
                _edges.setdefault(prior, {}).setdefault(self.uid, stack)

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._before_acquire()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _held().append(self.uid)
        return acquired

    def release(self) -> None:
        held = _held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self.uid:
                del held[i]
                break
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        if self.reentrant:  # RLock has no .locked() before 3.12
            return False
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "rlock" if self.reentrant else "lock"
        return f"<SanitizedLock {self.name!r} {kind} #{self.uid}>"


def _find_path(start: int, target: int) -> Optional[Tuple[int, int]]:
    """BFS in the order graph; returns the first edge of a path
    ``start → … → target`` (meaning the opposite nesting was seen)."""
    frontier = [start]
    seen = {start}
    parent_edge: Dict[int, Tuple[int, int]] = {}
    while frontier:
        node = frontier.pop(0)
        for nxt in _edges.get(node, ()):
            if nxt in seen:
                continue
            parent_edge[nxt] = (node, nxt)
            if nxt == target:
                # walk back to the first hop out of `start`
                edge = parent_edge[nxt]
                while edge[0] != start:
                    edge = parent_edge[edge[0]]
                return edge
            seen.add(nxt)
            frontier.append(nxt)
    return None


# ----------------------------------------------------------------------
# Eraser lockset on annotated classes
# ----------------------------------------------------------------------
def _record_write(obj: Any, cls: type, attr: str) -> None:
    held: FrozenSet[int] = frozenset(_held())
    tid = threading.get_ident()
    states = obj.__dict__.setdefault(_STATE_ATTR, {})
    state = states.get(attr)
    if state is None:
        # Virgin → Exclusive: first write, almost always construction.
        states[attr] = {
            "thread": tid,
            "shared": False,
            "lockset": None,
            "stack": _capture(3),
        }
        return
    if not state["shared"]:
        if state["thread"] == tid:
            state["stack"] = _capture(3)
            return
        # Second thread: Exclusive → Shared-Modified; candidate lockset
        # seeds from the locks held right now.
        state["shared"] = True
        state["lockset"] = set(held)
    else:
        state["lockset"] &= held
    if not state["lockset"]:
        previous = state["stack"]
        state["stack"] = _capture(3)
        raise RaceHazard(
            f"unsynchronized write to {cls.__name__}.{attr}: no lock is "
            f"consistently held across writing threads\n"
            f"previous write (thread {state['thread']}):\n{previous}\n"
            f"current write (thread {tid}):\n{_capture(3)}"
        )
    state["thread"] = tid
    state["stack"] = _capture(3)


def _instrument(cls: type, annotation: concurrency.ConcurrencyAnnotation) -> None:
    if cls in _patched:
        return
    original = cls.__setattr__
    skip = set(annotation.exempt)
    if annotation.guard:
        skip.add(annotation.guard)

    def sanitized_setattr(self: Any, name: str, value: Any) -> None:
        if (
            _armed
            and name not in skip
            and not name.startswith(_STATE_ATTR)
            and not isinstance(value, SanitizedLock)
        ):
            _record_write(self, cls, name)
        original(self, name, value)

    _patched[cls] = original
    cls.__setattr__ = sanitized_setattr


# ----------------------------------------------------------------------
# arming / disarming
# ----------------------------------------------------------------------
def armed() -> bool:
    """Whether the sanitizer is currently active."""
    return _armed


def arm() -> None:
    """Install the lock factory and instrument every annotated class.

    Idempotent — and calling it again while armed instruments any
    ``@shared_state`` class registered *since* the first arming (test
    modules imported mid-session define fixture classes).  Locks
    constructed *before* arming are invisible to the sanitizer — arm
    first, then build the objects under test (the pytest leg re-creates
    the obs module globals for this reason).
    """
    global _armed, _previous_factory
    if not _armed:
        _previous_factory = concurrency.set_lock_factory(
            lambda name, reentrant: SanitizedLock(name, reentrant=reentrant)
        )
        _armed = True
    for cls, annotation in list(concurrency.SHARED_CLASSES.items()):
        _instrument(cls, annotation)


def disarm() -> None:
    """Restore patched classes and drop all tracked state."""
    global _armed, _previous_factory
    if not _armed:
        return
    _armed = False
    concurrency.set_lock_factory(_previous_factory)
    _previous_factory = None
    for cls, original in _patched.items():
        cls.__setattr__ = original
    _patched.clear()
    with _state_lock:
        _edges.clear()
        _lock_names.clear()
    _held_local.__dict__.clear()


@contextmanager
def sanitize():
    """``with sanitize():`` — arm for the block, disarm after.

    Nesting-safe: if the sanitizer was already armed on entry (e.g. the
    whole suite runs under ``REPRO_SANITIZE=1``), it stays armed on
    exit instead of being torn down from under the outer scope.
    """
    was_armed = _armed
    arm()
    try:
        yield
    finally:
        if not was_armed:
            disarm()


__all__ = [
    "ConcurrencyHazard",
    "DeadlockHazard",
    "RaceHazard",
    "SanitizedLock",
    "arm",
    "armed",
    "disarm",
    "sanitize",
]
