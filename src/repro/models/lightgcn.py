"""LightGCN backbone (He et al., 2020).

The GNN backbone of the paper (Section V.C; two convolution layers for
all GNN methods, Section V.D).  LightGCN removes feature transforms and
non-linearities from graph convolution: each layer multiplies the
stacked user/item embeddings by the symmetric-normalised bipartite
adjacency, and the final representation is the mean over layers
(including layer 0).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn import Tensor, concat, sparse_matmul
from ..nn import functional as F
from ..nn.sparse import build_interaction_matrix, normalized_bipartite_adjacency
from .base import Recommender


class LightGCN(Recommender):
    """Simplified graph convolution collaborative filtering.

    Args:
        num_users / num_items: entity counts.
        interactions: training interactions as ``(user_ids, item_ids)``
            arrays or a prebuilt CSR matrix.
        embed_dim: embedding size ``d``.
        num_layers: propagation depth (paper: 2).
        rng: initialisation RNG.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions,
        embed_dim: int = 64,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(num_users, num_items, embed_dim, rng)
        if num_layers < 0:
            raise ValueError(f"num_layers must be >= 0, got {num_layers}")
        self.num_layers = num_layers
        if isinstance(interactions, sp.spmatrix):
            matrix = interactions.tocsr()
        else:
            user_ids, item_ids = interactions
            matrix = build_interaction_matrix(
                np.asarray(user_ids), np.asarray(item_ids), num_users, num_items
            )
        self.adjacency = normalized_bipartite_adjacency(matrix)
        self._propagated: tuple | None = None

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def propagate(self) -> tuple[Tensor, Tensor]:
        """Run ``num_layers`` propagation steps; returns (users, items).

        The result participates in autograd; callers inside one training
        step can reuse it via the per-step cache (reset on parameter
        updates by calling :meth:`invalidate_cache`).
        """
        ego = concat([self.user_embedding.all(), self.item_embedding.all()], axis=0)
        layers = [ego]
        current = ego
        for _ in range(self.num_layers):
            current = sparse_matmul(self.adjacency, current)
            layers.append(current)
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        final = stacked * (1.0 / len(layers))
        users = final[np.arange(self.num_users)]
        items = final[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items

    def invalidate_cache(self) -> None:
        """Drop the cached propagation (call after optimiser steps)."""
        self._propagated = None

    def begin_step(self) -> None:
        self.invalidate_cache()

    def _cached(self) -> tuple[Tensor, Tensor]:
        if self._propagated is None:
            self._propagated = self.propagate()
        return self._propagated

    def user_repr(self) -> Tensor:
        return self._cached()[0]

    def item_repr(self) -> Tensor:
        return self._cached()[1]

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u_final, v_final = self._cached()
        u = F.embedding_lookup(u_final, users)
        v = F.embedding_lookup(v_final, items)
        return (u * v).sum(axis=1)

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        from ..nn import no_grad

        with no_grad():
            u_final, v_final = self.propagate()
            return u_final.data[users] @ v_final.data.T
