"""BPRMF backbone: matrix factorisation trained with the BPR loss.

The simplest of the paper's three backbones (Section V.C): user and item
embedding tables scored by inner product; :class:`Recommender` already
implements exactly this, so the class only pins the semantics down.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender


class BPRMF(Recommender):
    """Matrix-factorisation recommender with pairwise ranking loss.

    ``ŷ_{uv} = u · v`` over the raw embedding tables; training minimises
    Eq. (1).  Used as the ``B-IMCAT`` backbone.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embed_dim: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            num_users,
            num_items,
            embed_dim,
            rng if rng is not None else np.random.default_rng(0),
        )
