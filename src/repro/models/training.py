"""Generic BPR training loop with validation early stopping.

Implements the protocol of Section V.D for backbones and baselines:
Adam, learning rate / weight decay ``1e-3``, batch size 1024, one
negative per positive, early stopping when validation Recall@20 stops
improving.  IMCAT has its own trainer (``repro.core.trainer``) because of
the pre-training phase and cluster refresh schedule.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, List, Optional

import numpy as np

from .. import obs, testing
from ..ckpt import (
    CheckpointError,
    CheckpointManager,
    config_fingerprint,
    resolve_resume,
    rng_state,
    set_rng_state,
)
from ..data.sampling import BPRSampler, TripletBatch
from ..data.split import Split
from ..eval.evaluator import Evaluator
from ..nn import Adam, CosineAnnealing, StepDecay, clip_grad_norm, detect_anomaly
from ..nn import fusion
from ..train.parallel import DataParallelEngine, DataParallelTask, shard_bounds
from .base import Recommender


@dataclass
class TrainConfig:
    """Training hyper-parameters (paper defaults, scaled-down epochs).

    ``lr_schedule`` selects an optional per-epoch schedule ("cosine" or
    "step"); ``clip_norm`` enables global gradient-norm clipping.  Both
    default to off, matching the paper's fixed-rate Adam.
    """

    epochs: int = 100
    batch_size: int = 1024
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    eval_every: int = 5
    patience: int = 4
    top_n: int = 20
    seed: int = 0
    verbose: bool = False
    lr_schedule: Optional[str] = None
    clip_norm: Optional[float] = None
    detect_anomaly: bool = False
    """Run training under :class:`repro.nn.detect_anomaly`: NaN/Inf on
    the tape raises at the creating op instead of poisoning the run."""
    checkpoint_dir: Optional[str] = None
    """Directory for :mod:`repro.ckpt` snapshots; ``None`` disables
    checkpointing entirely."""
    checkpoint_every: int = 1
    """Snapshot every N epochs at the epoch boundary."""
    keep_last: int = 3
    """Rolling retention: newest snapshots kept (plus best-by-metric)."""
    resume_from: Optional[str] = None
    """``"auto"`` resumes from the newest valid snapshot under
    ``checkpoint_dir`` (fresh start when there is none); a path loads
    that checkpoint file or directory explicitly."""
    fused: bool = False
    """Run the loss under :func:`repro.nn.fusion.fused_mode`: elementwise
    chains and per-intent projections execute as single fused kernels,
    bit-identical to the eager tape."""
    dp_workers: int = 0
    """Data-parallel worker count; ``0`` keeps the serial loop.  With
    ``1`` worker the run is bit-identical to serial (see
    :mod:`repro.train.parallel` for the determinism contract)."""
    dp_backend: str = "fork"
    """``"fork"`` (shared-memory processes) or ``"inline"`` (same task
    protocol executed sequentially in-process)."""

    def __post_init__(self) -> None:
        if self.lr_schedule not in (None, "cosine", "step"):
            raise ValueError(
                f"lr_schedule must be None, 'cosine', or 'step', "
                f"got {self.lr_schedule!r}"
            )
        if self.dp_workers < 0:
            raise ValueError(
                f"dp_workers must be non-negative, got {self.dp_workers}"
            )
        if self.dp_backend not in ("fork", "inline"):
            raise ValueError(
                f"dp_backend must be 'fork' or 'inline', got {self.dp_backend!r}"
            )


@dataclass
class TrainResult:
    """Outcome of a training run."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    wall_time: float
    history: List[dict] = field(default_factory=list)


def fit_bpr(
    model: Recommender,
    split: Split,
    config: Optional[TrainConfig] = None,
    evaluator: Optional[Evaluator] = None,
) -> TrainResult:
    """Train ``model`` on ``split.train`` with BPR + early stopping.

    The model's :meth:`Recommender.extra_loss` hook is added to every
    batch loss, which is how SSL/KG baselines inject their auxiliary
    objectives.  The best validation state is restored before returning.
    ``config.detect_anomaly`` wraps the run in the autograd numeric
    sanitizer (see :class:`repro.nn.detect_anomaly`).
    """
    config = config or TrainConfig()
    with detect_anomaly(config.detect_anomaly), fusion.fused_mode(config.fused):
        return _fit_bpr(model, split, config, evaluator)


class _BprEpochTask(DataParallelTask):
    """:func:`fit_bpr`'s epoch loop in data-parallel form.

    Each worker replica replays the serial step order — full-batch
    sampling, loss, ``extra_loss`` RNG draw — but computes gradients
    only on its contiguous shard, scaled by ``n_w / B``.  When a batch
    is smaller than the worker count every rank computes it whole (for
    RNG parity) and only rank 0 publishes, at scale 1.
    """

    def __init__(
        self,
        model: Recommender,
        sampler: BPRSampler,
        optimizer: Adam,
        rng: np.random.Generator,
        config: TrainConfig,
    ) -> None:
        self.model = model
        self.sampler = sampler
        self.optimizer = optimizer
        self.rng = rng
        self.config = config
        self.epoch = 0
        self._batches = None
        self._batch: Optional[TripletBatch] = None

    def steps_per_epoch(self) -> int:
        return -(-self.sampler.num_positives // self.config.batch_size)

    def begin_epoch(self) -> None:
        self.model.train()
        self.model.refresh_epoch(self.epoch)
        self._batches = self.sampler.epoch(self.config.batch_size)

    def next_step(self) -> None:
        self._batch = next(self._batches)

    def save_draw_state(self):
        return self.rng.bit_generator.state

    def restore_draw_state(self, state) -> None:
        self.rng.bit_generator.state = state

    def compute(self, rank: int, workers: int) -> Optional[float]:
        batch = self._batch
        assert batch is not None
        n = len(batch)
        publish = True
        if n < workers:
            shard, scale = batch, 1.0
            publish = rank == 0
        else:
            lo, hi = shard_bounds(n, workers)[rank]
            if (lo, hi) == (0, n):
                shard, scale = batch, 1.0
            else:
                shard = TripletBatch(
                    batch.anchors[lo:hi],
                    batch.positives[lo:hi],
                    batch.negatives[lo:hi],
                )
                scale = (hi - lo) / n
        self.model.begin_step()
        loss = self.model.bpr_loss(shard)
        extra = self.model.extra_loss(self.rng)
        if extra is not None:
            loss = loss + extra
        if scale != 1.0:
            loss = loss * scale
        self.optimizer.zero_grad()
        loss.backward()
        return float(loss.item()) if publish else None

    def apply_step(self) -> None:
        if self.config.clip_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.config.clip_norm)
        self.optimizer.step()

    def on_parent_step(self, step_index: int, loss: float) -> None:
        testing.check(testing.TRAINER_STEP)

    def handback(self) -> dict:
        return {
            "rng": self.rng.bit_generator.state,
            "sampler": self.sampler.state_dict(),
            "model_extra": self.model.get_extra_state(),
        }

    def adopt(self, handback: dict) -> None:
        self.rng.bit_generator.state = handback["rng"]
        self.sampler.load_state_dict(handback["sampler"])
        if handback["model_extra"] is not None:
            self.model.set_extra_state(handback["model_extra"])


def _fit_bpr(
    model: Recommender,
    split: Split,
    config: TrainConfig,
    evaluator: Optional[Evaluator],
) -> TrainResult:
    tracer = obs.get_tracer()
    metrics = obs.get_metrics()
    rng = np.random.default_rng(config.seed)
    sampler = BPRSampler(split.train, seed=config.seed)
    evaluator = evaluator or Evaluator(
        split.train, split.valid, top_n=(config.top_n,), metrics=("recall",)
    )
    metric_key = f"recall@{config.top_n}"
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    scheduler = None
    if config.lr_schedule == "cosine":
        scheduler = CosineAnnealing(optimizer, total_epochs=config.epochs)
    elif config.lr_schedule == "step":
        scheduler = StepDecay(
            optimizer, step_size=max(config.epochs // 3, 1), gamma=0.5
        )

    manager = None
    if config.checkpoint_dir is not None:
        manager = CheckpointManager(
            config.checkpoint_dir, keep_last=config.keep_last, tracer=tracer
        )
    fingerprint = config_fingerprint(
        config, {"kind": "bpr", "model": type(model).__name__}
    )

    best_metric = -np.inf
    best_epoch = -1
    best_state = None
    bad_evals = 0
    history: List[dict] = []
    start = time.time()
    step = 0
    epochs_run = 0
    start_epoch = 0

    resumed = resolve_resume(config.resume_from, manager)
    if resumed is not None:
        if resumed.get("fingerprint") != fingerprint:
            raise CheckpointError(
                "checkpoint/config mismatch: the snapshot was written under "
                f"fingerprint {resumed.get('fingerprint')!r} but this run "
                f"has {fingerprint!r}; resume with the same optimisation "
                "settings (the epoch budget may differ)"
            )
        model.load_state_dict(resumed["model"])
        if resumed.get("model_extra") is not None:
            model.set_extra_state(resumed["model_extra"])
        optimizer.load_state_dict(resumed["optimizer"])
        if scheduler is not None and resumed["scheduler"] is not None:
            scheduler.load_state_dict(resumed["scheduler"])
        set_rng_state(rng, resumed["rng"])
        sampler.load_state_dict(resumed["sampler"])
        best = resumed["best"]
        best_metric = -np.inf if best["metric"] is None else best["metric"]
        best_epoch = best["epoch"]
        best_state = best["state"]
        bad_evals = best["bad_evals"]
        history = list(resumed["history"])
        step = resumed["step"]
        epochs_run = resumed["epochs_run"]
        start_epoch = resumed["epoch"]
        model.begin_step()

    def snapshot(next_epoch: int) -> dict:
        """Full training state at an epoch boundary (bit-exact)."""
        return {
            "version": 1,
            "kind": "bpr",
            "fingerprint": fingerprint,
            "epoch": next_epoch,
            "step": step,
            "epochs_run": epochs_run,
            "model": model.state_dict(),
            "model_extra": (
                model.get_extra_state()
                if hasattr(model, "get_extra_state") else None
            ),
            "optimizer": optimizer.state_dict(),
            "scheduler": None if scheduler is None else scheduler.state_dict(),
            "rng": rng_state(rng),
            "sampler": sampler.state_dict(),
            "best": {
                "metric": None if best_state is None else float(best_metric),
                "epoch": best_epoch,
                "state": best_state,
                "bad_evals": bad_evals,
            },
            "history": history,
        }

    dp_task = None
    engine_cm: ContextManager = nullcontext(None)
    if config.dp_workers > 0:
        dp_task = _BprEpochTask(model, sampler, optimizer, rng, config)
        engine_cm = DataParallelEngine(
            optimizer.parameters,
            workers=config.dp_workers,
            backend=config.dp_backend,
            tracer=tracer,
            metrics=metrics,
        )

    with engine_cm as engine, tracer.span(
        "train", kind="bpr", model=type(model).__name__
    ) as train_span:
        for epoch in range(start_epoch, config.epochs):
            epochs_run = epoch + 1
            stop_early = False
            with tracer.span("epoch", index=epoch) as epoch_span:
                epoch_loss = 0.0
                num_batches = 0
                if engine is not None:
                    dp_task.epoch = epoch
                    outcome = engine.run_epoch(dp_task)
                    for value in outcome.losses:
                        epoch_loss += value
                    num_batches = outcome.steps
                    step += outcome.steps
                else:
                    model.train()
                    model.refresh_epoch(epoch)
                    for batch in sampler.epoch(config.batch_size):
                        model.begin_step()
                        loss = model.bpr_loss(batch)
                        extra = model.extra_loss(rng)
                        if extra is not None:
                            loss = loss + extra
                        optimizer.zero_grad()
                        loss.backward()
                        if config.clip_norm is not None:
                            clip_grad_norm(
                                optimizer.parameters, config.clip_norm
                            )
                        optimizer.step()
                        epoch_loss += loss.item()
                        num_batches += 1
                        step += 1
                        testing.check(testing.TRAINER_STEP)
                if scheduler is not None:
                    scheduler.step()

                record = {
                    "epoch": epoch, "loss": epoch_loss / max(num_batches, 1)
                }
                metrics.gauge("bpr.loss").set(record["loss"])
                if (
                    (epoch + 1) % config.eval_every == 0
                    or epoch == config.epochs - 1
                ):
                    model.eval()
                    model.begin_step()
                    with tracer.span("eval", metric=metric_key):
                        result = evaluator.evaluate(model, tracer=tracer)
                    record[metric_key] = result[metric_key]
                    metrics.gauge(f"bpr.valid.{metric_key}").set(
                        result[metric_key]
                    )
                    if config.verbose:
                        print(
                            f"[{model.__class__.__name__}] epoch {epoch}: "
                            f"loss={record['loss']:.4f} "
                            f"{metric_key}={result[metric_key]:.4f}"
                        )
                    if result[metric_key] > best_metric:
                        best_metric = result[metric_key]
                        best_epoch = epoch
                        best_state = model.state_dict()
                        bad_evals = 0
                    else:
                        bad_evals += 1
                        if bad_evals >= config.patience:
                            stop_early = True
                epoch_span.set_attributes(
                    loss=record["loss"], steps=num_batches
                )
            if config.fused:
                fusion.record_metrics(metrics)
            history.append(record)
            if stop_early:
                break
            if (
                manager is not None
                and (epoch + 1) % config.checkpoint_every == 0
            ):
                manager.save(
                    snapshot(next_epoch=epoch + 1),
                    step=step,
                    metric=record.get(metric_key),
                )
            testing.check(testing.TRAINER_EPOCH)
        train_span.set_attributes(
            best_metric=float(best_metric) if best_metric > -np.inf else 0.0,
            epochs_run=epochs_run,
        )

    if best_state is not None:
        model.load_state_dict(best_state)
        model.begin_step()
    model.eval()
    return TrainResult(
        best_metric=float(best_metric) if best_metric > -np.inf else 0.0,
        best_epoch=best_epoch,
        epochs_run=epochs_run,
        wall_time=time.time() - start,
        history=history,
    )
