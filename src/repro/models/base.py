"""Recommender interface shared by backbones, baselines, and IMCAT.

IMCAT is model-agnostic (Section IV): any model exposing user/item
representations and a pairwise scorer can be wrapped.  The contract is:

- ``user_repr()`` / ``item_repr()`` — *final* representations as autograd
  tensors (after propagation for GNN models);
- ``pair_scores(users, items)`` — differentiable relevance scores
  ``ŷ_{uv}`` for index arrays;
- ``bpr_loss(batch)`` — the ranking loss of Eq. (1) on a triplet batch;
- ``all_scores(users)`` — dense evaluation scores without gradients.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..data.dataset import TagRecDataset
from ..data.sampling import TripletBatch
from ..nn import Embedding, Module, Tensor, no_grad
from ..nn import functional as F
from ..nn import fusion


class Recommender(Module):
    """Base class for all recommendation models.

    Args:
        num_users / num_items: entity counts.
        embed_dim: embedding size ``d`` (paper default 64).
        rng: RNG used for Xavier initialisation.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embed_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if embed_dim <= 0:
            raise ValueError(f"embed_dim must be positive, got {embed_dim}")
        self.num_users = num_users
        self.num_items = num_items
        self.embed_dim = embed_dim
        self.user_embedding = Embedding(num_users, embed_dim, rng)
        self.item_embedding = Embedding(num_items, embed_dim, rng)

    # ------------------------------------------------------------------
    # representations
    # ------------------------------------------------------------------
    def user_repr(self) -> Tensor:
        """Final user representations ``(|U|, d)`` (autograd tensor)."""
        return self.user_embedding.all()

    def item_repr(self) -> Tensor:
        """Final item representations ``(|V|, d)`` (autograd tensor)."""
        return self.item_embedding.all()

    def refresh_epoch(self, epoch: int) -> None:
        """Hook called at the start of each epoch (e.g. to re-sample
        augmented graphs in SSL baselines).  Default: no-op."""

    def begin_step(self) -> None:
        """Hook called before each training step.  GNN models use it to
        drop cached propagations so each step builds a fresh graph."""

    # ------------------------------------------------------------------
    # non-parameter state
    # ------------------------------------------------------------------
    def persistent_buffers(self) -> Dict[str, np.ndarray]:
        """Non-parameter arrays that inference needs (e.g. RippleNet's
        sampled ripple sets).  Saved alongside parameters by
        :func:`repro.io.save_model`.  Default: none."""
        return {}

    def load_persistent_buffers(self, buffers: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`persistent_buffers` output.  Default: rejects
        anything, so archives never silently drop state the model cannot
        absorb."""
        if buffers:
            raise ValueError(
                f"{type(self).__name__} has no persistent buffers but the "
                f"archive carries {sorted(buffers)}"
            )

    def get_extra_state(self) -> Optional[Dict[str, Any]]:
        """Non-parameter *training* state for full checkpoints (e.g. the
        augmentation RNG of SSL baselines).  Default: none.  See
        :mod:`repro.ckpt`."""
        return None

    def set_extra_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`get_extra_state` output on resume."""
        raise ValueError(
            f"{type(self).__name__} carries no extra training state but a "
            f"checkpoint supplied some"
        )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable ``ŷ_{uv}`` for aligned index arrays.

        Default implementation: inner product of final representations.
        """
        u = F.embedding_lookup(self.user_repr(), users)
        v = F.embedding_lookup(self.item_repr(), items)
        return (u * v).sum(axis=1)

    def bpr_loss(self, batch: TripletBatch) -> Tensor:
        """Pairwise ranking loss (Eq. 1) on a triplet batch.

        When fused execution is on and the model uses the default
        inner-product scorer over raw embedding tables, the whole step
        (lookups, dot products, loss tail) runs as one fused kernel —
        bit-identical to the eager chain.
        """
        if fusion.is_fused() and type(self).pair_scores is Recommender.pair_scores:
            fused = fusion.dot_bpr(
                self.user_repr(),
                self.item_repr(),
                batch.anchors,
                batch.positives,
                batch.negatives,
            )
            if fused is not None:
                return fused
        pos = self.pair_scores(batch.anchors, batch.positives)
        neg = self.pair_scores(batch.anchors, batch.negatives)
        return F.bpr_loss(pos, neg)

    def extra_loss(self, rng: np.random.Generator) -> Optional[Tensor]:
        """Model-specific auxiliary loss added per batch (e.g. TransR for
        CKE, InfoNCE for SGL).  Default: none."""
        return None

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        """Dense scores for evaluation; gradients are not recorded."""
        with no_grad():
            u = self.user_repr().data[users]
            v = self.item_repr().data
            return u @ v.T

    def recommend(
        self,
        user: int,
        top_n: int = 20,
        exclude: Optional[set] = None,
    ) -> np.ndarray:
        """Top-``top_n`` item indices for one user, best first.

        Args:
            user: user index.
            top_n: list length ``N``.
            exclude: item indices to skip (typically the user's training
                items, per the task definition of Section III.A).
        """
        from ..eval.metrics import rank_items

        scores = self.all_scores(np.array([user]))[0]
        return rank_items(scores, exclude or set(), top_n)

    def l2_reg(self, batch: TripletBatch) -> Tensor:
        """Squared L2 norm of the batch's base embeddings (optional
        explicit regulariser; the paper uses optimizer weight decay)."""
        u = self.user_embedding(batch.anchors)
        p = self.item_embedding(batch.positives)
        n = self.item_embedding(batch.negatives)
        return ((u * u).sum() + (p * p).sum() + (n * n).sum()) * (
            0.5 / max(len(batch), 1)
        )


class TagAwareRecommender(Recommender):
    """Base class for models that also embed the tag vocabulary."""

    def __init__(
        self,
        dataset: TagRecDataset,
        embed_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(dataset.num_users, dataset.num_items, embed_dim, rng)
        self.num_tags = dataset.num_tags
        self.tag_embedding = Embedding(dataset.num_tags, embed_dim, rng)

    def tag_repr(self) -> Tensor:
        """Tag representations ``(|T|, d)``."""
        return self.tag_embedding.all()

    def tag_pair_scores(self, items: np.ndarray, tags: np.ndarray) -> Tensor:
        """Relevance ``ŷ_{vt}`` for the item-tag BPR task (Eq. 2)."""
        v = F.embedding_lookup(self.item_repr(), items)
        t = F.embedding_lookup(self.tag_repr(), tags)
        return (v * t).sum(axis=1)

    def tag_bpr_loss(self, batch: TripletBatch) -> Tensor:
        """Item-tag ranking loss ``L_VT`` (Eq. 2)."""
        if (
            fusion.is_fused()
            and type(self).tag_pair_scores is TagAwareRecommender.tag_pair_scores
        ):
            fused = fusion.dot_bpr(
                self.item_repr(),
                self.tag_repr(),
                batch.anchors,
                batch.positives,
                batch.negatives,
            )
            if fused is not None:
                return fused
        pos = self.tag_pair_scores(batch.anchors, batch.positives)
        neg = self.tag_pair_scores(batch.anchors, batch.negatives)
        return F.bpr_loss(pos, neg)
