"""Recommendation models: the three backbones, the baseline zoo, and the
shared training loop."""

from .base import Recommender, TagAwareRecommender
from .bprmf import BPRMF
from .lightgcn import LightGCN
from .neumf import NeuMF
from .training import TrainConfig, TrainResult, fit_bpr
from . import baselines

__all__ = [
    "BPRMF",
    "LightGCN",
    "NeuMF",
    "Recommender",
    "TagAwareRecommender",
    "TrainConfig",
    "TrainResult",
    "baselines",
    "fit_bpr",
]
