"""NeuMF backbone: neural collaborative filtering (He et al., 2017).

The MLP-based backbone of the paper (Section V.C).  This implementation
keeps the two NCF branches:

- **GMF**: element-wise product of user and item embeddings;
- **MLP**: a tower over the concatenated embeddings;

and fuses them with a linear prediction head.  Unlike the original
pointwise log-loss training, scores feed the BPR objective, matching the
paper's uniform training protocol for all backbones.

For IMCAT compatibility the base embedding tables are shared between the
two branches (``user_repr``/``item_repr`` expose them directly).
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, MLP, Tensor, concat, no_grad
from ..nn import functional as F
from .base import Recommender


class NeuMF(Recommender):
    """Neural matrix factorisation with GMF and MLP branches.

    Args:
        num_users / num_items: entity counts.
        embed_dim: embedding size ``d``.
        mlp_hidden: tower layer sizes applied to the ``2d`` concatenation.
        rng: initialisation RNG.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embed_dim: int = 64,
        mlp_hidden: tuple = (64, 32),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(num_users, num_items, embed_dim, rng)
        self.mlp = MLP(2 * embed_dim, list(mlp_hidden), rng, final_activation=True)
        self.predict = Linear(embed_dim + mlp_hidden[-1], 1, rng, bias=False)

    def _fuse(self, u: Tensor, v: Tensor) -> Tensor:
        gmf = u * v
        tower = self.mlp(concat([u, v], axis=1))
        fused = concat([gmf, tower], axis=1)
        return self.predict(fused).reshape(-1)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = F.embedding_lookup(self.user_repr(), users)
        v = F.embedding_lookup(self.item_repr(), items)
        return self._fuse(u, v)

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        """Dense evaluation scores without materialising user-item pairs.

        The first tower layer acts on ``[u; v]``, so its pre-activation
        factorises as ``u @ W_u.T + v @ W_v.T``: the per-item part is
        computed once and broadcast against each user, making full
        ranking O(|U|·|V|·h) BLAS work instead of building the
        ``|U|·|V|`` pair matrix explicitly.
        """
        with no_grad():
            u_all = self.user_repr().data[users]  # (B, d)
            v_all = self.item_repr().data  # (V, d)
            d = self.embed_dim
            first = self.mlp._layers[0]
            w_user = first.weight.data[:, :d]
            w_item = first.weight.data[:, d:]
            bias0 = first.bias.data
            pre_user = u_all @ w_user.T  # (B, h0)
            pre_item = v_all @ w_item.T  # (V, h0)
            predict_w = self.predict.weight.data[0]  # (d + h_last,)
            w_gmf, w_tower = predict_w[:d], predict_w[d:]

            scores = np.empty((len(users), self.num_items))
            for row in range(len(users)):
                hidden = np.maximum(pre_user[row] + pre_item + bias0, 0.0)
                for layer in self.mlp._layers[1:]:
                    hidden = hidden @ layer.weight.data.T
                    if layer.bias is not None:
                        hidden += layer.bias.data
                    np.maximum(hidden, 0.0, out=hidden)
                gmf = u_all[row] * v_all  # (V, d)
                scores[row] = gmf @ w_gmf + hidden @ w_tower
            return scores
