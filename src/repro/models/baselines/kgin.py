"""KGIN baseline (Wang et al., 2021): intents behind interactions.

KGIN models each user-item interaction as a distribution over latent
intents, where every intent is an attentive combination of KG relation
embeddings, and enforces intent independence.  With tags as relations,
each intent ``p_k`` is a softmax-weighted combination of tag embeddings;
users aggregate their items through intent channels, items aggregate
their tags — a relational path-aware aggregation of depth two.

KGIN is the closest competitor to IMCAT (it also models intents) but
couples them to GNN message passing rather than contrastive alignment.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Parameter, Tensor, no_grad, sparse_matmul
from ...nn import functional as F
from ...nn.init import xavier_uniform
from ...nn.sparse import build_interaction_matrix, row_normalize
from ..base import TagAwareRecommender


class KGIN(TagAwareRecommender):
    """Intent-aware relational aggregation over user-item-tag relations.

    Args:
        dataset: supplies tag assignments.
        train_interactions: ``(user_ids, item_ids)`` training edges.
        num_intents: latent intents (paper's own K; default 4).
        independence_weight: weight of the intent-independence loss.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        train_interactions=None,
        embed_dim: int = 64,
        num_intents: int = 4,
        independence_weight: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.num_intents = num_intents
        self.independence_weight = independence_weight
        # Intent-over-relation attention logits (K x |T|).
        self.intent_logits = Parameter(
            xavier_uniform((num_intents, dataset.num_tags), rng)
        )
        # Per-user intent preference logits (|U| x K).
        self.user_intent_logits = Parameter(
            np.zeros((dataset.num_users, num_intents))
        )
        if train_interactions is None:
            user_ids, item_ids = dataset.user_ids, dataset.item_ids
        else:
            user_ids, item_ids = map(np.asarray, train_interactions)
        ui = build_interaction_matrix(
            user_ids, item_ids, dataset.num_users, dataset.num_items
        )
        it = build_interaction_matrix(
            dataset.tag_item_ids, dataset.tag_ids,
            dataset.num_items, dataset.num_tags,
        )
        self._u_from_v = row_normalize(ui)
        self._v_from_t = row_normalize(it)
        self._cache = None

    def begin_step(self) -> None:
        self._cache = None

    def intent_vectors(self) -> Tensor:
        """``(K, d)`` intents as attentive combinations of tag embeddings."""
        attention = F.softmax(self.intent_logits, axis=1)
        return attention @ self.tag_embedding.all()

    def propagate(self):
        """Two-stage relational aggregation; returns (users, items)."""
        v0 = self.item_embedding.all()
        t0 = self.tag_embedding.all()
        # Items aggregate their tags (relational message).
        v1 = v0 + sparse_matmul(self._v_from_t, t0)
        # Users aggregate items through intent channels:
        # u = sum_k beta_{u,k} * (agg_{i in N(u)} p_k * v_i)
        #   = base * (beta @ intents) — the per-intent sum collapses to
        # one matmul because every channel shares the same base message.
        intents = self.intent_vectors()  # (K, d)
        beta = F.softmax(self.user_intent_logits, axis=1)  # (|U|, K)
        base = sparse_matmul(self._u_from_v, v1)  # (|U|, d)
        u1 = base * (beta @ intents)
        u_final = (self.user_embedding.all() + u1) * 0.5
        v_final = (v0 + v1) * 0.5
        return u_final, v_final

    def propagate_reference(self):  # lint: reference-path
        """Per-intent loop implementation of :meth:`propagate`, kept as
        the equivalence baseline for tests and the hot-path benchmarks."""
        v0 = self.item_embedding.all()
        t0 = self.tag_embedding.all()
        v1 = v0 + sparse_matmul(self._v_from_t, t0)
        intents = self.intent_vectors()
        beta = F.softmax(self.user_intent_logits, axis=1)
        base = sparse_matmul(self._u_from_v, v1)
        u1 = None
        for k in range(self.num_intents):
            channel = base * intents[np.array([k])]  # (|U|, d)
            weighted = channel * beta[:, np.array([k])]
            u1 = weighted if u1 is None else u1 + weighted
        u_final = (self.user_embedding.all() + u1) * 0.5
        v_final = (v0 + v1) * 0.5
        return u_final, v_final

    def _cached(self):
        if self._cache is None:
            self._cache = self.propagate()
        return self._cache

    def user_repr(self) -> Tensor:
        return self._cached()[0]

    def item_repr(self) -> Tensor:
        return self._cached()[1]

    def independence_loss(self) -> Tensor:
        """Pairwise squared cosine between intent vectors.

        A cheap stand-in for KGIN's distance-correlation regulariser with
        the same fixed point (mutually orthogonal intents).
        """
        intents = F.l2_normalize(self.intent_vectors())
        gram = intents @ intents.T  # (K, K)
        off_diag_mask = 1.0 - np.eye(self.num_intents)
        return ((gram * Tensor(off_diag_mask)) ** 2).sum() * (
            1.0 / max(self.num_intents * (self.num_intents - 1), 1)
        )

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        return self.independence_loss() * self.independence_weight

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            u, v = self.propagate()
            return u.data[users] @ v.data.T
