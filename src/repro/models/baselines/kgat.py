"""KGAT baseline (Wang et al., 2019): knowledge graph attention network.

KGAT unifies the collaborative graph and the KG into one
collaborative-knowledge graph and runs attentive graph convolution,
with attention coefficients

    pi(h, r, t) = (W e_t)^T tanh(W e_h + r)

learned jointly with a TransR objective.  Here the graph spans
user-item and item-tag edges (tag-as-KG convention); attention is
recomputed at every epoch from the current embeddings (a standard
efficiency choice — KGAT itself alternates attention refresh and
propagation phases), and the TransR loss rides on ``extra_loss``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...data.dataset import TagRecDataset
from ...nn import Linear, Parameter, Tensor, concat, no_grad, sparse_matmul
from ...nn import functional as F
from ...nn.init import xavier_uniform
from ...nn.sparse import row_normalize
from ..base import TagAwareRecommender


class KGAT(TagAwareRecommender):
    """Attentive convolution over the collaborative-knowledge graph.

    Args:
        dataset: supplies tag edges; pass training interactions so test
            edges never enter the graph.
        train_interactions: ``(user_ids, item_ids)``.
        num_layers: propagation depth (paper setup: 2).
        kg_weight: TransR loss weight.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        train_interactions=None,
        embed_dim: int = 64,
        num_layers: int = 2,
        kg_weight: float = 1.0,
        kg_batch_size: int = 512,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.num_layers = num_layers
        self.kg_weight = kg_weight
        self.kg_batch_size = kg_batch_size
        self.attention_proj = Linear(embed_dim, embed_dim, rng, bias=False)
        self.relation_ui = Parameter(xavier_uniform((embed_dim,), rng))
        self.relation_it = Parameter(xavier_uniform((embed_dim,), rng))
        if train_interactions is None:
            user_ids, item_ids = dataset.user_ids, dataset.item_ids
        else:
            user_ids, item_ids = map(np.asarray, train_interactions)
        self._edges = self._collect_edges(dataset, user_ids, item_ids)
        self._num_nodes = dataset.num_users + dataset.num_items + dataset.num_tags
        self._adjacency: sp.csr_matrix | None = None
        self._pairs_items = dataset.tag_item_ids
        self._pairs_tags = dataset.tag_ids
        self._cache = None
        self.refresh_epoch(0)

    def _collect_edges(self, dataset, user_ids, item_ids):
        """Directed edge list (head, tail, relation_id) over all nodes."""
        n_u, n_v = dataset.num_users, dataset.num_items
        heads = np.concatenate([
            user_ids,                       # user -> item
            item_ids + n_u,                 # item -> user
            dataset.tag_item_ids + n_u,     # item -> tag
            dataset.tag_ids + n_u + n_v,    # tag -> item
        ])
        tails = np.concatenate([
            item_ids + n_u,
            user_ids,
            dataset.tag_ids + n_u + n_v,
            dataset.tag_item_ids + n_u,
        ])
        relations = np.concatenate([
            np.zeros(len(user_ids), dtype=np.int64),
            np.zeros(len(item_ids), dtype=np.int64),
            np.ones(len(dataset.tag_item_ids), dtype=np.int64),
            np.ones(len(dataset.tag_ids), dtype=np.int64),
        ])
        return heads, tails, relations

    def _all_entities(self) -> np.ndarray:
        return np.vstack([
            self.user_embedding.all().data,
            self.item_embedding.all().data,
            self.tag_embedding.all().data,
        ])

    def refresh_epoch(self, epoch: int) -> None:
        """Recompute attention coefficients into a row-softmax adjacency."""
        with no_grad():
            entities = self._all_entities()
            heads, tails, relations = self._edges
            w = self.attention_proj.weight.data
            rel = np.where(
                relations[:, None] == 0,
                self.relation_ui.data[None, :],
                self.relation_it.data[None, :],
            )
            head_term = np.tanh(entities[heads] @ w.T + rel)
            tail_term = entities[tails] @ w.T
            logits = (head_term * tail_term).sum(axis=1)
            # Row-wise softmax via exp + row normalisation (stable shift).
            logits -= logits.max()
            weights = np.exp(logits)
            adj = sp.coo_matrix(
                (weights, (heads, tails)),
                shape=(self._num_nodes, self._num_nodes),
            ).tocsr()
            self._adjacency = row_normalize(adj)
        self._cache = None

    def begin_step(self) -> None:
        self._cache = None

    def propagate(self):
        ego = concat(
            [
                self.user_embedding.all(),
                self.item_embedding.all(),
                self.tag_embedding.all(),
            ],
            axis=0,
        )
        layers = [ego]
        current = ego
        for _ in range(self.num_layers):
            current = sparse_matmul(self._adjacency, current)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        final = total * (1.0 / len(layers))
        n_u, n_v = self.num_users, self.num_items
        return (
            final[np.arange(n_u)],
            final[np.arange(n_u, n_u + n_v)],
            final[np.arange(n_u + n_v, self._num_nodes)],
        )

    def _cached(self):
        if self._cache is None:
            self._cache = self.propagate()
        return self._cache

    def user_repr(self) -> Tensor:
        return self._cached()[0]

    def item_repr(self) -> Tensor:
        return self._cached()[1]

    def tag_repr(self) -> Tensor:
        return self._cached()[2]

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        """TransR ranking loss over sampled item-tag triples."""
        n = min(self.kg_batch_size, len(self._pairs_items))
        index = rng.integers(0, len(self._pairs_items), size=n)
        items = self._pairs_items[index]
        pos_tags = self._pairs_tags[index]
        neg_tags = rng.integers(0, self.num_tags, size=n)

        def score(tags):
            v = self.attention_proj(self.item_embedding(items))
            t = self.attention_proj(self.tag_embedding(tags))
            diff = v + self.relation_it - t
            return -(diff * diff).sum(axis=1)

        return F.bpr_loss(score(pos_tags), score(neg_tags)) * self.kg_weight

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            u, v, _ = self.propagate()
            return u.data[users] @ v.data.T
