"""CFA baseline (Zuo et al., 2016): tag-profile autoencoder + user CF.

CFA represents each user by the tags attached to the items they
interacted with, compresses the profile with a (sparse) autoencoder, and
applies user-based collaborative filtering in the latent space.  The
paper notes this family is sub-optimal because a user does not
necessarily like *all* tags of her items (Section V.E) — which is the
behaviour this implementation reproduces.

Training minimises profile reconstruction error; ranking scores are the
similarity-weighted sum of neighbouring users' interactions.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...data.sampling import TripletBatch
from ...nn import MLP, Tensor, no_grad
from ...nn import functional as F
from ..base import Recommender


class CFA(Recommender):
    """Collaborative filtering on autoencoded tag-based user profiles.

    Args:
        dataset: training interactions + tag assignments.
        embed_dim: latent code size.
        rng: initialisation RNG.
        num_neighbors: neighbourhood size of the user-based CF step.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        embed_dim: int = 64,
        rng: np.random.Generator | None = None,
        num_neighbors: int = 50,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset.num_users, dataset.num_items, embed_dim, rng)
        self.num_neighbors = num_neighbors
        # User tag profile: row-normalised (Y @ Y') counts.
        profiles = (dataset.interaction_matrix() @ dataset.tag_matrix()).toarray()
        row_sums = profiles.sum(axis=1, keepdims=True)
        self._profiles = profiles / np.maximum(row_sums, 1.0)
        self._interactions = dataset.interaction_matrix()
        num_tags = dataset.num_tags
        self.encoder = MLP(num_tags, [embed_dim], rng, final_activation=True)
        self.decoder = MLP(embed_dim, [num_tags], rng)

    def encode(self, users: np.ndarray) -> Tensor:
        """Latent codes of the given users' tag profiles."""
        return self.encoder(Tensor(self._profiles[users]))

    def bpr_loss(self, batch: TripletBatch) -> Tensor:
        """Reconstruction loss on the batch's anchor users.

        CFA is not a ranking model; plugging reconstruction into the
        ``bpr_loss`` slot lets the shared training loop drive it.
        """
        users = np.unique(batch.anchors)
        target = self._profiles[users]
        recon = self.decoder(self.encoder(Tensor(target)))
        return F.mse_loss(recon, target) * 100.0

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        """User-based CF scores from latent-space cosine neighbours."""
        with no_grad():
            all_codes = self.encoder(Tensor(self._profiles)).data
            norms = np.linalg.norm(all_codes, axis=1, keepdims=True)
            unit = all_codes / np.maximum(norms, 1e-12)
            sims = unit[users] @ unit.T  # (batch, |U|)
            # Keep only the top-k neighbours per user (excluding self).
            for row, user in enumerate(users):
                sims[row, user] = -np.inf
                if self.num_neighbors < sims.shape[1]:
                    cutoff = np.partition(sims[row], -self.num_neighbors)[
                        -self.num_neighbors
                    ]
                    sims[row, sims[row] < cutoff] = 0.0
                sims[row, sims[row] == -np.inf] = 0.0
            sims = np.maximum(sims, 0.0)
            return np.asarray(sims @ self._interactions)
