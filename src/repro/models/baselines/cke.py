"""CKE baseline (Zhang et al., 2016): collaborative knowledge-base
embedding.

CKE couples matrix factorisation with structural knowledge embeddings
learned by TransR.  Following the paper's adaptation protocol
(Section II.B), tags and items are entities and "is labelled with tag t"
is a relation: the structural loss pushes ``W v + r ≈ W t`` for observed
item-tag pairs against corrupted ones, and the item embeddings are
shared with the MF scorer so the KG signal regularises recommendation.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Linear, Parameter, Tensor
from ...nn import functional as F
from ...nn.init import xavier_uniform
from ..base import TagAwareRecommender


class CKE(TagAwareRecommender):
    """Matrix factorisation regularised by TransR over item-tag triples.

    Args:
        dataset: training interactions + tag assignments.
        embed_dim: embedding size for entities and the relation space.
        kg_weight: weight of the structural loss added per batch.
        kg_batch_size: item-tag pairs sampled for each structural step.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        embed_dim: int = 64,
        kg_weight: float = 1.0,
        kg_batch_size: int = 512,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.kg_weight = kg_weight
        self.kg_batch_size = kg_batch_size
        self.relation_proj = Linear(embed_dim, embed_dim, rng, bias=False)
        self.relation = Parameter(xavier_uniform((embed_dim,), rng))
        self._pairs_items = dataset.tag_item_ids
        self._pairs_tags = dataset.tag_ids
        self._num_tags = dataset.num_tags

    def _transr_score(self, items: np.ndarray, tags: np.ndarray) -> Tensor:
        """Negative squared translation distance in the relation space."""
        v = self.relation_proj(self.item_embedding(items))
        t = self.relation_proj(self.tag_embedding(tags))
        diff = v + self.relation - t
        return -(diff * diff).sum(axis=1)

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        """BPR-style TransR loss on sampled item-tag triples."""
        n = min(self.kg_batch_size, len(self._pairs_items))
        index = rng.integers(0, len(self._pairs_items), size=n)
        items = self._pairs_items[index]
        pos_tags = self._pairs_tags[index]
        neg_tags = rng.integers(0, self._num_tags, size=n)
        pos = self._transr_score(items, pos_tags)
        neg = self._transr_score(items, neg_tags)
        return F.bpr_loss(pos, neg) * self.kg_weight
