"""RippleNet baseline (Wang et al., 2018): preference propagation.

RippleNet grows "ripple sets" from each user's history through the
knowledge graph and forms the user representation by attending over the
ripple entities conditioned on the candidate item.  In the tag-as-KG
convention, a user's hop-1 ripple set contains the tags of her training
items and the hop-2 set contains *other items carrying those tags*
(item -> tag -> item paths).  Each user holds fixed-size sampled ripple
sets per hop; the attention

    a_l ∝ exp(e_l^T R v)

weights the ripple entity embeddings per hop, and the score is
``(u + o1_u(v) + o2_u(v)) · v`` with ``oh_u(v)`` the attended hop-h
summary — RippleNet's defining multi-hop candidate-conditioned
propagation at tractable cost.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Linear, Tensor, no_grad
from ...nn import functional as F
from ..base import TagAwareRecommender


class RippleNet(TagAwareRecommender):
    """Candidate-conditioned attention over per-user ripple tag sets.

    Args:
        dataset: used for tags; pass training interactions separately so
            test items never leak into ripple sets.
        train_interactions: ``(user_ids, item_ids)`` to build ripple sets.
        ripple_size: tags sampled (with replacement) per user.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        train_interactions=None,
        embed_dim: int = 64,
        ripple_size: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.ripple_size = ripple_size
        self.relation = Linear(embed_dim, embed_dim, rng, bias=False)
        if train_interactions is None:
            user_ids, item_ids = dataset.user_ids, dataset.item_ids
        else:
            user_ids, item_ids = train_interactions
        self._ripples, self._ripples2 = self._build_ripples(
            dataset, np.asarray(user_ids), np.asarray(item_ids), rng
        )

    def _build_ripples(
        self,
        dataset: TagRecDataset,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sampled ripple sets per user.

        Returns ``(hop1, hop2)``: hop-1 holds tags of the user's items,
        hop-2 holds items reached through those tags (both
        ``(|U|, ripple_size)``, sampled with replacement).
        """
        tags_of_item = dataset.tags_of_item()
        items_of_tag: list[list[int]] = [[] for _ in range(dataset.num_tags)]
        for item, tag in zip(dataset.tag_item_ids, dataset.tag_ids):
            items_of_tag[tag].append(int(item))
        hop1 = np.zeros((dataset.num_users, self.ripple_size), dtype=np.int64)
        hop2 = np.zeros((dataset.num_users, self.ripple_size), dtype=np.int64)
        by_user: list[list[int]] = [[] for _ in range(dataset.num_users)]
        for u, v in zip(user_ids, item_ids):
            by_user[u].extend(tags_of_item[v].tolist())
        for u, pool in enumerate(by_user):
            if pool:
                hop1[u] = rng.choice(pool, size=self.ripple_size, replace=True)
            else:
                hop1[u] = rng.integers(0, dataset.num_tags, size=self.ripple_size)
            # Hop 2: one item per sampled hop-1 tag (tag -> item edge).
            for pos, tag in enumerate(hop1[u]):
                partners = items_of_tag[tag]
                hop2[u, pos] = (
                    partners[rng.integers(0, len(partners))]
                    if partners
                    else rng.integers(0, dataset.num_items)
                )
        return hop1, hop2

    def persistent_buffers(self) -> dict:
        """The sampled ripple sets — construction-time RNG state that a
        reloaded model must reuse to score identically."""
        return {"ripples": self._ripples.copy(), "ripples2": self._ripples2.copy()}

    def load_persistent_buffers(self, buffers: dict) -> None:
        for name in ("ripples", "ripples2"):
            if name not in buffers:
                raise ValueError(f"archive is missing ripple buffer {name!r}")
            loaded = np.asarray(buffers[name], dtype=np.int64)
            current = self._ripples if name == "ripples" else self._ripples2
            if loaded.shape != current.shape:
                raise ValueError(
                    f"ripple buffer {name!r} shape {loaded.shape} does not "
                    f"match model shape {current.shape}"
                )
        self._ripples = np.asarray(buffers["ripples"], dtype=np.int64)
        self._ripples2 = np.asarray(buffers["ripples2"], dtype=np.int64)

    def _attend_pool(
        self, entities: Tensor, item_vecs: Tensor, batch: int
    ) -> Tensor:
        """Candidate-conditioned attention over one ripple pool."""
        projected = self.relation(item_vecs)  # (B, d)
        logits = (entities * projected.reshape(batch, 1, -1)).sum(axis=2)
        weights = F.softmax(logits, axis=1)
        return (entities * weights.reshape(batch, self.ripple_size, 1)).sum(axis=1)

    def _attended(self, users: np.ndarray, item_vecs: Tensor) -> Tensor:
        """Ripple summary ``o1 + o2``: attention over both hops."""
        batch = len(users)
        hop1 = self.tag_embedding(self._ripples[users].reshape(-1)).reshape(
            batch, self.ripple_size, -1
        )
        hop2 = self.item_embedding(self._ripples2[users].reshape(-1)).reshape(
            batch, self.ripple_size, -1
        )
        return (
            self._attend_pool(hop1, item_vecs, batch)
            + self._attend_pool(hop2, item_vecs, batch)
        )

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user_embedding(users)
        v = self.item_embedding(items)
        summary = self._attended(users, v)
        return ((u + summary) * v).sum(axis=1)

    def all_scores(self, users: np.ndarray, item_chunk: int = 1024) -> np.ndarray:
        with no_grad():
            u_all = self.user_embedding.all().data[users]  # (B, d)
            v_all = self.item_embedding.all().data  # (V, d)
            t_all = self.tag_embedding.all().data
            proj = self.relation.weight.data  # (d, d)
            pools = (
                t_all[self._ripples[users]],   # hop-1 tags  (B, R, d)
                v_all[self._ripples2[users]],  # hop-2 items (B, R, d)
            )
            scores = np.empty((len(users), self.num_items))
            for start in range(0, self.num_items, item_chunk):
                stop = min(start + item_chunk, self.num_items)
                v = v_all[start:stop]  # (C, d)
                pv = v @ proj.T  # (C, d)
                base = np.broadcast_to(
                    u_all[:, None, :],
                    (len(users), stop - start, u_all.shape[1]),
                ).copy()
                for pool in pools:
                    # logits: (B, R, C)
                    logits = np.einsum("brd,cd->brc", pool, pv)
                    logits -= logits.max(axis=1, keepdims=True)
                    weights = np.exp(logits)
                    weights /= weights.sum(axis=1, keepdims=True)
                    base += np.einsum("brc,brd->bcd", weights, pool)
                scores[:, start:stop] = np.einsum("bcd,cd->bc", base, v)
            return scores
