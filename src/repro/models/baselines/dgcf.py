"""DGCF baseline (Wang et al., 2020): disentangled graph CF.

The paper's intent-aware initialisation (Section IV.A.1) "follows [10]"
— this model.  DGCF splits user/item embeddings into ``K`` intent
chunks and propagates each chunk over its own *intent-weighted* graph:
the weight of edge ``(u, v)`` in channel ``k`` grows with the affinity
of the two endpoints' ``k``-th chunks, and the channels compete through
a softmax over intents per edge.  An independence regulariser keeps the
channels distinct.

This implementation keeps DGCF's defining loop — per-edge intent
routing re-estimated from the current embeddings each epoch — with a
single propagation layer per channel, and exposes the standard
:class:`Recommender` contract so it slots into the harness.  It is a
natural extra baseline for Table II: IMCAT's IRM without the
multi-source alignment.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...nn import Tensor, concat, no_grad, sparse_matmul
from ...nn import functional as F
from ...nn.sparse import row_normalize
from ..base import Recommender
from ...core.intents import independence_loss, validate_intent_dims


class DGCF(Recommender):
    """Disentangled graph collaborative filtering.

    Args:
        num_users / num_items: entity counts.
        interactions: ``(user_ids, item_ids)`` training edges.
        embed_dim: total embedding size ``d``.
        num_intents: number of disentangled channels ``K``.
        independence_weight: weight of the channel-independence loss.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions,
        embed_dim: int = 64,
        num_intents: int = 4,
        num_layers: int = 2,
        independence_weight: float = 0.01,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(num_users, num_items, embed_dim, rng)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_intents = num_intents
        self.num_layers = num_layers
        self.intent_dim = validate_intent_dims(embed_dim, num_intents)
        self.independence_weight = independence_weight
        user_ids, item_ids = map(np.asarray, interactions)
        self._edges = (user_ids, item_ids)
        self._channel_adjs: list[sp.csr_matrix] | None = None
        self._block_adj: sp.csr_matrix | None = None
        self._cache = None
        self.refresh_epoch(0)

    # ------------------------------------------------------------------
    # intent routing
    # ------------------------------------------------------------------
    def refresh_epoch(self, epoch: int) -> None:
        """Re-estimate per-edge intent weights from current embeddings.

        For every edge and intent, the logit is the inner product of the
        endpoints' intent chunks; a softmax over intents routes the edge
        mass.  Each channel's bipartite adjacency is then row-normalised.
        """
        user_ids, item_ids = self._edges
        with no_grad():
            u = self.user_embedding.all().data[user_ids]
            v = self.item_embedding.all().data[item_ids]
            k, dim = self.num_intents, self.intent_dim
            # One strided view per side: logits[e, i] = u_i(e) · v_i(e).
            logits = (
                u.reshape(len(user_ids), k, dim)
                * v.reshape(len(user_ids), k, dim)
            ).sum(axis=2)
            logits -= logits.max(axis=1, keepdims=True)
            weights = np.exp(logits)
            weights /= weights.sum(axis=1, keepdims=True)

        total = self.num_users + self.num_items
        adjs = []
        for intent in range(k):
            w = weights[:, intent]
            rows = np.concatenate([user_ids, item_ids + self.num_users])
            cols = np.concatenate([item_ids + self.num_users, user_ids])
            data = np.concatenate([w, w])
            adj = sp.coo_matrix((data, (rows, cols)), shape=(total, total))
            adjs.append(row_normalize(adj.tocsr()))
        self._channel_adjs = adjs
        # All K channels propagate through one block-diagonal operator
        # over channel-major stacked chunks (see propagate()).
        self._block_adj = sp.block_diag(adjs, format="csr")
        self._cache = None

    def begin_step(self) -> None:
        self._cache = None

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def propagate(self):
        """Multi-layer disentangled propagation per channel; concat chunks.

        Each channel runs ``num_layers`` propagation steps through its
        intent-routed graph and averages all layers (including layer 0),
        the original DGCF/LightGCN layer-combination rule.

        The K per-channel propagations run as *one* sparse matmul per
        layer: chunks are stacked channel-major into a ``(K·N, d/K)``
        matrix and pushed through the block-diagonal adjacency, so the
        work per layer no longer grows a Python loop with K.
        """
        ego = concat(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0
        )
        k, dim = self.num_intents, self.intent_dim
        n = self.num_users + self.num_items
        chunk = ego.reshape(n, k, dim).transpose(1, 0, 2).reshape(k * n, dim)
        layers = [chunk]
        current = chunk
        for _ in range(self.num_layers):
            current = sparse_matmul(self._block_adj, current)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        total = total * (1.0 / len(layers))
        final = total.reshape(k, n, dim).transpose(1, 0, 2).reshape(n, k * dim)
        users = final[np.arange(self.num_users)]
        items = final[
            np.arange(self.num_users, self.num_users + self.num_items)
        ]
        return users, items

    def propagate_reference(self):  # lint: reference-path
        """Per-channel loop implementation of :meth:`propagate`, kept as
        the equivalence baseline for tests and the hot-path benchmarks."""
        ego = concat(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0
        )
        dim = self.intent_dim
        channels = []
        for intent in range(self.num_intents):
            chunk = ego[:, intent * dim : (intent + 1) * dim]
            layers = [chunk]
            current = chunk
            for _ in range(self.num_layers):
                current = sparse_matmul(self._channel_adjs[intent], current)
                layers.append(current)
            total = layers[0]
            for layer in layers[1:]:
                total = total + layer
            channels.append(total * (1.0 / len(layers)))
        final = concat(channels, axis=1)
        users = final[np.arange(self.num_users)]
        items = final[
            np.arange(self.num_users, self.num_users + self.num_items)
        ]
        return users, items

    def _cached(self):
        if self._cache is None:
            self._cache = self.propagate()
        return self._cache

    def user_repr(self) -> Tensor:
        return self._cached()[0]

    def item_repr(self) -> Tensor:
        return self._cached()[1]

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        """Independence across intent chunks on a sampled item batch."""
        items = rng.choice(self.num_items, size=min(256, self.num_items),
                           replace=False)
        batch = F.embedding_lookup(self.item_embedding.all(), items)
        return (
            independence_loss(batch, self.num_intents, dim=self.intent_dim)
            * self.independence_weight
        )

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            u, v = self.propagate()
            return u.data[users] @ v.data.T
