"""KGCL baseline (Yang et al., 2022): knowledge graph contrastive
learning.

KGCL runs cross-view contrastive learning between the CF graph and the
knowledge graph: item representations derived from (augmented views of)
the KG must agree with each other, which de-noises the KG signal and
counteracts interaction sparsity.  In the tag-as-KG convention the item
views come from two stochastically dropped item-tag graphs; the CF
backbone is LightGCN, and the consistency InfoNCE rides on
``extra_loss`` — the strongest SSL baseline in Table II.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Embedding, Tensor
from ...nn import functional as F
from ...nn.sparse import build_interaction_matrix, drop_edges, row_normalize, sparse_matmul
from ..lightgcn import LightGCN


class KGCL(LightGCN):
    """LightGCN + cross-view contrastive alignment on the item-tag graph.

    Args:
        dataset: supplies the tag graph.
        train_interactions: ``(user_ids, item_ids)`` training edges.
        tag_drop_ratio: edge dropout of each item-tag view.
        ssl_weight / ssl_temperature / ssl_batch_size: InfoNCE settings.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        train_interactions=None,
        embed_dim: int = 64,
        num_layers: int = 2,
        tag_drop_ratio: float = 0.2,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        ssl_batch_size: int = 256,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        if train_interactions is None:
            interactions = (dataset.user_ids, dataset.item_ids)
        else:
            interactions = train_interactions
        super().__init__(
            dataset.num_users,
            dataset.num_items,
            interactions,
            embed_dim,
            num_layers,
            rng,
        )
        self.num_tags = dataset.num_tags
        self.tag_embedding = Embedding(dataset.num_tags, embed_dim, rng)
        self.tag_drop_ratio = tag_drop_ratio
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self.ssl_batch_size = ssl_batch_size
        self._it_raw = build_interaction_matrix(
            dataset.tag_item_ids, dataset.tag_ids,
            dataset.num_items, dataset.num_tags,
        )
        self._aug_rng = np.random.default_rng(0)
        self._views = None
        self.refresh_epoch(0)

    def refresh_epoch(self, epoch: int) -> None:
        """Resample the two item-tag graph views."""
        self._views = [
            row_normalize(drop_edges(self._it_raw, self.tag_drop_ratio, self._aug_rng))
            for _ in range(2)
        ]

    def get_extra_state(self) -> dict:
        """The augmentation RNG position (see :class:`SGL`)."""
        return {"aug_rng": self._aug_rng.bit_generator.state}

    def set_extra_state(self, state: dict) -> None:
        self._aug_rng.bit_generator.state = state["aug_rng"]

    def _item_view(self, adjacency) -> Tensor:
        """Item representations aggregated from a tag-graph view."""
        tag_messages = sparse_matmul(adjacency, self.tag_embedding.all())
        return self.item_embedding.all() + tag_messages

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        """Cross-view item consistency InfoNCE."""
        items = rng.choice(
            self.num_items,
            size=min(self.ssl_batch_size, self.num_items),
            replace=False,
        )
        z1 = F.l2_normalize(self._item_view(self._views[0])[items])
        z2 = F.l2_normalize(self._item_view(self._views[1])[items])
        loss = F.info_nce(z1, z2, self.ssl_temperature)
        return loss * (self.ssl_weight / max(len(items), 1))
