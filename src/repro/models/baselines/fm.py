"""Factorization Machine baseline (Rendle, 2010).

The classic feature-based route to tag-aware recommendation the paper
cites as reference [3]: each (user, item) pair is described by the
one-hot features {user, item, tags-of-item}, and the FM scores

    y(x) = w0 + sum_f w_f + sum_{f<g} <e_f, e_g>

over the active features.  With the active set fixed to
``{u, v} ∪ T(v)`` the pairwise term decomposes into

    <e_u, z_v> + c_v,    z_v = e_v + sum_t e_t,
    c_v = <e_v, s_v> + sum_{t<t'} <e_t, e_t'>   (user-independent),

so full ranking costs one ``|U| x d`` by ``d x |V|`` product — the FM
trick of linear-time pairwise interactions, exploited here for both the
training path (autograd) and evaluation.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Parameter, Tensor, no_grad
from ...nn import functional as F
from ..base import TagAwareRecommender


class FM(TagAwareRecommender):
    """Second-order factorization machine over user/item/tag features.

    Args:
        dataset: supplies the item-tag assignments.
        embed_dim: latent factor size.
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        embed_dim: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.user_bias = Parameter(np.zeros(dataset.num_users))
        self.item_bias = Parameter(np.zeros(dataset.num_items))
        self.tag_bias = Parameter(np.zeros(dataset.num_tags))
        # Constant per-item tag membership (items -> padded tag lists).
        self._tags_of_item = dataset.tags_of_item()
        self._tag_counts = np.array(
            [len(t) for t in self._tags_of_item], dtype=np.int64
        )
        flat = np.concatenate(
            [t for t in self._tags_of_item if len(t)]
        ) if self._tag_counts.sum() else np.empty(0, dtype=np.int64)
        segments = np.repeat(np.arange(dataset.num_items), self._tag_counts)
        self._flat_tags = flat
        self._tag_segments = segments

    # ------------------------------------------------------------------
    # item-side aggregates (differentiable)
    # ------------------------------------------------------------------
    def _item_aggregates(self):
        """Return ``(z, c, b)``: interaction vector, pairwise constant,
        and summed bias per item."""
        tag_table = self.tag_embedding.all()
        if len(self._flat_tags):
            rows = F.embedding_lookup(tag_table, self._flat_tags)
            sums = F.segment_mean(rows, self._tag_segments, self.num_items)
            # segment_mean divides by counts; rescale to plain sums.
            s = F.scale_rows(sums, np.maximum(self._tag_counts, 1))
            sq_rows = rows * rows
            sq_mean = F.segment_mean(sq_rows, self._tag_segments, self.num_items)
            sum_sq = F.scale_rows(
                sq_mean, np.maximum(self._tag_counts, 1)
            ).sum(axis=1)
        else:
            s = Tensor(np.zeros((self.num_items, self.embed_dim)))
            sum_sq = Tensor(np.zeros(self.num_items))
        v = self.item_embedding.all()
        z = v + s
        # Pairwise terms internal to the item's feature set:
        # <v, s> + 0.5 (||s||^2 - sum_t ||t||^2).
        vs = (v * s).sum(axis=1)
        ss = (s * s).sum(axis=1)
        c = vs + (ss - sum_sq) * 0.5
        if len(self._flat_tags):
            tag_bias_rows = F.embedding_lookup(
                self.tag_bias.reshape(-1, 1), self._flat_tags
            )
            tag_bias_sum = F.scale_rows(
                F.segment_mean(tag_bias_rows, self._tag_segments, self.num_items),
                np.maximum(self._tag_counts, 1),
            ).reshape(-1)
        else:
            tag_bias_sum = Tensor(np.zeros(self.num_items))
        b = self.item_bias + tag_bias_sum
        return z, c, b

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        z, c, b = self._item_aggregates()
        u = self.user_embedding(users)
        z_batch = z[items]
        interaction = (u * z_batch).sum(axis=1)
        return (
            interaction
            + c[items]
            + b[items]
            + self.user_bias[users]
        )

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            z, c, b = self._item_aggregates()
            u = self.user_embedding.all().data[users]
            scores = u @ z.data.T
            scores += (c.data + b.data)[None, :]
            scores += self.user_bias.data[users, None]
            return scores
