"""TGCN baseline (Chen et al., 2020): tag graph convolutional network.

TGCN builds one unified graph over user, item, and tag nodes and runs
type-aware neighbour aggregation: an item aggregates its user neighbours
and its tag neighbours *separately* before mixing the type-specific
messages.  This implementation follows the LightGCN simplification the
paper applies to all GNN methods (no feature transforms, two layers)
while keeping TGCN's defining type-aware mixing, realised as learnable
per-type scalars.
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import Parameter, Tensor, no_grad, sparse_matmul
from ...nn import functional as F
from ...nn.sparse import build_interaction_matrix, row_normalize
from ..base import TagAwareRecommender


class TGCN(TagAwareRecommender):
    """Type-aware graph convolution over the user-item-tag graph.

    Args:
        dataset: supplies both the interaction and tag graphs (training
            interactions only).
        train_interactions: ``(user_ids, item_ids)`` for the propagation
            graph; defaults to the dataset's interactions.
        embed_dim: embedding size.
        num_layers: propagation depth (paper: 2).
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        train_interactions=None,
        embed_dim: int = 64,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset, embed_dim, rng)
        self.num_layers = num_layers
        if train_interactions is None:
            user_ids, item_ids = dataset.user_ids, dataset.item_ids
        else:
            user_ids, item_ids = train_interactions
        ui = build_interaction_matrix(
            np.asarray(user_ids), np.asarray(item_ids),
            dataset.num_users, dataset.num_items,
        )
        it = build_interaction_matrix(
            dataset.tag_item_ids, dataset.tag_ids,
            dataset.num_items, dataset.num_tags,
        )
        # Row-stochastic per-relation propagation operators.
        self._u_from_v = row_normalize(ui)           # users <- items
        self._v_from_u = row_normalize(ui.T.tocsr())  # items <- users
        self._v_from_t = row_normalize(it)           # items <- tags
        self._t_from_v = row_normalize(it.T.tocsr())  # tags <- items
        # Type-aware mixing weights (softmax over message types per layer).
        self.type_logits = Parameter(np.zeros((num_layers, 2)))
        self._cache = None

    def begin_step(self) -> None:
        self._cache = None

    def propagate(self):
        """Type-aware message passing; returns (user, item, tag) tensors."""
        u = self.user_embedding.all()
        v = self.item_embedding.all()
        t = self.tag_embedding.all()
        u_layers, v_layers, t_layers = [u], [v], [t]
        for layer in range(self.num_layers):
            mix = F.softmax(self.type_logits[layer].reshape(1, 2), axis=1)
            w_user = mix[0, 0].reshape(1, 1)
            w_tag = mix[0, 1].reshape(1, 1)
            u_next = sparse_matmul(self._u_from_v, v)
            v_from_users = sparse_matmul(self._v_from_u, u)
            v_from_tags = sparse_matmul(self._v_from_t, t)
            v_next = v_from_users * w_user + v_from_tags * w_tag
            t_next = sparse_matmul(self._t_from_v, v)
            u, v, t = u_next, v_next, t_next
            u_layers.append(u)
            v_layers.append(v)
            t_layers.append(t)

        def average(layers):
            total = layers[0]
            for layer in layers[1:]:
                total = total + layer
            return total * (1.0 / len(layers))

        return average(u_layers), average(v_layers), average(t_layers)

    def _cached(self):
        if self._cache is None:
            self._cache = self.propagate()
        return self._cache

    def user_repr(self) -> Tensor:
        return self._cached()[0]

    def item_repr(self) -> Tensor:
        return self._cached()[1]

    def tag_repr(self) -> Tensor:
        return self._cached()[2]

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            u, v, _ = self.propagate()
            return u.data[users] @ v.data.T
