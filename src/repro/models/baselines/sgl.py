"""SGL baseline (Wu et al., 2020): self-supervised graph learning.

SGL augments the LightGCN training with a contrastive objective between
two stochastically perturbed views of the interaction graph,
encouraging representation consistency and robustness.  It uses no
auxiliary information — it is the paper's SSL baseline on the pure CF
graph.  All three of the original augmentation operators are available:
edge dropout ("ed", the IMCAT paper's comparison setting), node dropout
("nd"), and random walk ("rw", layer-wise independent edge dropout).
"""

from __future__ import annotations

import numpy as np

from ...nn import Tensor, concat, sparse_matmul
from ...nn import functional as F
from ...nn.sparse import (
    drop_edges,
    drop_nodes,
    normalized_bipartite_adjacency,
    random_walk_edges,
)
from ..lightgcn import LightGCN


class SGL(LightGCN):
    """LightGCN + edge-dropout contrastive views.

    Args:
        num_users / num_items / interactions / embed_dim / num_layers:
            as for :class:`LightGCN`.
        drop_ratio: fraction of edges removed per view.
        ssl_weight: InfoNCE weight added to the BPR loss.
        ssl_temperature: InfoNCE temperature.
        ssl_batch_size: nodes sampled per contrastive step.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions,
        embed_dim: int = 64,
        num_layers: int = 2,
        drop_ratio: float = 0.1,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        ssl_batch_size: int = 256,
        augmentation: str = "ed",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            num_users, num_items, interactions, embed_dim, num_layers, rng
        )
        if augmentation not in ("ed", "nd", "rw"):
            raise ValueError(
                f"augmentation must be 'ed', 'nd', or 'rw', got {augmentation!r}"
            )
        self.augmentation = augmentation
        self.drop_ratio = drop_ratio
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self.ssl_batch_size = ssl_batch_size
        # Raw (un-normalised) interaction matrix for re-augmentation.
        if not hasattr(interactions, "tocsr"):
            from ...nn.sparse import build_interaction_matrix

            user_ids, item_ids = interactions
            interactions = build_interaction_matrix(
                np.asarray(user_ids), np.asarray(item_ids), num_users, num_items
            )
        self._raw = interactions.tocsr()
        self._aug_rng = np.random.default_rng(0)
        self._view_adjs = None
        self.refresh_epoch(0)

    def refresh_epoch(self, epoch: int) -> None:
        """Resample the two augmented graph views (per-epoch, as in SGL).

        Each view is a list of per-layer adjacencies: ED and ND share
        one subgraph across layers, RW re-samples per layer.
        """
        views = []
        layer_count = max(self.num_layers, 1)
        for _ in range(2):
            if self.augmentation == "rw":
                per_layer = [
                    normalized_bipartite_adjacency(m)
                    for m in random_walk_edges(
                        self._raw, self.drop_ratio, self._aug_rng, layer_count
                    )
                ]
            else:
                drop = drop_nodes if self.augmentation == "nd" else drop_edges
                shared = normalized_bipartite_adjacency(
                    drop(self._raw, self.drop_ratio, self._aug_rng)
                )
                per_layer = [shared] * layer_count
            views.append(per_layer)
        self._view_adjs = views

    def get_extra_state(self) -> dict:
        """The augmentation RNG position — without it a resumed run would
        re-sample different graph views than the uninterrupted one."""
        return {"aug_rng": self._aug_rng.bit_generator.state}

    def set_extra_state(self, state: dict) -> None:
        self._aug_rng.bit_generator.state = state["aug_rng"]

    def _propagate_view(self, adjacencies) -> Tensor:
        ego = concat(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0
        )
        layers = [ego]
        current = ego
        for adjacency in adjacencies:
            current = sparse_matmul(adjacency, current)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total * (1.0 / len(layers))

    def extra_loss(self, rng: np.random.Generator) -> Tensor:
        """InfoNCE between the two views on a sampled node batch."""
        view1 = self._propagate_view(self._view_adjs[0])
        view2 = self._propagate_view(self._view_adjs[1])
        total_nodes = self.num_users + self.num_items
        batch = rng.choice(
            total_nodes, size=min(self.ssl_batch_size, total_nodes), replace=False
        )
        z1 = F.l2_normalize(view1[batch])
        z2 = F.l2_normalize(view2[batch])
        loss = F.info_nce(z1, z2, self.ssl_temperature)
        return loss * (self.ssl_weight / max(len(batch), 1))
