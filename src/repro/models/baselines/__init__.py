"""Baseline methods compared against IMCAT in Table II.

Four families, matching Section V.C:

- tag-enhanced: :class:`CFA`, :class:`DSPR`, :class:`TGCN`;
- KG-enhanced (tags as a single-relation KG): :class:`CKE`,
  :class:`RippleNet`, :class:`KGAT`, :class:`KGIN`;
- SSL-based: :class:`SGL`, :class:`KGCL`;
- (the no-auxiliary backbones live in ``repro.models``).
"""

from .cfa import CFA
from .dgcf import DGCF
from .cke import CKE
from .dspr import DSPR
from .fm import FM
from .kgat import KGAT
from .kgcl import KGCL
from .kgin import KGIN
from .ripplenet import RippleNet
from .sgl import SGL
from .tgcn import TGCN

__all__ = [
    "CFA",
    "CKE",
    "DGCF",
    "DSPR",
    "FM",
    "KGAT",
    "KGCL",
    "KGIN",
    "RippleNet",
    "SGL",
    "TGCN",
]
