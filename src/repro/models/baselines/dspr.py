"""DSPR baseline (Xu et al., 2016): deep-semantic similarity over
tag-based profiles.

DSPR feeds tag-based user and item profiles through MLPs with shared
parameters and maximises the similarity between a user and her relevant
items.  As with CFA, the user profile is built from all tags of the
user's items (the paper points out this entangles intents).
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import TagRecDataset
from ...nn import MLP, Tensor, no_grad
from ...nn import functional as F
from ..base import Recommender


class DSPR(Recommender):
    """Deep-semantic similarity personalised recommendation.

    A single shared tower maps the ``|T|``-dimensional tag profiles of
    users and items into a joint space scored by cosine similarity;
    training uses the negative-sampling ranking loss (here BPR over
    cosine scores, matching the shared protocol).
    """

    def __init__(
        self,
        dataset: TagRecDataset,
        embed_dim: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(dataset.num_users, dataset.num_items, embed_dim, rng)
        user_profiles = (dataset.interaction_matrix() @ dataset.tag_matrix()).toarray()
        item_profiles = dataset.tag_matrix().toarray()
        self._user_profiles = user_profiles / np.maximum(
            user_profiles.sum(axis=1, keepdims=True), 1.0
        )
        self._item_profiles = item_profiles / np.maximum(
            item_profiles.sum(axis=1, keepdims=True), 1.0
        )
        self.tower = MLP(
            dataset.num_tags, [2 * embed_dim, embed_dim], rng, final_activation=False
        )

    def _embed(self, profiles: np.ndarray) -> Tensor:
        return F.l2_normalize(self.tower(Tensor(profiles)))

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self._embed(self._user_profiles[users])
        v = self._embed(self._item_profiles[items])
        return (u * v).sum(axis=1) * 4.0  # temperature for cosine scores

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        with no_grad():
            u = self._embed(self._user_profiles[users]).data
            v = self._embed(self._item_profiles).data
            return u @ v.T
