"""Command-line interface: run one experiment cell from the shell.

Examples::

    python -m repro run --dataset hetrec-del --method L-IMCAT --scale 0.1
    python -m repro stats --scale 0.1
    python -m repro list

The CLI is a thin veneer over :mod:`repro.bench`; every knob maps to a
:class:`~repro.bench.BenchSettings` field.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import obs
from .bench import ABLATIONS, EXTRAS, METHODS, BenchSettings, run_method
from .bench.harness import prepare_split, run_recipe
from .bench.tables import format_table
from .data import DATASET_ORDER, compute_statistics, generate_preset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMCAT reproduction experiment runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="train + evaluate one method")
    run.add_argument("--dataset", required=True, choices=DATASET_ORDER)
    run.add_argument(
        "--method", required=True,
        choices=sorted(set(METHODS) | set(ABLATIONS) | set(EXTRAS)),
    )
    run.add_argument("--scale", type=float, default=0.05)
    run.add_argument("--epochs", type=int, default=40)
    run.add_argument("--embed-dim", type=int, default=32)
    run.add_argument("--batch-size", type=int, default=512)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="snapshot full training state under DIR (repro.ckpt)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="epochs between snapshots (with --checkpoint-dir)",
    )
    run.add_argument(
        "--keep-last", type=int, default=3, metavar="N",
        help="rolling retention: newest snapshots kept (plus the best)",
    )
    run.add_argument(
        "--resume", nargs="?", const="auto", default=None, metavar="FROM",
        help="resume training: bare --resume picks the newest valid "
             "snapshot under --checkpoint-dir; or pass a checkpoint "
             "file/directory",
    )
    run.add_argument(
        "--fused", action="store_true",
        help="run training under the fused autograd kernels "
             "(repro.nn.fusion; bit-identical to the eager tape)",
    )
    run.add_argument(
        "--dp-workers", type=int, default=0, metavar="W",
        help="data-parallel training workers (repro.train.parallel); "
             "0 keeps the serial loop",
    )
    run.add_argument(
        "--dp-backend", default="fork", choices=("fork", "inline"),
        help="data-parallel backend: shared-memory forked workers or "
             "the in-process equivalent",
    )
    run.add_argument(
        "--retrieval", action="store_true",
        help="after training, also evaluate through the cluster-routed "
             "approximate index and print the exact-vs-approximate "
             "comparison (repro.retrieval)",
    )
    run.add_argument(
        "--n-probe", type=int, default=2, metavar="P",
        help="partitions probed per user with --retrieval",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable tracing (repro.obs) and export the span tree to "
             "FILE as JSONL",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export run metrics to FILE (Prometheus text format; "
             ".json/.jsonl extensions switch to a JSONL snapshot)",
    )
    run.add_argument(
        "--profile", nargs="?", const=25, default=None, type=int,
        metavar="N",
        help="attach the sampling profiler and print the top-N hottest "
             "collapsed stacks after the run",
    )

    stats = commands.add_parser("stats", help="print Table I statistics")
    stats.add_argument("--scale", type=float, default=0.05)
    stats.add_argument("--seed", type=int, default=1)

    commands.add_parser("list", help="list datasets and methods")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    if args.trace_out is not None:
        obs.enable_tracing()
    profiler = None
    if args.profile is not None:
        profiler = obs.SamplingProfiler().start()
    settings = BenchSettings(
        scale=args.scale,
        embed_dim=args.embed_dim,
        epochs=args.epochs,
        batch_size=args.batch_size,
        train_seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        keep_last=args.keep_last,
        resume_from=args.resume,
        fused=args.fused,
        dp_workers=args.dp_workers,
        dp_backend=args.dp_backend,
    )
    try:
        if args.retrieval:
            # Keep the split and model around for the approximate pass.
            recipe = (
                METHODS.get(args.method)
                or ABLATIONS.get(args.method)
                or EXTRAS.get(args.method)
            )
            dataset, split = prepare_split(args.dataset, settings)
            cell = run_recipe(
                recipe, dataset, split, args.method, settings,
                keep_model=True,
            )
        else:
            cell = run_method(args.dataset, args.method, settings)
    finally:
        if profiler is not None:
            profiler.stop()
    print(
        format_table(
            ["dataset", "method", "R@20 (%)", "N@20 (%)", "time (s)", "epochs"],
            [[cell.dataset, cell.method, 100 * cell.recall,
              100 * cell.ndcg, cell.wall_time, cell.epochs_run]],
        )
    )
    if args.retrieval:
        from .eval import Evaluator
        from .retrieval import ApproximateScorer, build_index

        model = cell.trained.model
        index = build_index(
            model,
            popularity=split.train.item_degrees(),
            seed=args.seed,
        )
        scorer = ApproximateScorer(model, index, n_probe=args.n_probe)
        evaluator = Evaluator(
            split.train, split.test,
            top_n=(settings.top_n,), metrics=("recall", "ndcg"),
        )
        approx = evaluator.evaluate(scorer)
        n = settings.top_n
        scored = scorer.scored_items / max(scorer.queries, 1)
        print(
            format_table(
                ["mode", f"R@{n} (%)", f"N@{n} (%)", "scored/query"],
                [
                    ["exact", 100 * cell.recall, 100 * cell.ndcg,
                     dataset.num_items],
                    [f"approx (n_probe={args.n_probe})",
                     100 * approx[f"recall@{n}"],
                     100 * approx[f"ndcg@{n}"], scored],
                ],
                title=(
                    f"retrieval: {index.num_partitions} partitions "
                    f"({index.strategy}), "
                    f"{dataset.num_items / max(scored, 1e-9):.1f}x fewer "
                    f"scored items"
                ),
            )
        )
    if profiler is not None:
        print(profiler.format_top(args.profile))
    if args.trace_out is not None:
        obs.get_tracer().export_jsonl(args.trace_out)
        print(f"trace: {args.trace_out}")
    if args.metrics_out is not None:
        registry = obs.get_metrics()
        if args.metrics_out.endswith((".json", ".jsonl")):
            obs.write_metrics_jsonl(registry, args.metrics_out)
        else:
            obs.write_metrics(registry, args.metrics_out)
        print(f"metrics: {args.metrics_out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_ORDER:
        dataset = generate_preset(name, scale=args.scale, seed=args.seed)
        row = compute_statistics(dataset).as_row()
        rows.append([name] + list(row.values()))
    header = ["dataset", "#User", "#Item", "#Tag", "#UI", "UI dens",
              "UI deg", "#IT", "IT dens", "IT deg"]
    print(format_table(header, rows, title=f"Table I @ scale={args.scale}"))
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("datasets:")
    for name in DATASET_ORDER:
        print(f"  {name}")
    print("methods (Table II):")
    for name in METHODS:
        print(f"  {name}")
    print("ablations (Table III):")
    for name in ABLATIONS:
        print(f"  {name}")
    print("extras:")
    for name in EXTRAS:
        print(f"  {name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"run": cmd_run, "stats": cmd_stats, "list": cmd_list}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
