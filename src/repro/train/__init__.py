"""Training-at-speed subsystem: shared-memory data-parallel execution.

:mod:`repro.train.parallel` provides the backend-agnostic engine both
trainers (:func:`repro.models.training.fit_bpr` and
:class:`repro.core.trainer.IMCATTrainer`) route their epoch loops
through when ``dp_workers > 0``.  See that module's docstring for the
determinism contract (worker replicas, shard scaling, worker-0
handback).
"""

from . import parallel
from .parallel import (
    DataParallelEngine,
    DataParallelTask,
    EpochResult,
    GradBoard,
    ParamArena,
    shard_bounds,
)

__all__ = [
    "DataParallelEngine",
    "DataParallelTask",
    "EpochResult",
    "GradBoard",
    "ParamArena",
    "parallel",
    "shard_bounds",
]
