"""Shared-memory data-parallel training.

The engine splits each triplet batch across ``W`` workers, has every
worker compute gradients for its contiguous shard, and applies a single
optimizer step in the parent.  Two backends share one code path:

- ``fork``: workers are forked processes.  Parameters live in a
  :class:`ParamArena` (one ``multiprocessing.shared_memory`` block the
  parameter tensors are re-bound into before the first fork), so the
  parent's in-place Adam update is immediately visible to every worker.
  Per-worker gradients go into disjoint slots of a :class:`GradBoard`
  (lock-free by layout); two barriers per step order the exchange
  (grads ready -> parent reduces and applies -> workers resume).
- ``inline``: the same task protocol executed sequentially in-process,
  bit-identical to ``fork`` by construction.  Used on platforms without
  ``fork`` and to pin down the fork backend in tests.

Determinism contract: every worker holds a *replica* of the sampling
state (samplers, batch cyclers, the trainer RNG) and replays the full
serial epoch — sampling identical full batches, then computing the loss
only on its shard, scaled by ``n_w / B``.  Because each replica consumes
its RNG streams in exactly the serial order, all replicas stay
bit-synchronised without any communication.  At the epoch boundary,
worker 0 hands its sampling/RNG/model-extra state back through a pipe
and the parent adopts it, so checkpoints written by a data-parallel run
are indistinguishable from serial ones.  With ``W = 1`` the shard is the
whole batch and the ``x 1.0`` loss scale is exact, making the run
bit-identical to serial training.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..concurrency import new_lock, require_fork_start_method, shared_state
from ..nn.module import Parameter

#: Byte alignment of every per-parameter region inside a shared block —
#: matches numpy's own allocation alignment so BLAS sees arena-backed
#: arrays exactly like heap-backed ones.
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


def shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` shard bounds splitting ``n`` rows.

    The first ``n % workers`` shards get one extra row; with a single
    worker the shard is the whole range.  Shards may be empty when
    ``n < workers``.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    base, rem = divmod(n, workers)
    bounds = []
    lo = 0
    for rank in range(workers):
        hi = lo + base + (1 if rank < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ParamArena:
    """Re-binds parameter storage into one shared-memory block.

    Constructed in the parent *before* the first fork: every worker then
    inherits the mapping, so the parent's in-place optimizer update
    (``param.data -= ...``) is the broadcast.  :meth:`detach` restores
    private heap arrays and unlinks the block; call it exactly once,
    from the creating process, when training finishes.
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        offsets = []
        cursor = 0
        for param in self.parameters:
            offsets.append(cursor)
            cursor += _aligned(param.data.nbytes)
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        )
        self._views: Optional[List[np.ndarray]] = []
        for param, offset in zip(self.parameters, offsets):
            view = np.ndarray(
                param.data.shape,
                dtype=param.data.dtype,
                buffer=self._shm.buf,
                offset=offset,
            )
            view[...] = param.data
            param.data = view
            self._views.append(view)

    def detach(self) -> None:
        """Copy parameters back to private arrays and free the block."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        for param in self.parameters:
            param.data = param.data.copy()
        self._views = None
        shm.close()
        shm.unlink()


@shared_state(guard="_lock", exempt=("_shm", "_losses", "_has_loss"))
class GradBoard:
    """Per-worker gradient slots plus a loss board, reduced in the parent.

    Layout (one block, shared-memory or private depending on backend):
    ``W`` disjoint per-rank gradient regions, a ``(W, P)`` presence-flag
    matrix (a parameter whose grad was ``None`` stays ``None`` after the
    reduce, preserving the optimizer's skip semantics), ``W`` loss
    scalars, and ``W`` loss-presence bytes (empty shards publish
    nothing).  Writers touch only their own rank's region, so publishing
    is lock-free; the ``_lock`` guards the board's own bookkeeping, which
    is the only cross-context attribute state.
    """

    def __init__(
        self, parameters: Sequence[Parameter], workers: int, shared: bool
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        self.workers = workers
        num_params = len(self.parameters)
        offsets = []
        cursor = 0
        for param in self.parameters:
            offsets.append(cursor)
            cursor += _aligned(param.data.nbytes)
        rank_stride = cursor
        flags_off = rank_stride * workers
        losses_off = _aligned(flags_off + workers * num_params)
        total = losses_off + workers * 8 + workers
        self._shm: Optional[shared_memory.SharedMemory] = None
        if shared:
            self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
            buf: Any = self._shm.buf
        else:
            self._backing = np.zeros(max(total, 1), dtype=np.uint8)
            buf = self._backing.data
        self._grads: Optional[List[List[np.ndarray]]] = [
            [
                np.ndarray(
                    param.data.shape,
                    dtype=param.data.dtype,
                    buffer=buf,
                    offset=rank * rank_stride + offset,
                )
                for param, offset in zip(self.parameters, offsets)
            ]
            for rank in range(workers)
        ]
        self._flags = np.ndarray(
            (workers, num_params), dtype=np.uint8, buffer=buf, offset=flags_off
        )
        self._flags[...] = 0
        self._losses = np.ndarray(
            (workers,), dtype=np.float64, buffer=buf, offset=losses_off
        )
        self._has_loss = np.ndarray(
            (workers,), dtype=np.uint8, buffer=buf, offset=losses_off + workers * 8
        )
        self._has_loss[...] = 0
        self._lock = new_lock("train.GradBoard")
        self._rounds = 0

    @property
    def rounds(self) -> int:
        """Number of reduces performed on this board."""
        return self._rounds

    def publish(self, rank: int, loss: Optional[float]) -> None:
        """Copy this rank's gradients and loss into its slot.

        ``loss is None`` marks an empty shard: the rank contributes
        nothing this step (its flags are cleared so stale gradients from
        a previous step can never leak into the reduce).
        """
        grads = self._grads
        if grads is None:
            raise RuntimeError("gradient board is closed")
        flags = self._flags[rank]
        if loss is None:
            flags[:] = 0
            self._has_loss[rank] = 0
            return
        for i, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                flags[i] = 0
            else:
                flags[i] = 1
                np.copyto(grads[rank][i], grad)
        self._losses[rank] = loss
        self._has_loss[rank] = 1

    def reduce_into(self) -> float:
        """Sum slots into ``param.grad`` in rank order; return the loss sum.

        Parameters no rank published stay ``grad = None``.  With one
        worker the reduce is a plain copy, so the applied gradients are
        bit-identical to the serial step.
        """
        grads = self._grads
        if grads is None:
            raise RuntimeError("gradient board is closed")
        with self._lock:
            self._rounds += 1
        total = 0.0
        for rank in range(self.workers):
            if self._has_loss[rank]:
                total += float(self._losses[rank])
        for i, param in enumerate(self.parameters):
            acc: Optional[np.ndarray] = None
            for rank in range(self.workers):
                if self._flags[rank, i]:
                    slot = grads[rank][i]
                    if acc is None:
                        acc = slot.copy()
                    else:
                        acc += slot
            param.grad = acc
        return total

    def close(self) -> None:
        """Release views and (for the fork backend) unlink the block."""
        with self._lock:
            self._grads = None
            self._flags = None  # type: ignore[assignment]
            self._losses = None  # type: ignore[assignment]
            self._has_loss = None  # type: ignore[assignment]
            shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            shm.unlink()


@dataclass
class EpochResult:
    """Per-step loss totals (serial association order) for one epoch."""

    losses: List[float] = field(default_factory=list)
    steps: int = 0


class DataParallelEngine:
    """Runs epochs of a :class:`DataParallelTask` across workers.

    The task supplies the domain logic (sampling, loss, optimizer,
    post-step hooks); the engine supplies process/shard orchestration.
    Construct once per fit (the fork backend re-binds parameters into
    shared memory immediately) and :meth:`close` in a ``finally``.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        workers: int,
        backend: str = "fork",
        tracer: Any = None,
        metrics: Any = None,
        barrier_timeout: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"dp_workers must be positive, got {workers}")
        if backend not in ("fork", "inline"):
            raise ValueError(
                f"dp_backend must be 'fork' or 'inline', got {backend!r}"
            )
        self.parameters = list(parameters)
        self.workers = workers
        self.backend = backend
        self.tracer = tracer
        self.metrics = metrics
        self.barrier_timeout = barrier_timeout
        self._arena: Optional[ParamArena] = None
        self._ctx = None
        if backend == "fork":
            require_fork_start_method("data-parallel training (dp_backend='fork')")
            self._ctx = multiprocessing.get_context("fork")
            self._arena = ParamArena(self.parameters)
        self._board: Optional[GradBoard] = GradBoard(
            self.parameters, workers, shared=(backend == "fork")
        )

    def close(self) -> None:
        """Unbind the arena and free the gradient board."""
        if self._arena is not None:
            self._arena.detach()
            self._arena = None
        if self._board is not None:
            self._board.close()
            self._board = None

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @contextmanager
    def _span(self, name: str, **attrs: Any):
        if self.tracer is None:
            yield None
        else:
            with self.tracer.span(name, **attrs) as span:
                yield span

    def run_epoch(self, task: Any) -> EpochResult:
        """Run one epoch of ``task``; returns per-step loss totals."""
        board = self._board
        if board is None:
            raise RuntimeError("engine is closed")
        steps = task.steps_per_epoch()
        if steps <= 0:
            return EpochResult()
        if self.backend == "inline":
            result = self._run_inline(task, steps)
        else:
            result = self._run_fork(task, steps)
        if self.metrics is not None:
            self.metrics.counter("dp.steps").inc(result.steps)
            self.metrics.counter("dp.epochs").inc()
        return result

    # ------------------------------------------------------------------
    # inline backend
    # ------------------------------------------------------------------
    def _run_inline(self, task: Any, steps: int) -> EpochResult:
        board = self._board
        assert board is not None
        losses: List[float] = []
        task.begin_epoch()
        with self._span("dp:steps", steps=steps, backend="inline", workers=self.workers):
            for step_index in range(steps):
                task.next_step()
                # Each rank must see the same RNG draws a forked replica
                # would: snapshot before the first rank, restore before
                # every later one.  Net effect: the stream advances by
                # exactly one step's worth of draws, as in serial.
                saved = task.save_draw_state()
                for rank in range(self.workers):
                    if rank:
                        task.restore_draw_state(saved)
                    board.publish(rank, task.compute(rank, self.workers))
                total = board.reduce_into()
                task.apply_step()
                losses.append(total)
                task.on_parent_step(step_index, total)
                task.after_apply()
        return EpochResult(losses, steps)

    # ------------------------------------------------------------------
    # fork backend
    # ------------------------------------------------------------------
    def _run_fork(self, task: Any, steps: int) -> EpochResult:
        board = self._board
        ctx = self._ctx
        assert board is not None and ctx is not None
        grads_ready = ctx.Barrier(self.workers + 1)
        apply_done = ctx.Barrier(self.workers + 1)
        recv_end, send_end = ctx.Pipe(duplex=False)
        procs: List[Any] = []
        losses: List[float] = []
        try:
            with self._span("dp:fork", workers=self.workers, backend="fork"):
                for rank in range(self.workers):
                    proc = ctx.Process(
                        target=self._worker_main,
                        args=(task, rank, steps, grads_ready, apply_done, send_end),
                        daemon=True,
                        name=f"dp-worker-{rank}",
                    )
                    proc.start()
                    procs.append(proc)
                send_end.close()
            with self._span("dp:steps", steps=steps, backend="fork", workers=self.workers):
                for step_index in range(steps):
                    self._await(grads_ready, procs, "gradient exchange")
                    total = board.reduce_into()
                    task.apply_step()
                    self._await(apply_done, procs, "parameter apply")
                    losses.append(total)
                    task.on_parent_step(step_index, total)
            with self._span("dp:adopt", backend="fork"):
                if not recv_end.poll(self.barrier_timeout):
                    self._fail(procs, "epoch handback")
                task.adopt(recv_end.recv())
        finally:
            for proc in procs:
                proc.join(timeout=30)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            recv_end.close()
        return EpochResult(losses, steps)

    def _worker_main(
        self,
        task: Any,
        rank: int,
        steps: int,
        grads_ready: Any,
        apply_done: Any,
        send_end: Any,
    ) -> None:
        board = self._board
        assert board is not None
        try:
            task.begin_epoch()
            for _ in range(steps):
                task.next_step()
                board.publish(rank, task.compute(rank, self.workers))
                grads_ready.wait(self.barrier_timeout)
                apply_done.wait(self.barrier_timeout)
                task.after_apply()
            if rank == 0:
                send_end.send(task.handback())
        except BaseException:
            traceback.print_exc()
            sys.stderr.flush()
            grads_ready.abort()
            apply_done.abort()
            os._exit(70)
        # Skip atexit/teardown inherited from the parent (observability
        # exporters, resource trackers): the worker owns none of it.
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(0)

    def _await(self, barrier: Any, procs: List[Any], phase: str) -> None:
        try:
            barrier.wait(self.barrier_timeout)
        except threading.BrokenBarrierError:
            self._fail(procs, phase)

    def _fail(self, procs: List[Any], phase: str) -> None:
        # A worker that aborted the barrier may still be mid-exit; give
        # each a short grace so a crash is reported as a crash (name +
        # exit code) rather than racing into the timeout diagnosis.
        for proc in procs:
            proc.join(timeout=5)
        dead = [
            (proc.name, proc.exitcode)
            for proc in procs
            if not proc.is_alive()
        ]
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise RuntimeError(
            f"data-parallel workers failed during {phase}: "
            + (f"exited {dead}" if dead else "barrier timed out with all workers alive")
        )


class DataParallelTask:
    """Protocol the engine drives; trainers subclass per loop shape.

    Worker-side (forked replica or inline, in serial order):
    ``begin_epoch`` -> per step: ``next_step`` (sample full batches),
    ``compute(rank, workers)`` (loss on shard scaled by ``n_w / B``,
    gradients left on the parameters; ``None`` for an empty shard),
    barrier, barrier, ``after_apply`` (post-optimizer hooks such as
    cluster refresh) -> worker 0 returns ``handback()``.

    Parent-side: ``apply_step`` between the barriers (clip + optimizer
    step on the reduced gradients), ``on_parent_step`` after each step
    (fault-injection hooks, counters), ``adopt(handback)`` at the epoch
    boundary.  ``save_draw_state``/``restore_draw_state`` snapshot the
    RNG streams ``compute`` draws from, for the inline backend.
    """

    def steps_per_epoch(self) -> int:
        raise NotImplementedError

    def begin_epoch(self) -> None:
        raise NotImplementedError

    def next_step(self) -> None:
        raise NotImplementedError

    def compute(self, rank: int, workers: int) -> Optional[float]:
        raise NotImplementedError

    def apply_step(self) -> None:
        raise NotImplementedError

    def after_apply(self) -> None:
        """Post-optimizer hook run in every worker replica; default no-op."""

    def on_parent_step(self, step_index: int, loss: float) -> None:
        """Parent-side per-step hook; default no-op."""

    def save_draw_state(self) -> Any:
        """Snapshot the RNG state ``compute`` consumes; default none."""
        return None

    def restore_draw_state(self, state: Any) -> None:
        """Restore a :meth:`save_draw_state` snapshot; default no-op."""

    def handback(self) -> Dict[str, Any]:
        """Worker-0 state returned to the parent at the epoch boundary."""
        return {}

    def adopt(self, handback: Dict[str, Any]) -> None:
        """Parent-side: absorb worker 0's epoch-end state; default no-op."""


__all__ = [
    "DataParallelEngine",
    "DataParallelTask",
    "EpochResult",
    "GradBoard",
    "ParamArena",
    "shard_bounds",
]
