"""Concurrency annotations and the project-wide lock factory.

This module is the shared vocabulary between the static concurrency
pass (:mod:`repro.analysis.concurrency`, rules LNT006–LNT010) and the
dynamic lockset sanitizer (:mod:`repro.testing.lockset`):

- :func:`shared_state` marks a class as touched by multiple threads.
  The static pass then requires every attribute mutation outside
  ``__init__`` to happen while the class's guard lock is held, and the
  sanitizer instruments the class's ``__setattr__`` when armed.
- :func:`guarded_by` declares "callers invoke this with the named lock
  already held" on internal ``_locked``-style helpers, so both halves
  treat the body as protected instead of flagging it.
- :func:`new_lock` / :func:`new_rlock` are the lock constructors every
  annotated class uses.  They return plain :mod:`threading` primitives
  in production; while the sanitizer is armed they return instrumented
  ``SanitizedLock`` objects so lockset intersection and the lock-order
  watchdog see every acquisition.

Everything here is dependency-free and costs nothing at runtime unless
the sanitizer arms itself: decorators only attach metadata, and the
factory indirection is a single module-global check per lock
*construction* (never per acquisition).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class ConcurrencyAnnotation:
    """Metadata :func:`shared_state` attaches to a class."""

    guard: Optional[str] = None
    exempt: Tuple[str, ...] = ()


#: Classes registered via :func:`shared_state`, for the sanitizer to
#: instrument at arm time.  Keyed by the class object itself.
SHARED_CLASSES: Dict[type, ConcurrencyAnnotation] = {}

#: Hook the sanitizer installs; ``None`` means plain threading locks.
_lock_factory: Optional[Callable[[str, bool], Any]] = None


def shared_state(cls: Optional[type] = None, *, guard: Optional[str] = None,
                 exempt: Tuple[str, ...] = ()):
    """Mark a class as mutated from multiple threads.

    Args:
        guard: attribute name of the lock protecting the class's state
            (default: the single lock-named attribute assigned in
            ``__init__``, as discovered by the static pass).
        exempt: attribute names excluded from lock-discipline checking —
            per-thread state (``threading.local`` holders) and
            self-synchronizing primitives (``threading.Event``).

    Usable bare (``@shared_state``) or configured
    (``@shared_state(guard="_lock", exempt=("_local",))``).
    """

    def mark(klass: type) -> type:
        annotation = ConcurrencyAnnotation(guard=guard, exempt=tuple(exempt))
        SHARED_CLASSES[klass] = annotation
        klass.__concurrency__ = annotation
        return klass

    if cls is not None:
        return mark(cls)
    return mark


def guarded_by(lock_attr: str):
    """Declare that callers hold ``self.<lock_attr>`` around this call.

    Decorate internal helpers that are only reached from inside a
    ``with self._lock:`` block; the static pass treats their bodies as
    already protected and the deadlock watchdog inherits the claim.
    """

    def mark(func):
        func.__guarded_by__ = lock_attr
        return func

    return mark


def new_lock(name: str = "lock") -> Any:
    """A mutex for one annotated class instance.

    Plain ``threading.Lock`` in production; a ``SanitizedLock`` while
    :mod:`repro.testing.lockset` is armed.  ``name`` labels the lock in
    sanitizer reports (conventionally ``"subsystem.ClassName"``).
    """
    factory = _lock_factory
    if factory is not None:
        return factory(name, False)
    return threading.Lock()


def new_rlock(name: str = "rlock") -> Any:
    """Reentrant variant of :func:`new_lock` (same instrumentation)."""
    factory = _lock_factory
    if factory is not None:
        return factory(name, True)
    return threading.RLock()


def require_fork_start_method(feature: str) -> None:
    """Fail fast when the platform cannot ``fork``.

    The serving process pool and the data-parallel trainer rely on
    copy-on-write ``fork`` semantics: workers inherit live numpy
    arrays, samplers, and shared-memory bindings without pickling.
    Under ``spawn`` (the only method on some platforms) a child
    re-imports the world instead, so none of that state would exist
    and the worker would train a different model than the parent
    thinks it launched.

    Args:
        feature: human-readable name of the subsystem asking, used in
            the error message.

    Raises:
        RuntimeError: when ``fork`` is not among the platform's
            available multiprocessing start methods.
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if "fork" not in available:
        raise RuntimeError(
            f"{feature} requires the 'fork' multiprocessing start method, "
            f"but this platform only offers {available}; run with the "
            "'inline' backend (or on a fork-capable OS) instead"
        )


def set_lock_factory(
    factory: Optional[Callable[[str, bool], Any]]
) -> Optional[Callable[[str, bool], Any]]:
    """Install (or clear, with ``None``) the lock factory hook.

    Returns the previous factory so callers can restore it.  Only the
    sanitizer should need this.
    """
    global _lock_factory
    previous, _lock_factory = _lock_factory, factory
    return previous


__all__ = [
    "ConcurrencyAnnotation",
    "SHARED_CLASSES",
    "guarded_by",
    "new_lock",
    "new_rlock",
    "require_fork_start_method",
    "set_lock_factory",
    "shared_state",
]
