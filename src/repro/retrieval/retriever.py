"""Query-time retrieval: shortlist, exact-score, rank, degrade safely.

Three layers over one index:

- :class:`Retriever` — model + index bound together for one-user
  ``recommend`` calls: probe the centroids, exact-score only the
  shortlist, escalate to full scoring when the shortlist cannot fill
  the request (``top_n`` larger than the candidate pool);
- :class:`ApproximateScorer` — an ``all_scores``-compatible adapter the
  :class:`repro.eval.Evaluator` ranks through unchanged: off-shortlist
  entries are ``-inf`` and shortlist entries carry the model's own
  pairwise scores, so ``n_probe = num_partitions`` reproduces exact
  evaluation bit-for-bit;
- :class:`RetrievalTier` — the serving-side lifecycle wrapper behind
  :class:`repro.serve.RecommendationService`: version-tracked index
  reuse/rebuild across hot reloads, and *every* failure mode (stale
  index, build error, thin shortlist) returns ``None`` so the service
  falls back to exact scoring instead of erroring.

Everything reports through :mod:`repro.obs`: ``retrieval:*`` trace
spans plus shortlist-size/probe-count histograms and routing counters.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Set

import numpy as np

from .. import obs
from ..concurrency import new_rlock, shared_state
from ..nn import no_grad
from .index import (
    ClusterIndex,
    ExactIndex,
    IndexMismatch,
    build_index,
    model_fingerprint,
    user_vectors,
)


def _shortlist_scores(model, user: int, items: np.ndarray) -> np.ndarray:
    """The model's own scores restricted to ``items`` (no gradients)."""
    users = np.full(len(items), int(user), dtype=np.int64)
    with no_grad():
        return np.asarray(model.pair_scores(users, items).data, dtype=np.float64)


class Retriever:
    """Sub-linear ``recommend`` over one model/index pair.

    Args:
        model: the scoring model the index was built from.
        index: a :class:`ClusterIndex` or :class:`ExactIndex`.
        n_probe: partitions probed per query.
        validate: verify the index fingerprint against the model up
            front (one hash of the item table) and raise
            :class:`IndexMismatch` on a stale pairing.
        tracer: optional :class:`repro.obs.Tracer` (process-global
            fallback).
    """

    def __init__(
        self,
        model: Any,
        index: Any,
        n_probe: int = 2,
        validate: bool = True,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        if n_probe < 1:
            raise ValueError(f"n_probe must be >= 1, got {n_probe}")
        if validate and index.fingerprint:
            live = model_fingerprint(model)
            if live != index.fingerprint:
                raise IndexMismatch(
                    f"index fingerprint {index.fingerprint[:12]}… does not "
                    f"match the live model ({live[:12]}…); rebuild the index"
                )
        self.model = model
        self.index = index
        self.n_probe = n_probe
        self.tracer = obs.resolve_tracer(tracer)
        #: Items exact-scored by the last ``recommend`` call (the cost
        #: the whole subsystem exists to shrink).
        self.last_scored = 0

    def shortlist(self, user: int) -> np.ndarray:
        """Candidate item ids for ``user`` (probed ∪ popularity head)."""
        vector = user_vectors(self.model, np.array([int(user)]))[0]
        return self.index.candidates(vector, self.n_probe)

    def recommend(
        self,
        user: int,
        top_n: int = 20,
        exclude: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Top-``top_n`` items for ``user`` from the probed shortlist.

        When exclusions leave fewer than ``top_n`` candidates and the
        shortlist does not already cover the catalogue, the query
        escalates to exact scoring (counted, never silent) — a request
        must not shrink because routing was narrow.
        """
        excluded: Set[int] = set(int(i) for i in exclude) if exclude else set()
        metrics = obs.get_metrics()
        with self.tracer.span(
            "retrieval:request", user=int(user), n_probe=self.n_probe
        ) as span:
            metrics.add("retrieval.requests")
            with self.tracer.span("retrieval:probe"):
                candidates = self.shortlist(user)
            metrics.histogram("retrieval.shortlist_items").observe(
                float(len(candidates))
            )
            metrics.histogram("retrieval.probes").observe(float(self.n_probe))
            drop = (
                np.isin(candidates, np.fromiter(excluded, dtype=np.int64))
                if excluded
                else np.zeros(len(candidates), dtype=bool)
            )
            usable = int(len(candidates) - drop.sum())
            if usable < top_n and len(candidates) < self.index.num_items:
                metrics.add("retrieval.escalations")
                span.set_attributes(escalated=True)
                self.last_scored = self.index.num_items
                return self.model.recommend(
                    user, top_n=top_n, exclude=excluded
                )
            with self.tracer.span(
                "retrieval:score", candidates=len(candidates)
            ):
                scores = _shortlist_scores(self.model, user, candidates)
            self.last_scored = len(candidates)
            metrics.histogram("retrieval.scored_items").observe(
                float(len(candidates))
            )
            scores = np.where(drop, -np.inf, scores)
            order = np.argsort(scores)[::-1][:top_n]
            ranked = candidates[order]
            keep = np.isfinite(scores[order])
            span.set_attributes(
                shortlist=len(candidates), returned=int(keep.sum())
            )
            return ranked[keep]


class ApproximateScorer:
    """``all_scores`` adapter ranking only the probed shortlist.

    Drop-in for any consumer of the evaluator contract: returns a
    ``(B, |V|)`` matrix that is ``-inf`` everywhere except shortlisted
    columns, which carry the model's own pairwise scores.  Downstream
    masking/argpartition machinery is reused unchanged, while the
    O(|V| · d) scoring work shrinks to O(shortlist · d) per user.

    Attributes:
        scored_items: total shortlist entries scored so far.
        queries: users answered so far (``scored_items / queries`` is
            the per-query scored-catalogue fraction the bench reports).
    """

    def __init__(
        self,
        model: Any,
        index: Any,
        n_probe: int = 2,
        validate: bool = True,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        if validate and index.fingerprint:
            live = model_fingerprint(model)
            if live != index.fingerprint:
                raise IndexMismatch(
                    "approximate scorer given a stale index "
                    f"({index.fingerprint[:12]}… vs live {live[:12]}…)"
                )
        self.model = model
        self.index = index
        self.n_probe = max(int(n_probe), 1)
        self.tracer = obs.resolve_tracer(tracer)
        self.scored_items = 0
        self.queries = 0
        self.num_items = index.num_items

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        metrics = obs.get_metrics()
        with self.tracer.span(
            "retrieval:batch", users=len(users), n_probe=self.n_probe
        ):
            vectors = user_vectors(self.model, users)
            with self.tracer.span("retrieval:probe"):
                shortlists = self.index.candidate_lists(vectors, self.n_probe)
            lengths = np.fromiter(
                (len(s) for s in shortlists), dtype=np.int64, count=len(users)
            )
            flat_items = (
                np.concatenate(shortlists)
                if lengths.sum()
                else np.empty(0, dtype=np.int64)
            )
            flat_users = np.repeat(users, lengths)
            with self.tracer.span(
                "retrieval:score", candidates=int(lengths.sum())
            ), no_grad():
                flat_scores = np.asarray(
                    self.model.pair_scores(flat_users, flat_items).data,
                    dtype=np.float64,
                )
            scores = np.full((len(users), self.num_items), -np.inf)
            rows = np.repeat(np.arange(len(users), dtype=np.int64), lengths)
            scores[rows, flat_items] = flat_scores
            self.scored_items += int(lengths.sum())
            self.queries += len(users)
            for length in lengths:
                metrics.histogram("retrieval.shortlist_items").observe(
                    float(length)
                )
        return scores


@shared_state(guard="_lock")
class RetrievalTier:
    """Serving-side index lifecycle: reuse, rebuild, degrade — never raise.

    Thread safety: the cached ``(index, version)`` pair changes hands
    under a reentrant mutex, so a hot reload observed by one request
    thread cannot race another into serving a new model through the old
    model's routing (the check-then-act in :meth:`index_for` is exactly
    the LNT009 shape when unguarded).  Holding the lock across a
    rebuild also means concurrent requests share one build instead of
    racing duplicate ones.

    Args:
        n_probe: partitions probed per request.
        num_partitions / strategy / popular_head / seed: forwarded to
            :func:`build_index` when the tier (re)builds.
        index: optional prebuilt index (pinned to the provider version
            observed at first use).
        auto_build: build an index from the live model when none is
            available or the model version moved; with ``False`` a
            stale/missing index just reports ``None`` (exact fallback).
        popularity: per-item counts for the popularity head of built
            indexes.
        counters: a :class:`repro.perf.CounterRegistry`-shaped sink for
            routing outcomes (the service injects its own, so tier
            counters land in ``health()``).
    """

    def __init__(
        self,
        n_probe: int = 2,
        num_partitions: int = 16,
        strategy: str = "auto",
        popular_head: int = 50,
        seed: int = 0,
        index: Optional[Any] = None,
        auto_build: bool = True,
        popularity: Optional[np.ndarray] = None,
        counters: Optional[Any] = None,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        if n_probe < 1:
            raise ValueError(f"n_probe must be >= 1, got {n_probe}")
        self.n_probe = n_probe
        self.num_partitions = num_partitions
        self.strategy = strategy
        self.popular_head = popular_head
        self.seed = seed
        self.auto_build = auto_build
        self.popularity = popularity
        self.counters = counters
        self.tracer = obs.resolve_tracer(tracer)
        self._lock = new_rlock("retrieval.RetrievalTier")
        self._index = index
        self._version: Optional[str] = None

    def _count(self, name: str) -> None:
        if self.counters is not None:
            self.counters.add(name)
        obs.get_metrics().add(name)

    def index_for(self, provider: Any, model: Any) -> Optional[Any]:
        """The index to serve with, or ``None`` (→ exact fallback).

        Preference order: an index the provider swaps atomically with
        the model (:class:`CheckpointModelProvider` with retrieval
        enabled) → the tier's cached index while the provider version
        is unchanged → a fresh build (when ``auto_build``).
        """
        provided = getattr(provider, "index", None)
        if callable(provided):
            index = provided()
            if index is not None:
                return index
        version = provider.version()
        with self._lock:
            if self._index is not None:
                if self._version is None:
                    # Pin a prebuilt index to the version it first serves.
                    self._version = version
                if self._version == version:
                    return self._index
                self._count("serve.retrieval.stale")
                self._index = None
            if not self.auto_build:
                return None
            with self.tracer.span("retrieval:build", version=version):
                self._index = build_index(
                    model,
                    num_partitions=self.num_partitions,
                    strategy=self.strategy,
                    popularity=self.popularity,
                    popular_head=self.popular_head,
                    seed=self.seed,
                )
            self._version = version
            self._count("serve.retrieval.builds")
            return self._index

    def recommend(
        self,
        provider: Any,
        user: int,
        top_n: int,
        exclude: Optional[Set[int]] = None,
    ) -> Optional[np.ndarray]:
        """Answer through the index, or ``None`` to fall back to exact.

        Absorbs every retrieval-layer failure (stale index, build
        error, mismatched fingerprint) into a counted fallback; model
        scoring errors still propagate so the service's retry/breaker
        semantics see them unchanged.
        """
        try:
            model = provider.model()
            index = self.index_for(provider, model)
            if index is None:
                self._count("serve.retrieval.fallback")
                return None
            retriever = Retriever(
                model,
                index,
                n_probe=self.n_probe,
                validate=False,  # version tracking covers staleness
                tracer=self.tracer,
            )
            items = retriever.recommend(user, top_n=top_n, exclude=exclude)
        except IndexMismatch:
            self._count("serve.retrieval.stale")
            with self._lock:
                self._index = None
            return None
        except Exception:
            self._count("serve.retrieval.errors")
            return None
        if items.size == 0 and top_n > 0:
            # An empty approximate answer is worse than exact cost.
            self._count("serve.retrieval.fallback")
            return None
        self._count("serve.retrieval.served")
        return items
