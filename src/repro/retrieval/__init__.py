"""Cluster-routed approximate retrieval (sub-linear candidate generation).

The catalogue is partitioned once at index-build time — by IMCAT's
learned tag-cluster/intent structure when available, by K-means over the
item representations otherwise — and queries route through partition
centroids: score ``K`` centroids instead of ``|V|`` items, probe the top
``n_probe`` partitions, exact-score only that shortlist (∪ a small
global-popularity head).  :class:`ExactIndex` is the always-correct
brute-force baseline; ``n_probe = num_partitions`` on a
:class:`ClusterIndex` reproduces it exactly.

Entry points:

- :func:`build_index` / :func:`save_index` / :func:`load_index` — build
  from a trained model and round-trip through a :mod:`repro.ckpt`
  directory;
- :class:`Retriever` — sub-linear ``recommend`` for one model/index
  pair;
- :class:`ApproximateScorer` — the ``all_scores`` adapter behind
  ``Evaluator.evaluate(..., approximate=True)``;
- :class:`RetrievalTier` — the serving-side lifecycle wrapper used by
  :class:`repro.serve.RecommendationService` (never raises; falls back
  to exact scoring).

``python -m repro.retrieval smoke`` runs a tiny build→probe→recall
assertion suite (the ``make retrieval-smoke`` gate);
:func:`run_retrieval_suite` produces the recall-vs-speedup curve stored
in ``benchmarks/BENCH_retrieval.json``.
"""

from .benchmark import (
    format_retrieval_table,
    ranking_overlap,
    run_retrieval_suite,
    save_retrieval_results,
)
from .index import (
    INDEX_FORMAT_VERSION,
    STRATEGIES,
    ClusterIndex,
    ExactIndex,
    IndexMismatch,
    build_index,
    item_vectors,
    model_fingerprint,
    user_vectors,
)
from .retriever import ApproximateScorer, Retriever, RetrievalTier
from .store import index_path, load_index, prune_indexes, save_index

__all__ = [
    "INDEX_FORMAT_VERSION",
    "STRATEGIES",
    "ApproximateScorer",
    "ClusterIndex",
    "ExactIndex",
    "IndexMismatch",
    "RetrievalTier",
    "Retriever",
    "build_index",
    "format_retrieval_table",
    "index_path",
    "item_vectors",
    "load_index",
    "model_fingerprint",
    "prune_indexes",
    "ranking_overlap",
    "run_retrieval_suite",
    "save_index",
    "save_retrieval_results",
    "user_vectors",
]
