"""``python -m repro.retrieval`` — smoke-test or benchmark the index.

``smoke`` (the ``make retrieval-smoke`` contract) builds a small index
and asserts the correctness spine in a few seconds: full-probe routing
reproduces exact evaluation bit-for-bit, shortlist recall is monotone in
``n_probe``, every user (including cold ones) gets a non-empty
shortlist, thin shortlists escalate, and the index round-trips through a
checkpoint directory unchanged.  Exit code 0 means every assertion
held.

``bench`` runs the full recall-vs-speedup sweep
(:func:`repro.retrieval.run_retrieval_suite`) and writes
``BENCH_retrieval.json``; ``benchmarks/bench_retrieval.py`` is a thin
alias for it.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import Optional, Sequence

import numpy as np

from ..data import generate_preset, split_dataset
from ..eval import Evaluator
from ..models import BPRMF
from .benchmark import (
    format_retrieval_table,
    ranking_overlap,
    run_retrieval_suite,
    save_retrieval_results,
)
from .index import build_index
from .retriever import ApproximateScorer, Retriever
from .store import load_index, save_index


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.retrieval",
        description="smoke-test or benchmark cluster-routed retrieval",
    )
    sub = parser.add_subparsers(dest="command")
    smoke = sub.add_parser("smoke", help="tiny build→probe→recall assertions")
    smoke.add_argument("--dataset", default="hetrec-del")
    smoke.add_argument("--scale", type=float, default=0.05)
    smoke.add_argument("--embed-dim", type=int, default=16)
    smoke.add_argument("--partitions", type=int, default=8)
    smoke.add_argument("--seed", type=int, default=7)
    bench = sub.add_parser("bench", help="recall-vs-speedup n_probe sweep")
    bench.add_argument("--dataset", default="hetrec-del")
    bench.add_argument("--scale", type=float, default=0.5)
    bench.add_argument("--epochs", type=int, default=30)
    bench.add_argument("--embed-dim", type=int, default=32)
    bench.add_argument("--partitions", type=int, default=16)
    bench.add_argument("--top-k", type=int, default=50)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--out", default="benchmarks/BENCH_retrieval.json", metavar="FILE"
    )
    return parser


def _check(label: str, ok: bool, detail: str = "") -> bool:
    status = "ok" if ok else "FAIL"
    suffix = f" ({detail})" if detail else ""
    print(f"  {status:4s} {label}{suffix}")
    return ok


def run_smoke(args) -> int:
    dataset = generate_preset(args.dataset, scale=args.scale, seed=1)
    split = split_dataset(dataset, seed=2)
    rng = np.random.default_rng(args.seed)
    model = BPRMF(dataset.num_users, dataset.num_items, args.embed_dim, rng)
    model.eval()
    index = build_index(
        model,
        num_partitions=args.partitions,
        strategy="auto",
        popularity=split.train.item_degrees(),
        popular_head=10,
        seed=args.seed,
    )
    print(
        f"index: {dataset.num_items} items in {index.num_partitions} "
        f"partitions ({index.strategy}), head={index.popular_head.size}"
    )
    ok = True

    evaluator = Evaluator(
        split.train, split.test, top_n=(10,), metrics=("recall", "ndcg")
    )
    exact = evaluator.evaluate(model)
    full = evaluator.evaluate(
        model, approximate=True, index=index, n_probe=index.num_partitions
    )
    agree = all(
        np.isclose(exact[key], full[key], atol=1e-12)
        for key in exact.metrics
    )
    ok &= _check(
        "full probe ≡ exact eval", agree,
        f"exact {exact.summary()} vs full-probe {full.summary()}",
    )

    users = np.arange(dataset.num_users, dtype=np.int64)
    overlaps = []
    for n_probe in range(1, index.num_partitions + 1):
        scorer = ApproximateScorer(model, index, n_probe=n_probe)
        overlaps.append(
            ranking_overlap(model, scorer, users, top_k=10)
        )
    monotone = all(
        later >= earlier - 1e-9
        for earlier, later in zip(overlaps, overlaps[1:])
    )
    ok &= _check(
        "recall monotone in n_probe", monotone and overlaps[-1] >= 1.0 - 1e-9,
        f"overlap@10 sweep {['%.3f' % o for o in overlaps]}",
    )

    retriever = Retriever(model, index, n_probe=1)
    sizes = [retriever.shortlist(int(u)).size for u in users]
    ok &= _check(
        "every user has candidates", min(sizes) > 0,
        f"min shortlist {min(sizes)}, mean {np.mean(sizes):.1f}",
    )

    wide = retriever.recommend(0, top_n=dataset.num_items)
    ok &= _check(
        "thin shortlist escalates to exact",
        wide.size == dataset.num_items,
        f"asked {dataset.num_items}, got {wide.size}",
    )

    with tempfile.TemporaryDirectory() as tmp:
        save_index(index, tmp, step=3)
        loaded = load_index(tmp, expected_fingerprint=index.fingerprint)
        round_trip = loaded is not None and all(
            np.array_equal(
                loaded.candidates(vec, 2), index.candidates(vec, 2)
            )
            for vec in np.eye(args.embed_dim)[:4]
        )
        ok &= _check("ckpt round-trip preserves routing", round_trip)

    if not ok:
        print("\nFAIL: retrieval smoke assertions failed", file=sys.stderr)
        return 1
    print("\nOK: retrieval smoke passed")
    return 0


def run_bench(args) -> int:
    payload = run_retrieval_suite(
        dataset_name=args.dataset,
        scale=args.scale,
        epochs=args.epochs,
        embed_dim=args.embed_dim,
        num_partitions=args.partitions,
        top_k=args.top_k,
        seed=args.seed,
    )
    print(format_retrieval_table(payload))
    best = payload["best_qualifying"]
    if best is None:
        print(
            "note: no sweep point reached recall 0.95; "
            "widest point kept for the curve"
        )
    else:
        print(
            f"best qualifying: n_probe={best['n_probe']} scores "
            f"{best['scored_reduction']:.1f}x fewer items at "
            f"overlap {best['recall_at_k_vs_exact']:.3f}"
        )
    save_retrieval_results(payload, args.out)
    print(f"wrote {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return run_bench(args)
    if args.command in (None, "smoke"):
        if args.command is None:
            args = build_parser().parse_args(["smoke"])
        return run_smoke(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
