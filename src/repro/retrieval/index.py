"""Candidate-generation indexes: exact baseline and cluster routing.

The catalogue is partitioned once at build time — by IMCAT's learned
intent/tag-cluster structure when the model exposes it, by K-means over
the item representations otherwise — and each partition carries the
centroid of its member vectors.  At query time the user vector is
scored against the *centroids* (``K`` dot products instead of ``|V|``),
the top ``n_probe`` partitions are probed, and only their members (plus
a small global-popularity head, so degraded or cold users never see an
empty shortlist) go on to exact scoring.

:class:`ExactIndex` implements the same contract over the full
catalogue and is the always-correct baseline every approximate result
is measured against: ``n_probe = num_partitions`` on a
:class:`ClusterIndex` reproduces it exactly.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from ..core.clustering import kmeans
from ..nn import no_grad

#: Index payload format version (bumped on incompatible layout changes).
INDEX_FORMAT_VERSION = 1

#: Partitioning strategies accepted by :func:`build_index`.
STRATEGIES = ("auto", "intent", "kmeans")


class IndexMismatch(RuntimeError):
    """The index was built from a different model than the one queried."""


def item_vectors(model) -> np.ndarray:
    """Final item representations as a plain ``(|V|, d)`` float array."""
    with no_grad():
        return np.asarray(model.item_repr().data, dtype=np.float64)


def user_vectors(model, users: np.ndarray) -> np.ndarray:
    """Final user representations for ``users`` as ``(B, d)`` floats."""
    with no_grad():
        return np.asarray(
            model.user_repr().data[np.asarray(users)], dtype=np.float64
        )


def model_fingerprint(model) -> str:
    """Identity of the item space an index was built from.

    SHA-256 over the item representation matrix (shape + bytes): any
    retrain, hot reload, or parameter mutation changes it, which is how
    staleness is detected before an index routes a single query.
    """
    vectors = np.ascontiguousarray(item_vectors(model))
    digest = hashlib.sha256()
    digest.update(str(vectors.shape).encode("utf-8"))
    digest.update(vectors.tobytes())
    return digest.hexdigest()


class ExactIndex:
    """Brute-force baseline: every query scores the full catalogue."""

    strategy = "exact"

    def __init__(self, num_items: int, fingerprint: str = "") -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        self.num_items = num_items
        self.fingerprint = fingerprint
        self.num_partitions = 1
        self._all = np.arange(num_items, dtype=np.int64)

    @classmethod
    def build(cls, model) -> "ExactIndex":
        return cls(model.num_items, fingerprint=model_fingerprint(model))

    def candidates(
        self, user_vector: np.ndarray, n_probe: int = 1
    ) -> np.ndarray:
        """The full catalogue, whatever ``n_probe`` says."""
        return self._all

    def candidate_lists(
        self, user_matrix: np.ndarray, n_probe: int = 1
    ) -> List[np.ndarray]:
        return [self._all] * len(user_matrix)

    def state_dict(self) -> dict:
        return {
            "format": INDEX_FORMAT_VERSION,
            "kind": "exact",
            "num_items": self.num_items,
            "fingerprint": self.fingerprint,
        }


class ClusterIndex:
    """Partitioned catalogue with one routing centroid per partition.

    Args:
        item_partitions: ``(|V|,)`` hard partition id per item in
            ``[0, num_partitions)``.
        centroids: ``(K, d)`` routing centroids (rows of empty
            partitions are ignored — their routing score is ``-inf``).
        popular_head: item ids unconditionally unioned into every
            shortlist (global-popularity fallback; may be empty).
        fingerprint: :func:`model_fingerprint` of the source model.
        strategy: how the partitions were derived (bookkeeping only).
    """

    def __init__(
        self,
        item_partitions: np.ndarray,
        centroids: np.ndarray,
        popular_head: Optional[np.ndarray] = None,
        fingerprint: str = "",
        strategy: str = "kmeans",
    ) -> None:
        self.item_partitions = np.asarray(item_partitions, dtype=np.int64)
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.num_items = len(self.item_partitions)
        self.num_partitions = len(self.centroids)
        if self.num_items < 1:
            raise ValueError("index needs at least one item")
        if self.num_partitions < 1:
            raise ValueError("index needs at least one partition")
        if self.item_partitions.min() < 0 or (
            self.item_partitions.max() >= self.num_partitions
        ):
            raise ValueError(
                f"item partition ids must lie in [0, {self.num_partitions})"
            )
        self.popular_head = (
            np.empty(0, dtype=np.int64)
            if popular_head is None
            else np.asarray(popular_head, dtype=np.int64)
        )
        if self.popular_head.size and (
            self.popular_head.min() < 0
            or self.popular_head.max() >= self.num_items
        ):
            raise ValueError("popular_head item ids out of range")
        self.fingerprint = fingerprint
        self.strategy = strategy
        # Members per partition, derived once: one argsort instead of a
        # per-partition scan.
        order = np.argsort(self.item_partitions, kind="stable")
        counts = np.bincount(
            self.item_partitions, minlength=self.num_partitions
        )
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self._members = [
            order[bounds[k] : bounds[k + 1]]
            for k in range(self.num_partitions)
        ]
        self.partition_sizes = counts
        self._empty = counts == 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, user_matrix: np.ndarray, n_probe: int) -> np.ndarray:
        """Top-``n_probe`` non-empty partitions per user row.

        Returns an ``(B, p)`` int array (``p <= n_probe`` when fewer
        non-empty partitions exist).  Empty partitions never route.
        """
        user_matrix = np.atleast_2d(np.asarray(user_matrix, dtype=np.float64))
        if n_probe < 1:
            raise ValueError(f"n_probe must be >= 1, got {n_probe}")
        affinity = user_matrix @ self.centroids.T
        affinity[:, self._empty] = -np.inf
        non_empty = int((~self._empty).sum())
        p = min(n_probe, max(non_empty, 1))
        part = np.argpartition(affinity, -p, axis=1)[:, -p:]
        # Best-first order so truncated probing is deterministic.
        part_scores = np.take_along_axis(affinity, part, axis=1)
        order = np.argsort(part_scores, axis=1)[:, ::-1]
        return np.take_along_axis(part, order, axis=1)

    def candidates(
        self, user_vector: np.ndarray, n_probe: int = 2
    ) -> np.ndarray:
        """Shortlist for one user vector: probed members ∪ popular head."""
        probes = self.route(user_vector[None, :], n_probe)[0]
        parts = [self._members[k] for k in probes] + [self.popular_head]
        return np.unique(np.concatenate(parts))

    def candidate_lists(
        self, user_matrix: np.ndarray, n_probe: int = 2
    ) -> List[np.ndarray]:
        """Per-row shortlists for a ``(B, d)`` batch of user vectors."""
        probes = self.route(user_matrix, n_probe)
        return [
            np.unique(
                np.concatenate(
                    [self._members[k] for k in row] + [self.popular_head]
                )
            )
            for row in probes
        ]

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "format": INDEX_FORMAT_VERSION,
            "kind": "cluster",
            "item_partitions": self.item_partitions.copy(),
            "centroids": self.centroids.copy(),
            "popular_head": self.popular_head.copy(),
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ClusterIndex":
        if state.get("format") != INDEX_FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {state.get('format')!r} "
                f"(this build reads {INDEX_FORMAT_VERSION})"
            )
        if state.get("kind") != "cluster":
            raise ValueError(f"not a cluster index payload: {state.get('kind')!r}")
        return cls(
            item_partitions=state["item_partitions"],
            centroids=state["centroids"],
            popular_head=state["popular_head"],
            fingerprint=state["fingerprint"],
            strategy=state.get("strategy", "kmeans"),
        )


def _intent_partitions(model) -> Optional[np.ndarray]:
    """Per-item hard intent from the model's learned tag clusters.

    ``None`` when the model does not expose
    ``item_intent_assignments()`` (non-IMCAT models) or has not
    activated clustering yet.
    """
    exporter = getattr(model, "item_intent_assignments", None)
    if exporter is None:
        return None
    assignments = exporter()
    if assignments is None:
        return None
    return np.asarray(assignments, dtype=np.int64)


def build_index(
    model,
    num_partitions: int = 16,
    strategy: str = "auto",
    popularity: Optional[np.ndarray] = None,
    popular_head: int = 50,
    seed: int = 0,
) -> ClusterIndex:
    """Build a :class:`ClusterIndex` from a trained model.

    Args:
        model: any :class:`repro.models.base.Recommender`-shaped model
            (``item_repr`` / ``user_repr``).  IMCAT wrappers with an
            active clustering phase contribute their learned tag-cluster
            structure under the ``"intent"``/``"auto"`` strategies.
        num_partitions: partition count for the K-means strategy (the
            intent strategy inherits the model's ``K``).
        strategy: ``"intent"`` (hard tag-cluster/intent assignment per
            item, Eq. 8-10 structure), ``"kmeans"`` (Lloyd's over item
            vectors), or ``"auto"`` (intent when available, else
            K-means).
        popularity: per-item interaction counts; the top
            ``popular_head`` items form the always-probed head.  ``None``
            leaves the head empty.
        popular_head: size of the popularity head.
        seed: K-means seeding RNG.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )
    vectors = item_vectors(model)
    partitions = None
    chosen = strategy
    if strategy in ("auto", "intent"):
        partitions = _intent_partitions(model)
        if partitions is not None:
            chosen = "intent"
            k = int(partitions.max()) + 1 if partitions.size else 1
            # Tagless items carry -1: route them to their nearest intent
            # centroid so every item lives in exactly one partition.
            known = partitions >= 0
            if not known.any():
                partitions = None
            else:
                centroids = np.zeros((k, vectors.shape[1]))
                for part in range(k):
                    members = known & (partitions == part)
                    if members.any():
                        centroids[part] = vectors[members].mean(axis=0)
                if (~known).any():
                    orphan = vectors[~known]
                    nearest = (
                        (orphan[:, None, :] - centroids[None, :, :]) ** 2
                    ).sum(axis=2).argmin(axis=1)
                    partitions = partitions.copy()
                    partitions[~known] = nearest
        elif strategy == "intent":
            raise ValueError(
                "strategy='intent' needs a model exposing "
                "item_intent_assignments() with an active clustering phase"
            )
    if partitions is None:
        chosen = "kmeans"
        k = min(num_partitions, len(vectors))
        _, partitions = kmeans(vectors, k, rng=np.random.default_rng(seed))
        partitions = partitions[: len(vectors)]
    num_parts = int(partitions.max()) + 1
    centroids = np.zeros((num_parts, vectors.shape[1]))
    for part in range(num_parts):
        members = partitions == part
        if members.any():
            centroids[part] = vectors[members].mean(axis=0)
    head = np.empty(0, dtype=np.int64)
    if popularity is not None and popular_head > 0:
        popularity = np.asarray(popularity, dtype=np.float64)
        if len(popularity) != len(vectors):
            raise ValueError(
                f"popularity has {len(popularity)} entries for "
                f"{len(vectors)} items"
            )
        head_size = min(popular_head, len(popularity))
        head = np.argpartition(popularity, -head_size)[-head_size:]
        head = head[np.argsort(popularity[head])[::-1]].astype(np.int64)
    return ClusterIndex(
        item_partitions=partitions,
        centroids=centroids,
        popular_head=head,
        fingerprint=model_fingerprint(model),
        strategy=chosen,
    )
