"""Index persistence inside a :mod:`repro.ckpt` checkpoint directory.

An index file rides next to the model snapshots it was built from:
``index-<step>.npz`` in the same directory, written with the same
atomic temp-file + ``os.replace`` protocol and the same loss-free
:func:`repro.ckpt.encode_state` payload (carrying its own SHA-256), so
:class:`repro.serve.CheckpointModelProvider` can promote a checkpoint
and its index as one unit: load the matching index if one round-trips
cleanly, rebuild and save it back otherwise.
"""

from __future__ import annotations

import os
import re
import warnings
from typing import Optional

from ..ckpt import checksum, decode_state, encode_state
from .index import ClusterIndex

#: Index payload naming inside a checkpoint directory.
INDEX_PREFIX = "index-"
_INDEX_PATTERN = re.compile(r"^index-(\d+)\.npz$")
_TMP_SUFFIX = ".tmp"


def index_path(directory: str, step: int) -> str:
    """Canonical payload path for the index of checkpoint ``step``."""
    return os.path.join(directory, f"{INDEX_PREFIX}{int(step):010d}.npz")


def save_index(index: ClusterIndex, directory: str, step: int = 0) -> str:
    """Atomically persist ``index`` next to checkpoint ``step``.

    The payload embeds its own checksum so a torn write is detected at
    load time and treated as a miss (rebuild), never an error.
    """
    os.makedirs(directory, exist_ok=True)
    state = index.state_dict()
    body = encode_state(state)
    payload = encode_state({"sha256": checksum(body), "index": state})
    path = index_path(directory, step)
    tmp = f"{path}{_TMP_SUFFIX}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def _candidate_paths(directory: str, step: Optional[int]):
    if step is not None:
        path = index_path(directory, step)
        return [path] if os.path.exists(path) else []
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _INDEX_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _, path in sorted(found, reverse=True)]


def load_index(
    directory: str,
    step: Optional[int] = None,
    expected_fingerprint: Optional[str] = None,
) -> Optional[ClusterIndex]:
    """Load a persisted index, or ``None`` when no usable one exists.

    Walks newest-first (or the exact ``step`` when given), skipping
    unreadable, torn, or fingerprint-mismatched payloads with a warning
    — a missing or stale index is a *miss*, never an error, because the
    caller can always rebuild from the live model.
    """
    for path in _candidate_paths(directory, step):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            envelope = decode_state(data)
            body = encode_state(envelope["index"])
            if checksum(body) != envelope["sha256"]:
                raise ValueError("payload checksum mismatch (torn write)")
            index = ClusterIndex.from_state(envelope["index"])
        except Exception as err:
            warnings.warn(
                f"skipping unusable retrieval index {path!r}: {err}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if (
            expected_fingerprint is not None
            and index.fingerprint != expected_fingerprint
        ):
            warnings.warn(
                f"retrieval index {path!r} was built from a different "
                f"model (fingerprint mismatch); ignoring it",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        return index
    return None


def prune_indexes(directory: str, keep_steps) -> None:
    """Drop index payloads whose checkpoint step is no longer retained."""
    keep = {int(step) for step in keep_steps}
    if not os.path.isdir(directory):
        return
    for name in os.listdir(directory):
        match = _INDEX_PATTERN.match(name)
        if match and int(match.group(1)) not in keep:
            os.remove(os.path.join(directory, name))
