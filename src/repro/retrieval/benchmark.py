"""Recall-vs-speedup measurement for cluster-routed retrieval.

:func:`run_retrieval_suite` trains a small model, builds a
:class:`ClusterIndex`, and sweeps ``n_probe``: each point records the
per-query scored-item reduction against exact scoring, the top-K
overlap with the exact ranking (the serving-side "recall@K"), and the
full evaluation metrics through :class:`repro.eval.Evaluator` in both
exact and ``approximate=True`` modes.  ``benchmarks/bench_retrieval.py``
persists the payload as ``BENCH_retrieval.json``; ``python -m
repro.retrieval smoke`` asserts the correctness spine of the same sweep
at a tiny scale.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional, Sequence

import numpy as np

from .index import build_index
from .retriever import ApproximateScorer


def _top_k_sets(scores: np.ndarray, k: int) -> list:
    """Per-row top-``k`` column sets (``-inf`` entries never qualify)."""
    k = min(k, scores.shape[1])
    part = np.argpartition(scores, -k, axis=1)[:, -k:]
    part_scores = np.take_along_axis(scores, part, axis=1)
    out = []
    for row in range(len(scores)):
        valid = part[row][np.isfinite(part_scores[row])]
        out.append(set(valid.tolist()))
    return out


def ranking_overlap(
    model,
    scorer: ApproximateScorer,
    users: np.ndarray,
    mask_items: Optional[Sequence[np.ndarray]] = None,
    top_k: int = 50,
    chunk_size: int = 256,
) -> float:
    """Mean top-``top_k`` overlap between exact and approximate rankings.

    ``mask_items`` (per-user training items) are masked out of both
    rankings, mirroring the evaluation protocol.  The overlap of user
    ``u`` is ``|approx_k(u) ∩ exact_k(u)| / |exact_k(u)|`` — the
    serving-side recall@K of the approximate tier.
    """
    overlaps = []
    for start in range(0, len(users), chunk_size):
        chunk = users[start : start + chunk_size]
        exact = np.asarray(model.all_scores(chunk), dtype=np.float64).copy()
        approx = scorer.all_scores(chunk)
        if mask_items is not None:
            for row, user in enumerate(chunk):
                items = mask_items[int(user)]
                exact[row, items] = -np.inf
                approx[row, items] = -np.inf
        exact_sets = _top_k_sets(exact, top_k)
        approx_sets = _top_k_sets(approx, top_k)
        for exact_set, approx_set in zip(exact_sets, approx_sets):
            if exact_set:
                overlaps.append(len(exact_set & approx_set) / len(exact_set))
    return float(np.mean(overlaps)) if overlaps else 0.0


def run_retrieval_suite(
    dataset_name: str = "hetrec-del",
    scale: float = 0.5,
    epochs: int = 30,
    embed_dim: int = 32,
    batch_size: int = 512,
    num_partitions: int = 16,
    n_probes: Sequence[int] = (1, 2, 3, 4, 6, 8, 12, 16),
    top_k: int = 50,
    sample_users: int = 256,
    popular_head: int = 25,
    seed: int = 7,
) -> Dict[str, object]:
    """Train, index, sweep ``n_probe``; returns a JSON-safe payload."""
    # Local imports: the suite pulls in the training stack, which the
    # serving-time retrieval path must not pay for.
    from ..bench.harness import BenchSettings, prepare_split
    from ..eval import Evaluator
    from ..models import BPRMF, TrainConfig, fit_bpr

    settings = BenchSettings(
        scale=scale, embed_dim=embed_dim, epochs=epochs, batch_size=batch_size,
        train_seed=seed,
    )
    dataset, split = prepare_split(dataset_name, settings)
    rng = np.random.default_rng(seed)
    model = BPRMF(dataset.num_users, dataset.num_items, embed_dim, rng)
    fit_bpr(
        model,
        split,
        TrainConfig(
            epochs=epochs,
            batch_size=batch_size,
            seed=seed,
            eval_every=max(epochs, 1),
        ),
    )

    evaluator = Evaluator(
        split.train, split.test, top_n=(top_k,), metrics=("recall", "ndcg")
    )
    start = time.perf_counter()
    exact_result = evaluator.evaluate(model)
    exact_seconds = time.perf_counter() - start

    index = build_index(
        model,
        num_partitions=num_partitions,
        strategy="auto",
        popularity=split.train.item_degrees(),
        popular_head=popular_head,
        seed=seed,
    )
    train_items = split.train.items_of_user()
    users = rng.choice(
        dataset.num_users,
        size=min(sample_users, dataset.num_users),
        replace=False,
    )

    curve = []
    for n_probe in sorted(set(int(p) for p in n_probes)):
        if n_probe < 1 or n_probe > index.num_partitions:
            continue
        scorer = ApproximateScorer(model, index, n_probe=n_probe)
        overlap = ranking_overlap(
            model, scorer, users, mask_items=train_items, top_k=top_k
        )
        mean_scored = (
            scorer.scored_items / scorer.queries if scorer.queries else 0.0
        )
        start = time.perf_counter()
        approx_result = evaluator.evaluate(
            model, approximate=True, index=index, n_probe=n_probe
        )
        approx_seconds = time.perf_counter() - start
        curve.append(
            {
                "n_probe": n_probe,
                "recall_at_k_vs_exact": overlap,
                "mean_scored_items": mean_scored,
                "scored_reduction": (
                    dataset.num_items / mean_scored if mean_scored else 0.0
                ),
                "eval_seconds": approx_seconds,
                "eval_speedup": (
                    exact_seconds / approx_seconds if approx_seconds else 0.0
                ),
                f"recall@{top_k}": approx_result[f"recall@{top_k}"],
                f"ndcg@{top_k}": approx_result[f"ndcg@{top_k}"],
                "recall_delta": (
                    approx_result[f"recall@{top_k}"]
                    - exact_result[f"recall@{top_k}"]
                ),
                "ndcg_delta": (
                    approx_result[f"ndcg@{top_k}"]
                    - exact_result[f"ndcg@{top_k}"]
                ),
            }
        )

    qualifying = [
        point
        for point in curve
        if point["recall_at_k_vs_exact"] >= 0.95
    ]
    best = (
        max(qualifying, key=lambda point: point["scored_reduction"])
        if qualifying
        else None
    )
    return {
        "settings": {
            "dataset": dataset_name,
            "scale": scale,
            "epochs": epochs,
            "embed_dim": embed_dim,
            "num_items": dataset.num_items,
            "num_users": dataset.num_users,
            "num_partitions": index.num_partitions,
            "strategy": index.strategy,
            "popular_head": popular_head,
            "top_k": top_k,
            "sample_users": int(len(users)),
            "seed": seed,
        },
        "exact": {
            f"recall@{top_k}": exact_result[f"recall@{top_k}"],
            f"ndcg@{top_k}": exact_result[f"ndcg@{top_k}"],
            "eval_seconds": exact_seconds,
            "scored_per_query": dataset.num_items,
        },
        "curve": curve,
        "best_qualifying": best,
    }


def save_retrieval_results(payload: Dict[str, object], path: str) -> None:
    """Persist a suite payload as ``BENCH_retrieval.json``-style JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def format_retrieval_table(payload: Dict[str, object]) -> str:
    """Text rendering of the recall-vs-speedup curve."""
    from ..bench.tables import format_table

    top_k = payload["settings"]["top_k"]
    rows = [
        [
            point["n_probe"],
            point["mean_scored_items"],
            point["scored_reduction"],
            point["recall_at_k_vs_exact"],
            point[f"recall@{top_k}"],
            point["eval_speedup"],
        ]
        for point in payload["curve"]
    ]
    settings = payload["settings"]
    return format_table(
        [
            "n_probe",
            "scored/query",
            "reduction",
            f"overlap@{top_k}",
            f"recall@{top_k}",
            "eval speedup",
        ],
        rows,
        title=(
            f"retrieval ({settings['dataset']} @ scale={settings['scale']}, "
            f"{settings['num_partitions']} partitions, "
            f"{settings['strategy']})"
        ),
    )
