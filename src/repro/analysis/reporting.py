"""Rendering of lint reports: human-readable lines and JSON."""

from __future__ import annotations

import json

from .engine import LintReport


def render_human(report: LintReport) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [finding.format() for finding in report.findings]
    files_with = len({finding.path for finding in report.findings})
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''} in {files_with} "
            f"file{'s' if files_with != 1 else ''} "
            f"({report.files_checked} checked)"
        )
    else:
        lines.append(f"clean: {report.files_checked} files checked")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable JSON document for tooling (CI annotations, dashboards)."""
    return json.dumps(
        {
            "version": 1,
            "files_checked": report.files_checked,
            "findings": [finding.to_dict() for finding in report.findings],
        },
        indent=2,
        sort_keys=True,
    )
