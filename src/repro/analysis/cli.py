"""Command-line interface of the project linter.

Run as ``python -m repro.lint [paths ...]``.  Exit status: 0 when
clean, 1 when findings were reported, 2 on usage errors (unknown rule
codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .concurrency import ConcurrencyLinter, iter_concurrency_rules
from .engine import (
    DEFAULT_ENTRY_PATHS,
    DEFAULT_HOT_PATHS,
    Linter,
)
from .reporting import render_human, render_json
from .rules import iter_rules


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "IMCAT project linter (rules LNT001-LNT005; "
            "LNT006-LNT010 with --concurrency)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run the whole-program lock-discipline pass (LNT006-LNT010) "
            "instead of the per-file rules"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--hot-path",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="extra path fragment treated as a hot-path module (LNT002)",
    )
    parser.add_argument(
        "--entry-path",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="extra path fragment treated as an entry-point module (LNT003)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [code.strip() for code in value.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code} {rule.name}: {rule.description}")
        for rule in iter_concurrency_rules():
            print(f"{rule.code} {rule.name}: {rule.description} [--concurrency]")
        return 0

    try:
        if args.concurrency:
            linter = ConcurrencyLinter(
                select=_codes(args.select),
                ignore=_codes(args.ignore),
            )
        else:
            linter = Linter(
                select=_codes(args.select),
                ignore=_codes(args.ignore),
                hot_paths=tuple(DEFAULT_HOT_PATHS) + tuple(args.hot_path),
                entry_paths=tuple(DEFAULT_ENTRY_PATHS) + tuple(args.entry_path),
            )
        report = linter.lint_paths(args.paths)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    rendered = render_json(report) if args.format == "json" else render_human(report)
    print(rendered)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via repro.lint
    sys.exit(main())
