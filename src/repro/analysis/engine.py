"""Lint engine: file discovery, rule execution, suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .directives import Directives
from .findings import Finding, LintContext
from .rules import Rule, iter_rules

#: Modules whose training/eval loops are vectorised fast paths (LNT002).
DEFAULT_HOT_PATHS: Tuple[str, ...] = (
    "repro/eval/evaluator.py",
    "repro/data/sampling.py",
    "repro/core/alignment.py",
)

#: Modules holding evaluation/scoring entry points (LNT003).
DEFAULT_ENTRY_PATHS: Tuple[str, ...] = (
    "repro/models/",
    "repro/core/imcat.py",
    "repro/eval/evaluator.py",
)

#: Directory names skipped while walking directory arguments.  Files
#: passed explicitly on the command line are always linted, so the lint
#: test-fixtures stay checkable while ``repro.lint tests`` stays clean.
DEFAULT_EXCLUDED_DIRS: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    ".venv",
    "_lint_fixtures",
    "fixtures",
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no findings (including parse errors) were reported."""
        return not self.findings


class Linter:
    """Runs the registered rules over files, sources, or directory trees.

    Args:
        rules: rule instances to run (default: every registered rule).
        select: if given, only run rules with these codes.
        ignore: rule codes to drop entirely.
        hot_paths: path fragments treated as hot-path modules (LNT002).
        entry_paths: path fragments treated as entry-point modules
            (LNT003).
        excluded_dirs: directory names skipped during directory walks.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        hot_paths: Sequence[str] = DEFAULT_HOT_PATHS,
        entry_paths: Sequence[str] = DEFAULT_ENTRY_PATHS,
        excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
    ) -> None:
        active = list(rules) if rules is not None else iter_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.code for rule in active}
            if unknown:
                raise ValueError(f"unknown rule codes selected: {sorted(unknown)}")
            active = [rule for rule in active if rule.code in wanted]
        if ignore is not None:
            dropped = set(ignore)
            active = [rule for rule in active if rule.code not in dropped]
        self.rules = active
        self.hot_paths = tuple(hot_paths)
        self.entry_paths = tuple(entry_paths)
        self.excluded_dirs = frozenset(excluded_dirs)

    # ------------------------------------------------------------------
    # single-unit entry points
    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint a source string; ``path`` is used for display/registries."""
        display = Path(path).as_posix()
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return [
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    code="LNT000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = LintContext(
            path=display,
            source=source,
            tree=tree,
            directives=Directives.parse(source),
            hot_paths=self.hot_paths,
            entry_paths=self.entry_paths,
        )
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if not ctx.directives.is_suppressed(finding.code, finding.line):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.line, f.col, f.code))
        return findings

    def lint_file(self, path: os.PathLike) -> List[Finding]:
        """Lint one file from disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=str(path))

    # ------------------------------------------------------------------
    # tree walking
    # ------------------------------------------------------------------
    def discover(self, paths: Sequence[os.PathLike]) -> List[Path]:
        """Expand files/directories into the list of Python files to lint.

        Directory walks skip :attr:`excluded_dirs`; files named
        explicitly are always included.  Missing paths raise.
        """
        out: List[Path] = []
        seen = set()
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                candidates = [path]
            elif path.is_dir():
                candidates = [
                    candidate
                    for candidate in sorted(path.rglob("*.py"))
                    if not (set(candidate.parts[:-1]) & self.excluded_dirs)
                ]
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
            for candidate in candidates:
                key = candidate.resolve()
                if key not in seen:
                    seen.add(key)
                    out.append(candidate)
        return out

    def lint_paths(self, paths: Sequence[os.PathLike]) -> LintReport:
        """Lint every Python file reachable from ``paths``."""
        report = LintReport()
        for file_path in self.discover(paths):
            report.findings.extend(self.lint_file(file_path))
            report.files_checked += 1
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return report
