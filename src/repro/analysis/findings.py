"""Finding record and per-file lint context shared by rules and engine."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .directives import Directives


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to check one file.

    Attributes:
        path: display path of the file (posix separators).
        source: raw source text.
        tree: parsed module AST.
        directives: suppression directives of the file.
        hot_paths: path suffixes registered as vectorised hot paths
            (consumed by LNT002).
        entry_paths: path fragments registered as evaluation/scoring
            entry-point modules (consumed by LNT003).
    """

    path: str
    source: str
    tree: ast.Module
    directives: Directives
    hot_paths: Tuple[str, ...]
    entry_paths: Tuple[str, ...]

    def matches(self, fragments: Sequence[str]) -> bool:
        """Whether ``path`` matches any registered fragment.

        A fragment containing ``/`` must be a path suffix (or contained
        with its directory structure intact); a bare filename matches as
        a suffix of the final component, so fixture files can opt in via
        ``--hot-path trigger_lnt002.py``.
        """
        for fragment in fragments:
            if self.path == fragment or self.path.endswith("/" + fragment):
                return True
            if "/" in fragment and fragment in self.path:
                return True
            if "/" not in fragment and self.path.rsplit("/", 1)[-1] == fragment:
                return True
        return False
