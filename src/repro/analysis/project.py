"""Whole-program model powering the concurrency pass (LNT006–LNT010).

The per-file rules of :mod:`repro.analysis.rules` see one AST at a
time; lock discipline is a *program* property.  This module parses
every file of a lint run into one :class:`ProjectGraph`:

- **symbols** — every module-level function and class method, with
  class annotations (``@shared_state`` / ``@guarded_by``) and the lock
  attributes each class constructs;
- **locks** — module-level and ``self.*`` lock objects, identified by
  stable ids (``module.Class._lock`` / ``module.LOCK``) so acquisitions
  in different files refer to the same lock;
- **calls** — a conservative call graph (same-module names, ``self.``
  methods, and imported names), used to propagate lock acquisition
  across function boundaries and to compute which functions are
  reachable from ``threading.Thread(target=...)`` entry points;
- **events** — per function: lock acquisitions with the locks already
  held, attribute/global writes with the locks held at the write,
  blocking calls under a lock, and check-then-act / lazy-init ``if``
  patterns.

Everything is syntactic and conservative: an expression counts as a
lock when it resolves to a known lock attribute/global (or its name
contains ``lock``), a call is resolved only when its target is
unambiguous, and nested ``def`` bodies are skipped (they run at another
time, under other locks).  The rules in
:mod:`repro.analysis.concurrency` consume the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .directives import Directives

#: Methods whose writes happen before the object is shared.
INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: Constructor names recognised as producing a lock object.
LOCK_FACTORIES = frozenset({"new_lock", "new_rlock", "SanitizedLock"})

#: ``threading.<attr>`` constructors producing a lock object.
THREADING_LOCKS = frozenset({"Lock", "RLock"})

#: Methods that mutate a built-in container in place (``self.X.pop()``
#: counts as a write to ``self.X``).
CONTAINER_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "setdefault", "pop", "popitem",
        "clear", "remove", "discard", "move_to_end", "update", "set",
        "appendleft", "popleft",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/serve/cache.py`` → ``repro.serve.cache``; files outside
    a recognised package root fall back to their stem, which keeps lock
    ids readable for fixture files.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ("src", "lib"):
        if root in parts:
            parts = parts[parts.index(root) + 1 :]
            break
    else:
        # Keep only the trailing package-ish components.
        parts = parts[-1:]
    return ".".join(parts) if parts else Path(path).stem


@dataclass(frozen=True)
class SourceUnit:
    """One parsed file of the project."""

    path: str
    module: str
    source: str
    tree: ast.Module
    directives: Directives


@dataclass
class CheckThenAct:
    """One ``if <reads shared>: <writes shared>`` pattern."""

    node: ast.If
    attr: str
    kind: str  # "lazy" (is-None init) or "cta" (check-then-act)
    held: Tuple[str, ...]
    write_nodes: List[ast.AST] = field(default_factory=list)
    scope: str = "attr"  # "attr" or "global"


@dataclass
class FunctionInfo:
    """One module-level function or class method plus its events."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.AST
    cls: Optional["ClassInfo"] = None
    guarded_by: Optional[str] = None  # lock id claimed held by callers
    # events, filled by the second pass
    acquisitions: List[Tuple[str, ast.AST, Tuple[str, ...]]] = field(
        default_factory=list
    )
    calls: List[Tuple[ast.Call, Tuple[str, ...], Optional[str]]] = field(
        default_factory=list
    )
    blocking: List[Tuple[ast.AST, Tuple[str, ...], str]] = field(
        default_factory=list
    )
    attr_writes: List[Tuple[ast.AST, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    global_writes: List[Tuple[ast.AST, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    checks: List[CheckThenAct] = field(default_factory=list)

    @property
    def acquired(self) -> Set[str]:
        """Every lock id this function acquires lexically."""
        return {lid for lid, _, _ in self.acquisitions}


@dataclass
class ClassInfo:
    """One class: annotations, lock attributes, methods."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    shared: bool = False
    guard: Optional[str] = None  # declared guard attribute name
    exempt: frozenset = frozenset()
    lock_attrs: Set[str] = field(default_factory=set)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def guard_lock_ids(self) -> Set[str]:
        """Lock ids accepted as guarding this class's state."""
        if self.guard:
            return {f"{self.qualname}.{self.guard}"}
        return {f"{self.qualname}.{attr}" for attr in sorted(self.lock_attrs)}


@dataclass
class ProjectGraph:
    """The cross-file symbol/call/lock graph of one lint run."""

    units: List[SourceUnit] = field(default_factory=list)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    module_locks: Dict[str, Set[str]] = field(default_factory=dict)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Functions handed to ``threading.Thread(target=...)``.
    thread_entries: Set[str] = field(default_factory=set)
    #: ``thread_entries`` plus everything reachable via resolved calls.
    thread_reachable: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, units: Sequence[SourceUnit]) -> "ProjectGraph":
        graph = cls(units=list(units))
        for unit in units:
            graph._index_unit(unit)
        for unit in units:
            graph._collect_events(unit)
        graph._close_thread_reachability()
        return graph

    # -- pass 1: symbols, imports, locks, annotations ------------------
    def _index_unit(self, unit: SourceUnit) -> None:
        imports: Dict[str, str] = {}
        self.imports[unit.module] = imports
        self.module_locks.setdefault(unit.module, set())
        for node in unit.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.Assign):
                if self._is_lock_ctor(node.value, imports):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[unit.module].add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{unit.module}.{node.name}",
                    name=node.name,
                    module=unit.module,
                    path=unit.path,
                    node=node,
                )
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(unit, node, imports)

    def _index_class(
        self, unit: SourceUnit, node: ast.ClassDef, imports: Dict[str, str]
    ) -> None:
        info = ClassInfo(
            qualname=f"{unit.module}.{node.name}",
            name=node.name,
            module=unit.module,
            path=unit.path,
            node=node,
        )
        for decorator in node.decorator_list:
            name, call = _decorator_parts(decorator)
            if name == "shared_state":
                info.shared = True
                if call is not None:
                    for keyword in call.keywords:
                        if keyword.arg == "guard":
                            info.guard = _const_str(keyword.value)
                        elif keyword.arg == "exempt":
                            info.exempt = frozenset(
                                v
                                for v in _const_str_tuple(keyword.value)
                                if v
                            )
            elif name == "guarded_by" and call is not None and call.args:
                info.guard = _const_str(call.args[0])
                info.shared = True
        self.classes[info.qualname] = info
        for child in node.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method = FunctionInfo(
                qualname=f"{info.qualname}.{child.name}",
                name=child.name,
                module=unit.module,
                path=unit.path,
                node=child,
                cls=info,
            )
            for decorator in child.decorator_list:
                name, call = _decorator_parts(decorator)
                if name == "guarded_by" and call is not None and call.args:
                    attr = _const_str(call.args[0])
                    if attr:
                        method.guarded_by = f"{info.qualname}.{attr}"
            info.methods[child.name] = method
            self.functions[method.qualname] = method
            if child.name in INIT_METHODS:
                self._discover_lock_attrs(info, child, imports)

    def _discover_lock_attrs(
        self, info: ClassInfo, init: ast.AST, imports: Dict[str, str]
    ) -> None:
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                if self._is_lock_ctor(value, imports) or (
                    isinstance(value, ast.Name)
                    and "lock" in value.id.lower()
                ):
                    info.lock_attrs.add(target.attr)

    def _is_lock_ctor(self, node: ast.expr, imports: Dict[str, str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            qualified = imports.get(func.id, func.id)
            return (
                func.id in LOCK_FACTORIES
                or qualified
                in {"threading.Lock", "threading.RLock"}
                or qualified.rsplit(".", 1)[-1] in LOCK_FACTORIES
            )
        if isinstance(func, ast.Attribute):
            if func.attr in THREADING_LOCKS | LOCK_FACTORIES:
                base = func.value
                if isinstance(base, ast.Name):
                    return imports.get(base.id, base.id) in (
                        "threading",
                        "repro.concurrency",
                        "concurrency",
                    )
        return False

    # -- pass 2: per-function events -----------------------------------
    def _collect_events(self, unit: SourceUnit) -> None:
        for info in self.functions.values():
            if info.path != unit.path:
                continue
            _EventWalker(self, unit, info).run()

    # -- pass 3: thread reachability -----------------------------------
    def _close_thread_reachability(self) -> None:
        frontier = list(self.thread_entries)
        seen = set(frontier)
        while frontier:
            qualname = frontier.pop()
            info = self.functions.get(qualname)
            if info is None:
                continue
            for _, _, callee in info.calls:
                if callee is not None and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        self.thread_reachable = seen

    # ------------------------------------------------------------------
    # resolution helpers (shared with the event walker)
    # ------------------------------------------------------------------
    def resolve_lock(
        self, expr: ast.expr, func: FunctionInfo
    ) -> Optional[str]:
        """Stable lock id for an expression, or ``None``.

        ``self.X`` resolves against the owning class's discovered lock
        attributes (or the ``lock`` name heuristic); bare names resolve
        against module-level locks, imported lock names, then the
        heuristic.
        """
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and base.id == "self":
                if func.cls is not None and (
                    expr.attr in func.cls.lock_attrs
                    or "lock" in expr.attr.lower()
                ):
                    return f"{func.cls.qualname}.{expr.attr}"
                return None
            if isinstance(base, ast.Name):
                target = self.imports.get(func.module, {}).get(base.id)
                if target and expr.attr in self.module_locks.get(target, ()):
                    return f"{target}.{expr.attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks.get(func.module, ()):
                return f"{func.module}.{expr.id}"
            imported = self.imports.get(func.module, {}).get(expr.id)
            if imported:
                module, _, name = imported.rpartition(".")
                if name in self.module_locks.get(module, ()):
                    return f"{module}.{name}"
            if "lock" in expr.id.lower():
                return f"{func.module}.{expr.id}"
        return None

    def resolve_call(
        self, call: ast.Call, func: FunctionInfo
    ) -> Optional[str]:
        """Qualname of the called project function, or ``None``."""
        target = call.func
        if isinstance(target, ast.Name):
            imported = self.imports.get(func.module, {}).get(target.id)
            if imported and imported in self.functions:
                return imported
            local = f"{func.module}.{target.id}"
            if local in self.functions:
                return local
            return None
        if isinstance(target, ast.Attribute):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and func.cls is not None
            ):
                qualname = f"{func.cls.qualname}.{target.attr}"
                if qualname in self.functions:
                    return qualname
                return None
            if isinstance(base, ast.Name):
                module = self.imports.get(func.module, {}).get(base.id)
                if module:
                    qualname = f"{module}.{target.attr}"
                    if qualname in self.functions:
                        return qualname
        return None

    def is_thread_ctor(self, call: ast.Call, func: FunctionInfo) -> bool:
        """Whether ``call`` constructs a ``threading.Thread``."""
        target = call.func
        imports = self.imports.get(func.module, {})
        if isinstance(target, ast.Name):
            return imports.get(target.id) == "threading.Thread" or (
                target.id == "Thread"
            )
        if isinstance(target, ast.Attribute) and target.attr == "Thread":
            base = target.value
            return isinstance(base, ast.Name) and imports.get(
                base.id, base.id
            ) == "threading"
        return False


# ----------------------------------------------------------------------
# the per-function event walker
# ----------------------------------------------------------------------
class _EventWalker:
    """Walks one function body tracking the set of locks held."""

    BLOCKING_ATTRS = frozenset(
        {"read_text", "write_text", "read_bytes", "write_bytes"}
    )
    SUBPROCESS_CALLS = frozenset(
        {"run", "call", "check_call", "check_output", "Popen"}
    )
    THREADY = ("thread", "worker", "proc", "pool", "future")

    def __init__(
        self, graph: ProjectGraph, unit: SourceUnit, info: FunctionInfo
    ) -> None:
        self.graph = graph
        self.unit = unit
        self.info = info
        self.globals: Set[str] = {
            name
            for node in ast.walk(info.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }

    def run(self) -> None:
        held: Tuple[str, ...] = ()
        if self.info.guarded_by:
            held = (self.info.guarded_by,)
        body = getattr(self.info.node, "body", [])
        for stmt in body:
            self._walk(stmt, held)

    # -- recursive walk -------------------------------------------------
    def _walk(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested callables run at another time, under other locks —
            # their bodies are opaque to this pass.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self._walk(item.context_expr, held)
                lock_id = self.graph.resolve_lock(item.context_expr, self.info)
                if lock_id is not None:
                    self.info.acquisitions.append((lock_id, node, held))
                    acquired.append(lock_id)
            inner = held + tuple(l for l in acquired if l not in held)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.If):
            self._match_check_then_act(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            self._handle_write(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    # -- writes ---------------------------------------------------------
    def _write_targets(self, node: ast.AST) -> List[ast.expr]:
        if isinstance(node, ast.Assign):
            out: List[ast.expr] = []
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    out.extend(target.elts)
                else:
                    out.append(target)
            return out
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def _handle_write(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        for target in self._write_targets(node):
            attr = _root_self_attr(target)
            if attr is not None:
                self.info.attr_writes.append((node, attr, held))
                continue
            if isinstance(target, ast.Name) and target.id in self.globals:
                self.info.global_writes.append((node, target.id, held))

    def _handle_call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        callee = self.graph.resolve_call(node, self.info)
        self.info.calls.append((node, held, callee))
        # threading.Thread(target=...) registers an entry point.
        if self.graph.is_thread_ctor(node, self.info):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    entry = self._resolve_target(keyword.value)
                    if entry is not None:
                        self.graph.thread_entries.add(entry)
                        self.graph.thread_reachable.add(entry)
        # container mutation through a self attribute is a write
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in CONTAINER_MUTATORS
        ):
            attr = _root_self_attr(func.value)
            if attr is not None:
                self.info.attr_writes.append((node, attr, held))
        label = self._blocking_label(node)
        if label is not None:
            self.info.blocking.append((node, held, label))

    def _resolve_target(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            local = f"{self.info.module}.{expr.id}"
            if local in self.graph.functions:
                return local
            imported = self.graph.imports.get(self.info.module, {}).get(expr.id)
            if imported in self.graph.functions:
                return imported
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.info.cls is not None
        ):
            qualname = f"{self.info.cls.qualname}.{expr.attr}"
            if qualname in self.graph.functions:
                return qualname
        return None

    # -- blocking calls -------------------------------------------------
    def _blocking_label(self, node: ast.Call) -> Optional[str]:
        imports = self.graph.imports.get(self.info.module, {})
        func = node.func
        if isinstance(func, ast.Name):
            qualified = imports.get(func.id, "")
            if func.id == "open":
                return "open()"
            if qualified == "time.sleep" or (
                func.id == "sleep" and qualified.endswith("sleep")
            ):
                return "time.sleep()"
            if qualified.startswith("subprocess."):
                return f"subprocess.{qualified.rsplit('.', 1)[-1]}()"
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = imports.get(base.id, base.id)
            if func.attr == "sleep" and base_name == "time":
                return "time.sleep()"
            if (
                func.attr in self.SUBPROCESS_CALLS
                and base_name == "subprocess"
            ):
                return f"subprocess.{func.attr}()"
            if base_name == "os" and func.attr in {"system", "popen", "waitpid"}:
                return f"os.{func.attr}()"
            if func.attr in self.BLOCKING_ATTRS:
                return f".{func.attr}() file I/O"
            if func.attr == "join":
                receiver = _last_identifier(base)
                if receiver is not None and any(
                    hint in receiver.lower() for hint in self.THREADY
                ):
                    return f"{receiver}.join()"
        return None

    # -- check-then-act / lazy-init patterns ----------------------------
    def _match_check_then_act(
        self, node: ast.If, held: Tuple[str, ...]
    ) -> None:
        cls = self.info.cls
        if cls is not None and cls.shared:
            skip = cls.exempt | cls.lock_attrs
            written = self._writes_in(node, skip)
            if written:
                lazy_attr = self._lazy_test_attr(node.test)
                if lazy_attr is not None and lazy_attr in written:
                    self.info.checks.append(
                        CheckThenAct(
                            node=node,
                            attr=lazy_attr,
                            kind="lazy",
                            held=held,
                            write_nodes=written[lazy_attr],
                        )
                    )
                    return
                read = self._attrs_read(node.test) - skip
                overlap = sorted(read & set(written))
                if overlap:
                    attr = overlap[0]
                    self.info.checks.append(
                        CheckThenAct(
                            node=node,
                            attr=attr,
                            kind="cta",
                            held=held,
                            write_nodes=[
                                n for a in overlap for n in written[a]
                            ],
                        )
                    )
            return
        # module-global lazy init (outside classes)
        lazy_global = self._lazy_global_test(node.test)
        if lazy_global is not None and lazy_global in self.globals:
            writes = [
                stmt
                for stmt in ast.walk(node)
                if isinstance(stmt, (ast.Assign, ast.AugAssign))
                and any(
                    isinstance(t, ast.Name) and t.id == lazy_global
                    for t in self._write_targets(stmt)
                )
            ]
            if writes:
                self.info.checks.append(
                    CheckThenAct(
                        node=node,
                        attr=lazy_global,
                        kind="lazy",
                        held=held,
                        write_nodes=writes,
                        scope="global",
                    )
                )

    def _writes_in(
        self, node: ast.If, skip: Set[str]
    ) -> Dict[str, List[ast.AST]]:
        written: Dict[str, List[ast.AST]] = {}
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                for target in self._write_targets(sub):
                    attr = _root_self_attr(target)
                    if attr is not None and attr not in skip:
                        written.setdefault(attr, []).append(sub)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CONTAINER_MUTATORS
                ):
                    attr = _root_self_attr(func.value)
                    if attr is not None and attr not in skip:
                        written.setdefault(attr, []).append(sub)
        return written

    def _lazy_test_attr(self, test: ast.expr) -> Optional[str]:
        """``self.X is None`` → ``"X"``."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return _root_self_attr(test.left)
        return None

    def _lazy_global_test(self, test: ast.expr) -> Optional[str]:
        """``NAME is None`` → ``"NAME"``."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return test.left.id
        return None

    def _attrs_read(self, test: ast.expr) -> Set[str]:
        return {
            sub.attr
            for sub in ast.walk(test)
            if isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        }


# ----------------------------------------------------------------------
# small shared helpers
# ----------------------------------------------------------------------
def _root_self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` / ``self.X[k]`` / ``self.X.Y`` → ``"X"``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def _last_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _decorator_parts(node: ast.expr) -> Tuple[Optional[str], Optional[ast.Call]]:
    """Decorator node → (base name, call node when parameterised)."""
    if isinstance(node, ast.Call):
        name, _ = _decorator_parts(node.func)
        return name, node
    if isinstance(node, ast.Name):
        return node.id, None
    if isinstance(node, ast.Attribute):
        return node.attr, None
    return None, None


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_str_tuple(node: ast.expr) -> Tuple[Optional[str], ...]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_const_str(elt) for elt in node.elts)
    single = _const_str(node)
    return (single,) if single is not None else ()
