"""Project-specific static analysis (`python -m repro.lint`).

The IMCAT reproduction relies on invariants the Python runtime never
checks: stochastic code must draw from an explicitly threaded
``np.random.Generator`` (the significance tests of Section V fix
seeds), hot-path modules must stay vectorised, and evaluation must run
under :class:`repro.nn.no_grad` so the tape stays empty.  This package
implements an AST-based linter enforcing those invariants as rules
``LNT001``–``LNT005`` (see :mod:`repro.analysis.rules`), with per-line
and per-file suppression directives, human and JSON reporting, and a
CLI (:mod:`repro.analysis.cli`) that exits non-zero on findings.

Beyond the per-file rules, ``python -m repro.lint --concurrency`` runs
the whole-program lock-discipline pass ``LNT006``–``LNT010``
(:mod:`repro.analysis.concurrency` over the cross-file graph built by
:mod:`repro.analysis.project`), which checks ``@shared_state`` /
``@guarded_by`` annotations from :mod:`repro.concurrency`.

The runtime half of the correctness tooling — the autograd numeric
sanitizer and :func:`repro.nn.gradcheck` — lives in :mod:`repro.nn`;
the dynamic lockset race/deadlock sanitizer lives in
:mod:`repro.testing.lockset`.
"""

from .concurrency import (
    CONCURRENCY_REGISTRY,
    ConcurrencyLinter,
    ConcurrencyRule,
    iter_concurrency_rules,
)
from .directives import Directives
from .engine import Finding, LintReport, Linter
from .project import ProjectGraph, SourceUnit, module_name_for
from .rules import RULE_REGISTRY, Rule, iter_rules
from .reporting import render_human, render_json

__all__ = [
    "CONCURRENCY_REGISTRY",
    "ConcurrencyLinter",
    "ConcurrencyRule",
    "Directives",
    "Finding",
    "LintReport",
    "Linter",
    "ProjectGraph",
    "RULE_REGISTRY",
    "Rule",
    "SourceUnit",
    "iter_concurrency_rules",
    "iter_rules",
    "module_name_for",
    "render_human",
    "render_json",
]
