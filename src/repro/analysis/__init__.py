"""Project-specific static analysis (`python -m repro.lint`).

The IMCAT reproduction relies on invariants the Python runtime never
checks: stochastic code must draw from an explicitly threaded
``np.random.Generator`` (the significance tests of Section V fix
seeds), hot-path modules must stay vectorised, and evaluation must run
under :class:`repro.nn.no_grad` so the tape stays empty.  This package
implements an AST-based linter enforcing those invariants as rules
``LNT001``–``LNT005`` (see :mod:`repro.analysis.rules`), with per-line
and per-file suppression directives, human and JSON reporting, and a
CLI (:mod:`repro.analysis.cli`) that exits non-zero on findings.

The runtime half of the correctness tooling — the autograd numeric
sanitizer and :func:`repro.nn.gradcheck` — lives in :mod:`repro.nn`.
"""

from .directives import Directives
from .engine import Finding, LintReport, Linter
from .rules import RULE_REGISTRY, Rule, iter_rules
from .reporting import render_human, render_json

__all__ = [
    "Directives",
    "Finding",
    "LintReport",
    "Linter",
    "RULE_REGISTRY",
    "Rule",
    "iter_rules",
    "render_human",
    "render_json",
]
