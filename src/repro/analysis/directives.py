"""Suppression directives parsed from ``# lint:`` comments.

Three forms are recognised, all tokenizer-based so directives inside
string literals are ignored:

- ``# lint: disable=LNT001,LNT005`` — suppress the named codes for
  findings reported on the directive's line (put it on the offending
  line or the ``def``/``for`` line the finding anchors to);
- ``# lint: file-disable=LNT002`` — suppress the named codes for the
  whole file;
- ``# lint: reference-path`` — mark a deliberately scalar Python loop
  (or its enclosing function) as a sanctioned reference implementation,
  consumed by rule LNT002.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable|file-disable|reference-path)"
    r"(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+))?"
)


@dataclass
class Directives:
    """Suppression state of one source file."""

    file_disabled: Set[str] = field(default_factory=set)
    line_disabled: Dict[int, Set[str]] = field(default_factory=dict)
    reference_lines: Set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> "Directives":
        """Extract all ``# lint:`` directives from ``source``.

        Tokenisation errors (the caller reports syntax errors
        separately) yield an empty directive set.
        """
        directives = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return directives
        for line, comment in comments:
            match = _DIRECTIVE.search(comment)
            if match is None:
                continue
            kind = match.group("kind")
            if kind == "reference-path":
                directives.reference_lines.add(line)
                continue
            codes = {
                code.strip()
                for code in (match.group("codes") or "").split(",")
                if code.strip()
            }
            if not codes:
                continue
            if kind == "file-disable":
                directives.file_disabled |= codes
            else:
                directives.line_disabled.setdefault(line, set()).update(codes)
        return directives

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a finding of ``code`` at ``line`` is suppressed."""
        if code in self.file_disabled:
            return True
        return code in self.line_disabled.get(line, set())

    def is_reference(self, line: int) -> bool:
        """Whether ``line`` carries a ``reference-path`` marker."""
        return line in self.reference_lines
