"""The project rule set (LNT001–LNT005) and the rule registry.

Each rule is a class with ``code``/``name``/``description`` metadata
and a ``check(ctx)`` generator yielding :class:`Finding`.  Rules are
registered with :func:`register`, so downstream forks can add rules (or
tests can instantiate a restricted set) without touching the engine.

Suppression (see :mod:`repro.analysis.directives`): a finding is
dropped when its code is disabled for the file or for the exact line it
anchors to.  LNT002 additionally honours ``# lint: reference-path``
markers on the loop line or the enclosing ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple, Type

from .findings import Finding, LintContext

RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Add a rule class to :data:`RULE_REGISTRY`, keyed by its code."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def iter_rules() -> List["Rule"]:
    """Fresh instances of every registered rule, in code order."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


class Rule:
    """Base class: metadata plus the per-file ``check`` hook."""

    code: str = "LNT000"
    name: str = "abstract-rule"
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one file (unsuppressed; engine filters)."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


# ----------------------------------------------------------------------
# LNT001 — no legacy global NumPy RNG
# ----------------------------------------------------------------------
@register
class LegacyNumpyRandom(Rule):
    """Forbid the legacy global NumPy RNG.

    Reproducibility of the paper's significance tests (Section V)
    requires every stochastic component to draw from an explicitly
    threaded ``np.random.Generator``; the module-global state touched
    by ``np.random.seed`` / ``rand`` / ``choice`` etc. leaks across
    components and makes runs order-dependent.
    """

    code = "LNT001"
    name = "legacy-numpy-rng"
    description = (
        "np.random.<legacy> uses the global RNG; thread an explicit "
        "np.random.default_rng(seed) Generator instead"
    )

    LEGACY = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
            "normal", "standard_normal", "binomial", "poisson", "beta",
            "exponential", "get_state", "set_state", "RandomState",
        }
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        random_aliases = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        random_aliases.add(alias.asname or "numpy.random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in self.LEGACY:
                            yield self.finding(
                                ctx,
                                node,
                                f"import of legacy RNG 'numpy.random."
                                f"{alias.name}'; {self.description}",
                            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self.LEGACY:
                continue
            owner = node.value
            # np.random.<legacy> / numpy.random.<legacy>
            if (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in numpy_aliases
            ) or (
                isinstance(owner, ast.Name) and owner.id in random_aliases
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global RNG call 'np.random.{node.attr}'; "
                    f"{self.description}",
                )


# ----------------------------------------------------------------------
# LNT002 — no per-entity Python loops in registered hot paths
# ----------------------------------------------------------------------
@register
class HotPathPythonLoop(Rule):
    """Forbid per-user/item/tag Python ``for`` loops in hot-path modules.

    The vectorised fast paths (PR 1) are the scaling story of this
    repo; a stray per-entity loop re-introduces O(|U|)/O(|V|) Python
    overhead silently.  Deliberate scalar implementations stay allowed
    when marked ``# lint: reference-path`` on the loop line or the
    enclosing ``def`` line.
    """

    code = "LNT002"
    name = "hot-path-python-loop"
    description = (
        "Python-level loop over users/items/tags in a registered hot-path "
        "module; vectorise it or mark the reference implementation with "
        "'# lint: reference-path'"
    )

    ENTITIES = frozenset(
        {"user", "users", "item", "items", "tag", "tags", "anchor", "anchors"}
    )
    # Iterator wrappers whose arguments still iterate per element.
    TRANSPARENT_CALLS = frozenset(
        {"enumerate", "zip", "sorted", "reversed", "iter", "list", "tuple"}
    )

    def _names(self, node: ast.AST) -> Iterator[str]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id
            elif isinstance(sub, ast.Attribute):
                yield sub.attr

    def _is_entity(self, identifier: str) -> bool:
        parts = identifier.lower().strip("_").split("_")
        return any(part in self.ENTITIES for part in parts)

    def _iter_exprs(self, iter_node: ast.expr) -> List[ast.expr]:
        """The expressions actually iterated per element.

        ``range(len(users))`` iterates positions, not users, so call
        arguments are only unwrapped for transparent wrappers like
        ``enumerate``/``zip``.
        """
        if isinstance(iter_node, ast.Call):
            func = iter_node.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in self.TRANSPARENT_CALLS:
                out: List[ast.expr] = []
                for arg in iter_node.args:
                    out.extend(self._iter_exprs(arg))
                return out
            return []
        return [iter_node]

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.matches(ctx.hot_paths):
            return
        # Map every For node to the def-lines of its enclosing functions
        # so a function-level reference-path marker covers its loops.
        def_stack: List[int] = []

        def visit(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                def_stack.append(node.lineno)
            if isinstance(node, ast.For):
                marked = ctx.directives.is_reference(node.lineno) or any(
                    ctx.directives.is_reference(line) for line in def_stack
                )
                if not marked:
                    names = set(self._names(node.target))
                    for expr in self._iter_exprs(node.iter):
                        names.update(self._names(expr))
                    entity = sorted(n for n in names if self._is_entity(n))
                    if entity:
                        yield self.finding(
                            ctx,
                            node,
                            f"loop over {', '.join(entity)}: "
                            f"{self.description}",
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                def_stack.pop()

        yield from visit(ctx.tree)


# ----------------------------------------------------------------------
# LNT003 — evaluation/scoring entry points must run under no_grad
# ----------------------------------------------------------------------
@register
class NoGradEntryPoint(Rule):
    """Require ``no_grad`` in evaluation/scoring entry points.

    ``all_scores``/``evaluate`` rank the full item vocabulary; building
    the tape there wastes memory proportional to |U| x |V| per chunk.
    A direct ``return <expr>.all_scores(...)`` delegation is accepted
    (the delegate is checked in its own module).
    """

    code = "LNT003"
    name = "no-grad-entry-point"
    description = (
        "evaluation/scoring entry point must wrap its work in "
        "'with no_grad():' (or delegate to one that does)"
    )

    ENTRY_FUNCTIONS = frozenset(
        {"all_scores", "evaluate", "evaluate_reference", "score_all"}
    )

    def _mentions_no_grad(self, node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            if isinstance(expr, ast.Name) and "no_grad" in expr.id:
                return True
            if isinstance(expr, ast.Attribute) and "no_grad" in expr.attr:
                return True
        return False

    def _delegates(self, node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            value = sub.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in self.ENTRY_FUNCTIONS
            ):
                return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.matches(ctx.entry_paths):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in self.ENTRY_FUNCTIONS:
                continue
            has_no_grad = any(
                isinstance(sub, ast.With) and self._mentions_no_grad(sub)
                for sub in ast.walk(node)
            )
            if has_no_grad or self._delegates(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"'{node.name}' runs without no_grad: {self.description}",
            )


# ----------------------------------------------------------------------
# LNT004 — no mutable default arguments
# ----------------------------------------------------------------------
@register
class MutableDefaultArgument(Rule):
    """Forbid mutable default argument values."""

    code = "LNT004"
    name = "mutable-default-argument"
    description = (
        "mutable default is shared across calls; default to None and "
        "create the container inside the function"
    )

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self.MUTABLE_CALLS
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in '{label}': {self.description}",
                    )


# ----------------------------------------------------------------------
# LNT005 — no bare except / silent pass
# ----------------------------------------------------------------------
@register
class SilentExcept(Rule):
    """Forbid bare ``except:`` and handlers that silently ``pass``."""

    code = "LNT005"
    name = "silent-except"
    description = (
        "swallowed exceptions hide NaN collapses and data bugs; catch a "
        "specific type and at least record why ignoring it is safe"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, f"bare 'except:': {self.description}"
                )
                continue
            if all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"exception handler silently passes: {self.description}",
                )
