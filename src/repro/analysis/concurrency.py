"""The project-wide concurrency pass: rules LNT006–LNT010.

Unlike the per-file rules in :mod:`repro.analysis.rules`, these run
over a :class:`~repro.analysis.project.ProjectGraph` built from *every*
file of the run, because lock discipline is a cross-file property (the
lock an attribute is guarded by, the order two locks nest in, whether a
function is reached from a thread entry point).

Rules
-----
LNT006  unguarded-shared-write — mutation of ``self.*`` state in a
        ``@shared_state`` class (or of module globals in code reached
        from ``threading.Thread`` entry points) without the guard held.
LNT007  lock-order-cycle — two locks acquired nested in both orders
        anywhere in the program (classic ABBA deadlock hazard).
LNT008  blocking-call-under-lock — ``time.sleep``, file I/O,
        subprocess, or thread ``join`` while holding a lock.
LNT009  racy-check-then-act — an ``if`` that reads shared state and
        then writes it, outside the guard (lost-update window).
LNT010  unlocked-lazy-init — ``if self.x is None: self.x = ...`` (or
        the module-global twin) outside a lock: two threads can both
        see ``None`` and initialize twice.

Findings flow through the same :class:`~repro.analysis.directives`
suppression machinery as LNT001–LNT005 (``# lint: disable=LNT008``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .directives import Directives
from .engine import DEFAULT_EXCLUDED_DIRS, Linter, LintReport
from .findings import Finding
from .project import (
    INIT_METHODS,
    CheckThenAct,
    ClassInfo,
    FunctionInfo,
    ProjectGraph,
    SourceUnit,
    module_name_for,
)


class ConcurrencyRule:
    """Registry metadata for one whole-program rule."""

    def __init__(self, code: str, name: str, description: str) -> None:
        self.code = code
        self.name = name
        self.description = description


#: The concurrency rules, keyed by code.  Deliberately a separate
#: registry from ``rules.RULE_REGISTRY`` — the per-file registry is the
#: per-file API surface and its tests pin its exact contents.
CONCURRENCY_REGISTRY: Dict[str, ConcurrencyRule] = {
    rule.code: rule
    for rule in (
        ConcurrencyRule(
            "LNT006",
            "unguarded-shared-write",
            "shared state mutated without holding its guard lock",
        ),
        ConcurrencyRule(
            "LNT007",
            "lock-order-cycle",
            "locks acquired nested in inconsistent order (deadlock hazard)",
        ),
        ConcurrencyRule(
            "LNT008",
            "blocking-call-under-lock",
            "blocking call (sleep, file I/O, subprocess, join) under a lock",
        ),
        ConcurrencyRule(
            "LNT009",
            "racy-check-then-act",
            "non-atomic check-then-act on shared state",
        ),
        ConcurrencyRule(
            "LNT010",
            "unlocked-lazy-init",
            "lazy initialization of shared state outside a lock",
        ),
    )
}


def iter_concurrency_rules() -> List[ConcurrencyRule]:
    """The concurrency rules in code order."""
    return [CONCURRENCY_REGISTRY[code] for code in sorted(CONCURRENCY_REGISTRY)]


class ConcurrencyLinter:
    """Runs LNT006–LNT010 over a whole file set at once.

    Mirrors the :class:`~repro.analysis.engine.Linter` surface
    (``lint_paths`` → :class:`LintReport`) but parses every file into
    one :class:`ProjectGraph` before any rule runs.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
    ) -> None:
        active = set(CONCURRENCY_REGISTRY)
        if select is not None:
            wanted = set(select)
            unknown = wanted - active
            if unknown:
                raise ValueError(
                    f"unknown rule codes selected: {sorted(unknown)}"
                )
            active &= wanted
        if ignore is not None:
            active -= set(ignore)
        self.codes = active
        # Reuse the per-file engine's discovery walk (same exclusions,
        # same explicit-file semantics) without running its rules.
        self._discovery = Linter(rules=[], excluded_dirs=excluded_dirs)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_paths(self, paths: Sequence) -> LintReport:
        """Build the project graph from ``paths`` and run the rules."""
        files = self._discovery.discover(paths)
        sources = [
            (str(path), Path(path).read_text(encoding="utf-8"))
            for path in files
        ]
        return self.lint_sources(sources)

    def lint_sources(
        self, sources: Sequence[Tuple[str, str]]
    ) -> LintReport:
        """Lint ``(path, source)`` pairs as one program."""
        report = LintReport()
        units: List[SourceUnit] = []
        for path, source in sources:
            display = Path(path).as_posix()
            report.files_checked += 1
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as exc:
                report.findings.append(
                    Finding(
                        path=display,
                        line=exc.lineno or 1,
                        col=exc.offset or 1,
                        code="LNT000",
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            units.append(
                SourceUnit(
                    path=display,
                    module=module_name_for(display),
                    source=source,
                    tree=tree,
                    directives=Directives.parse(source),
                )
            )
        graph = ProjectGraph.build(units)
        suppression = {unit.path: unit.directives for unit in units}
        for finding in self._run_rules(graph):
            if finding.code not in self.codes:
                continue
            directives = suppression.get(finding.path)
            if directives is not None and directives.is_suppressed(
                finding.code, finding.line
            ):
                continue
            report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return report

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    def _run_rules(self, graph: ProjectGraph) -> Iterator[Finding]:
        for func in graph.functions.values():
            claimed = self._claimed_write_nodes(func)
            yield from self._lazy_init(func)  # LNT010
            yield from self._check_then_act(func)  # LNT009
            yield from self._unguarded_writes(graph, func, claimed)  # LNT006
            yield from self._blocking_under_lock(func)  # LNT008
        yield from self._lock_order_cycles(graph)  # LNT007

    # -- LNT006 ---------------------------------------------------------
    def _claimed_write_nodes(self, func: FunctionInfo) -> Set[int]:
        """Write nodes already reported through an LNT009/LNT010 ``if``.

        A lazy-init or check-then-act pattern *contains* unguarded
        writes; reporting those again as LNT006 would bury the precise
        finding under a generic one.
        """
        claimed: Set[int] = set()
        for check in func.checks:
            if not self._check_is_guarded(func, check):
                for node in check.write_nodes:
                    claimed.add(id(node))
        return claimed

    def _guard_ids(self, cls: Optional[ClassInfo]) -> Set[str]:
        return cls.guard_lock_ids() if cls is not None else set()

    def _write_is_guarded(
        self, func: FunctionInfo, held: Tuple[str, ...]
    ) -> bool:
        cls = func.cls
        if cls is not None and cls.shared:
            guards = self._guard_ids(cls)
            if guards:
                return bool(guards & set(held))
        # No declared/discoverable guard: any held lock counts.
        return bool(held)

    def _unguarded_writes(
        self,
        graph: ProjectGraph,
        func: FunctionInfo,
        claimed: Set[int],
    ) -> Iterator[Finding]:
        if func.name in INIT_METHODS:
            return
        cls = func.cls
        shared_method = cls is not None and cls.shared
        threaded = func.qualname in graph.thread_reachable
        if shared_method:
            skip = cls.exempt | cls.lock_attrs
            guard_names = ", ".join(sorted(self._guard_ids(cls))) or "a lock"
            for node, attr, held in func.attr_writes:
                if attr in skip or id(node) in claimed:
                    continue
                if self._write_is_guarded(func, held):
                    continue
                yield _finding(
                    func,
                    node,
                    "LNT006",
                    f"write to shared attribute self.{attr} of "
                    f"@shared_state class {cls.name} without holding "
                    f"{guard_names}; wrap in `with self."
                    f"{cls.guard or next(iter(sorted(cls.lock_attrs)), '_lock')}:`"
                    f" or mark the method @guarded_by",
                )
        elif threaded and cls is not None:
            for node, attr, held in func.attr_writes:
                if id(node) in claimed or held:
                    continue
                yield _finding(
                    func,
                    node,
                    "LNT006",
                    f"self.{attr} is written by thread-entry code "
                    f"({func.qualname} is reached from a threading.Thread "
                    f"target) without any lock held",
                )
        if threaded:
            for node, name, held in func.global_writes:
                if held or id(node) in claimed:
                    continue
                yield _finding(
                    func,
                    node,
                    "LNT006",
                    f"module global {name!r} is written by thread-reachable "
                    f"code without a module lock held",
                )

    # -- LNT007 ---------------------------------------------------------
    def _lock_order_cycles(self, graph: ProjectGraph) -> Iterator[Finding]:
        # Edge a -> b: lock b acquired while a is held, either lexically
        # or through one resolved call hop.  Sites remember first use.
        edges: Dict[str, Dict[str, Tuple[FunctionInfo, ast.AST]]] = {}

        def add_edge(a: str, b: str, func: FunctionInfo, node: ast.AST) -> None:
            if a == b:
                return  # reentrant same-lock nesting is LNT-neutral
            edges.setdefault(a, {}).setdefault(b, (func, node))

        for func in graph.functions.values():
            for lock_id, node, held in func.acquisitions:
                for prior in held:
                    add_edge(prior, lock_id, func, node)
            for call, held, callee in func.calls:
                if not held or callee is None:
                    continue
                target = graph.functions.get(callee)
                if target is None:
                    continue
                inner = set(target.acquired)
                if target.guarded_by:
                    inner.discard(target.guarded_by)
                for lock_id in inner:
                    for prior in held:
                        add_edge(prior, lock_id, func, call)

        for component in _cycles(edges):
            scc = set(component)
            sites = sorted(
                (
                    (func.path, node.lineno, a, b, func, node)
                    for a, targets in edges.items()
                    if a in scc
                    for b, (func, node) in targets.items()
                    if b in scc
                ),
            )
            if not sites:
                continue
            path, line, a, b, func, node = sites[0]
            order = " -> ".join(sorted(scc))
            locations = "; ".join(
                f"{x} then {y} at {p}:{l}" for p, l, x, y, _, _ in sites[:4]
            )
            yield _finding(
                func,
                node,
                "LNT007",
                f"inconsistent lock acquisition order among {{{order}}} "
                f"(deadlock hazard): {locations}",
            )

    # -- LNT008 ---------------------------------------------------------
    def _blocking_under_lock(self, func: FunctionInfo) -> Iterator[Finding]:
        for node, held, label in func.blocking:
            if not held:
                continue
            yield _finding(
                func,
                node,
                "LNT008",
                f"blocking call {label} while holding "
                f"{', '.join(sorted(set(held)))}; move the blocking work "
                f"outside the critical section",
            )

    # -- LNT009 / LNT010 ------------------------------------------------
    def _check_is_guarded(
        self, func: FunctionInfo, check: CheckThenAct
    ) -> bool:
        if check.scope == "global":
            return bool(check.held)
        return self._write_is_guarded(func, check.held)

    def _check_then_act(self, func: FunctionInfo) -> Iterator[Finding]:
        if func.name in INIT_METHODS:
            return
        for check in func.checks:
            if check.kind != "cta" or self._check_is_guarded(func, check):
                continue
            yield _finding(
                func,
                check.node,
                "LNT009",
                f"non-atomic check-then-act on self.{check.attr}: the test "
                f"and the mutation must happen under one lock or another "
                f"thread can interleave between them",
            )

    def _lazy_init(self, func: FunctionInfo) -> Iterator[Finding]:
        if func.name in INIT_METHODS:
            return
        for check in func.checks:
            if check.kind != "lazy" or self._check_is_guarded(func, check):
                continue
            subject = (
                f"module global {check.attr!r}"
                if check.scope == "global"
                else f"self.{check.attr}"
            )
            yield _finding(
                func,
                check.node,
                "LNT010",
                f"thread-unsafe lazy initialization of {subject}: two "
                f"threads can both observe None and initialize twice; "
                f"hold the guard lock around the check and the assignment",
            )


def _finding(
    func: FunctionInfo, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=func.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _cycles(edges: Dict[str, Dict[str, object]]) -> List[List[str]]:
    """Strongly connected components with ≥2 nodes (Tarjan)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []
    nodes = set(edges) | {b for targets in edges.values() for b in targets}

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth is unbounded on long chains.
        work = [(v, iter(sorted(edges.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    out.append(sorted(component))

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)
    return out


__all__ = [
    "CONCURRENCY_REGISTRY",
    "ConcurrencyLinter",
    "ConcurrencyRule",
    "iter_concurrency_rules",
]
