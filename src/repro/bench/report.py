"""Result reporting: JSON archives and Markdown rendering.

The text tables printed by the benches are ephemeral; this module
persists :class:`~repro.bench.harness.CellResult` grids as JSON (for
later comparison across machines or code versions) and renders them as
Markdown for EXPERIMENTS.md-style documents.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Sequence

from .harness import CellResult


def cell_to_dict(cell: CellResult) -> dict:
    """JSON-safe representation of one cell (per-user vectors dropped)."""
    return {
        "dataset": cell.dataset,
        "method": cell.method,
        "recall": cell.recall,
        "ndcg": cell.ndcg,
        "wall_time": cell.wall_time,
        "epochs_run": cell.epochs_run,
    }


def save_results(
    results: Mapping[str, Mapping[str, CellResult]], path: str
) -> None:
    """Persist a ``results[dataset][method]`` grid as JSON."""
    payload = {
        dataset: {method: cell_to_dict(cell) for method, cell in row.items()}
        for dataset, row in results.items()
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_results(path: str) -> Dict[str, Dict[str, dict]]:
    """Load a grid saved by :func:`save_results` (plain dicts)."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def to_markdown(
    results: Mapping[str, Mapping[str, CellResult]],
    method_order: Sequence[str],
    dataset_order: Sequence[str],
    metric: str = "recall",
) -> str:
    """Render a grid as a GitHub-flavoured Markdown table (%).

    Args:
        results: ``results[dataset][method]`` grid.
        method_order / dataset_order: row and column ordering.
        metric: ``"recall"`` or ``"ndcg"``.
    """
    if metric not in ("recall", "ndcg"):
        raise ValueError(f"metric must be 'recall' or 'ndcg', got {metric!r}")
    header = "| Model | " + " | ".join(dataset_order) + " |"
    separator = "|" + "---|" * (len(dataset_order) + 1)
    lines = [header, separator]
    for method in method_order:
        cells = []
        for dataset in dataset_order:
            cell = results.get(dataset, {}).get(method)
            cells.append(
                f"{100 * getattr(cell, metric):.2f}" if cell is not None else "-"
            )
        lines.append(f"| {method} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def compare_results(
    baseline: Mapping[str, Mapping[str, dict]],
    current: Mapping[str, Mapping[str, CellResult]],
    metric: str = "recall",
) -> Dict[str, Dict[str, float]]:
    """Relative change of ``current`` vs a loaded JSON ``baseline``.

    Returns ``deltas[dataset][method]`` as a signed fraction
    (``+0.05`` = five percent better than the archived run); methods or
    datasets absent from either side are skipped.
    """
    deltas: Dict[str, Dict[str, float]] = {}
    for dataset, row in current.items():
        if dataset not in baseline:
            continue
        for method, cell in row.items():
            old = baseline[dataset].get(method)
            if old is None or old.get(metric, 0.0) == 0.0:
                continue
            new_value = getattr(cell, metric)
            deltas.setdefault(dataset, {})[method] = (
                new_value / old[metric] - 1.0
            )
    return deltas
