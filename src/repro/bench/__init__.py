"""Benchmark harness regenerating the paper's tables and figures."""

from .harness import (
    BenchSettings,
    CellResult,
    prepare_split,
    run_method,
    run_method_seeds,
    run_recipe,
    run_table,
)
from .registry import ABLATIONS, EXTRAS, METHODS, TrainedMethod, build_imcat_recipe
from .plots import bar_chart, series_plot, sparkline
from .report import compare_results, load_results, save_results, to_markdown
from .sweep import PAPER_GRID, SweepResult, Trial, grid_search
from .tables import format_series, format_table, format_table2, normalize_series

__all__ = [
    "ABLATIONS",
    "BenchSettings",
    "CellResult",
    "EXTRAS",
    "METHODS",
    "PAPER_GRID",
    "SweepResult",
    "TrainedMethod",
    "Trial",
    "bar_chart",
    "build_imcat_recipe",
    "compare_results",
    "format_series",
    "format_table",
    "format_table2",
    "grid_search",
    "load_results",
    "normalize_series",
    "prepare_split",
    "run_method",
    "run_method_seeds",
    "run_recipe",
    "run_table",
    "save_results",
    "series_plot",
    "sparkline",
    "to_markdown",
]
