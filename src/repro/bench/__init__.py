"""Benchmark harness regenerating the paper's tables and figures."""

from .hotpaths import (
    HOTPATH_CONFIG,
    HotpathResult,
    bench_evaluator,
    bench_propagate,
    bench_sampler,
    compare_to_baseline,
    format_hotpath_table,
    load_hotpath_results,
    run_hotpath_suite,
    save_hotpath_results,
)
from .harness import (
    BenchSettings,
    CellResult,
    prepare_split,
    run_method,
    run_method_seeds,
    run_recipe,
    run_table,
)
from .registry import (
    ABLATIONS,
    EXTRAS,
    METHODS,
    MODEL_BUILDERS,
    TrainedMethod,
    build_imcat_recipe,
)
from .plots import bar_chart, series_plot, sparkline
from .report import compare_results, load_results, save_results, to_markdown
from .sweep import PAPER_GRID, SweepResult, Trial, grid_search
from .tables import format_series, format_table, format_table2, normalize_series

__all__ = [
    "ABLATIONS",
    "BenchSettings",
    "CellResult",
    "EXTRAS",
    "HOTPATH_CONFIG",
    "HotpathResult",
    "METHODS",
    "MODEL_BUILDERS",
    "PAPER_GRID",
    "SweepResult",
    "TrainedMethod",
    "Trial",
    "bar_chart",
    "bench_evaluator",
    "bench_propagate",
    "bench_sampler",
    "build_imcat_recipe",
    "compare_results",
    "compare_to_baseline",
    "format_hotpath_table",
    "format_series",
    "format_table",
    "format_table2",
    "grid_search",
    "load_hotpath_results",
    "load_results",
    "normalize_series",
    "prepare_split",
    "run_hotpath_suite",
    "run_method",
    "run_method_seeds",
    "run_recipe",
    "run_table",
    "save_hotpath_results",
    "save_results",
    "series_plot",
    "sparkline",
    "to_markdown",
]
