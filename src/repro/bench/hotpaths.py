"""Hot-path micro-benchmarks: evaluator and sampler throughput.

The two hottest loops of every experiment are full-ranking evaluation
and BPR negative sampling.  Both now have a vectorized fast path plus
the original per-row reference implementation
(:meth:`~repro.eval.Evaluator.evaluate_reference`,
``sample_negatives_reference``); this module times the two against each
other on a synthetic dataset, checks the outputs agree, and persists
the throughputs as JSON (``BENCH_hotpaths.json``) so the perf
trajectory is tracked across code versions.

Used from three places: the pytest bench (``benchmarks/bench_hotpaths.py``),
the tier-2 smoke target (``python -m repro.bench smoke``), and ad hoc
profiling sessions.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data import (
    BPRSampler,
    ItemTagSampler,
    SyntheticConfig,
    generate,
    generate_preset,
    split_dataset,
)
from ..eval import Evaluator

#: The dedicated hot-path benchmark dataset: user-heavy and item-light,
#: the regime where full-ranking evaluation is bound by per-user work
#: rather than by the O(|V|) score selection both paths share.  Serving
#: workloads look like this (many users, a curated catalogue), and it
#: makes the benchmark sensitive to per-row Python creeping back into
#: the hot loops.
HOTPATH_CONFIG = SyntheticConfig(
    name="hotpath-bench",
    num_users=6000,
    num_items=300,
    num_tags=400,
    num_factors=8,
    mean_user_degree=12.0,
    mean_item_tags=10.0,
)


@dataclass
class HotpathResult:
    """Fast-vs-reference timing of one hot path."""

    name: str
    units: int
    fast_seconds: float
    reference_seconds: float
    max_abs_diff: float

    @property
    def fast_throughput(self) -> float:
        """Units (users ranked / triplets sampled) per second, fast path."""
        return self.units / self.fast_seconds if self.fast_seconds > 0 else 0.0

    @property
    def reference_throughput(self) -> float:
        return (
            self.units / self.reference_seconds
            if self.reference_seconds > 0
            else 0.0
        )

    @property
    def speedup(self) -> float:
        return (
            self.reference_seconds / self.fast_seconds
            if self.fast_seconds > 0
            else 0.0
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "units": self.units,
            "fast_seconds": self.fast_seconds,
            "reference_seconds": self.reference_seconds,
            "fast_throughput": self.fast_throughput,
            "reference_throughput": self.reference_throughput,
            "speedup": self.speedup,
            "max_abs_diff": self.max_abs_diff,
        }


class _FactorScorer:
    """Deterministic dense scorer standing in for a trained model.

    A random low-rank factor model: continuous scores (no ties, so the
    fast and reference rankings are comparable) at one matmul per
    chunk, which keeps scoring cost from masking the ranking loop this
    benchmark targets.
    """

    def __init__(
        self, num_users: int, num_items: int, dim: int = 32, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        self._user = rng.normal(size=(num_users, dim))
        self._item = rng.normal(size=(num_items, dim))

    def all_scores(self, users: np.ndarray) -> np.ndarray:
        return self._user[users] @ self._item.T


def _best_of(func: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_evaluator(
    split,
    top_n: Sequence[int] = (20,),
    embed_dim: int = 32,
    chunk_size: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> HotpathResult:
    """Time the vectorized evaluator against the per-user reference.

    ``max_abs_diff`` is the largest per-user metric discrepancy between
    the two paths — the acceptance bound is 1e-9.
    """
    evaluator = Evaluator(
        split.train, split.test, top_n=top_n, metrics=("recall", "ndcg")
    )
    model = _FactorScorer(
        split.train.num_users, split.train.num_items, embed_dim, seed
    )
    fast_s, fast = _best_of(
        lambda: evaluator.evaluate(model, chunk_size=chunk_size), repeats
    )
    ref_s, ref = _best_of(
        lambda: evaluator.evaluate_reference(model, chunk_size=chunk_size), repeats
    )
    diff = max(
        float(np.max(np.abs(fast.per_user[key] - ref.per_user[key])))
        for key in fast.per_user
    )
    return HotpathResult(
        name="evaluator",
        units=len(evaluator.eval_users),
        fast_seconds=fast_s,
        reference_seconds=ref_s,
        max_abs_diff=diff,
    )


def bench_sampler(
    dataset,
    kind: str = "user-item",
    batch_size: int = 1024,
    repeats: int = 3,
    seed: int = 0,
) -> HotpathResult:
    """Time vectorized negative sampling against the set-based loop.

    Both paths consume the RNG identically, so two same-seed samplers
    produce bit-identical negatives — ``max_abs_diff`` is the largest
    index discrepancy and must be exactly 0.
    """
    if kind == "user-item":
        make = lambda s: BPRSampler(dataset, seed=s)  # noqa: E731
    elif kind == "item-tag":
        make = lambda s: ItemTagSampler(dataset, seed=s)  # noqa: E731
    else:
        raise ValueError(f"kind must be 'user-item' or 'item-tag', got {kind!r}")

    def epoch_of_negatives(method_name: str) -> Callable[[], np.ndarray]:
        # A fresh same-seed sampler per run: both paths consume the RNG
        # identically and pay their own construction cost.
        def once() -> np.ndarray:
            sampler = make(seed)
            sample = getattr(sampler, method_name)
            out = []
            for start in range(0, sampler.num_positives, batch_size):
                out.append(sample(sampler.anchors[start : start + batch_size]))
            return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

        return once

    fast_s, fast = _best_of(epoch_of_negatives("sample_negatives"), repeats)
    ref_s, ref = _best_of(epoch_of_negatives("sample_negatives_reference"), repeats)
    diff = float(np.max(np.abs(fast - ref))) if len(fast) else 0.0
    return HotpathResult(
        name=f"sampler/{kind}",
        units=len(fast),
        fast_seconds=fast_s,
        reference_seconds=ref_s,
        max_abs_diff=diff,
    )


def bench_propagate(
    dataset,
    split,
    kind: str = "dgcf",
    embed_dim: int = 64,
    num_intents: int = 4,
    repeats: int = 3,
    seed: int = 0,
) -> HotpathResult:
    """Time a baseline's vectorized propagation against its per-intent
    reference loop (``propagate`` vs ``propagate_reference``).

    ``max_abs_diff`` is the largest entry-wise discrepancy across the
    user and item outputs; both paths compute the same math, so the
    acceptance bound is FP-roundoff scale.
    """
    from ..models.baselines.dgcf import DGCF
    from ..models.baselines.kgin import KGIN
    from ..nn import no_grad

    rng = np.random.default_rng(seed)
    edges = (split.train.user_ids, split.train.item_ids)
    if kind == "dgcf":
        model = DGCF(
            dataset.num_users, dataset.num_items, edges,
            embed_dim=embed_dim, num_intents=num_intents, rng=rng,
        )
    elif kind == "kgin":
        model = KGIN(
            dataset, edges,
            embed_dim=embed_dim, num_intents=num_intents, rng=rng,
        )
    else:
        raise ValueError(f"kind must be 'dgcf' or 'kgin', got {kind!r}")
    with no_grad():
        fast_s, fast = _best_of(model.propagate, repeats)
        ref_s, ref = _best_of(model.propagate_reference, repeats)
    diff = max(
        float(np.max(np.abs(f.data - r.data)))
        for f, r in zip(fast, ref)
    )
    return HotpathResult(
        name=f"propagate/{kind}",
        units=dataset.num_users + dataset.num_items,
        fast_seconds=fast_s,
        reference_seconds=ref_s,
        max_abs_diff=diff,
    )


def run_hotpath_suite(
    dataset_name: Optional[str] = None,
    scale: float = 1.0,
    seed: int = 1,
    split_seed: int = 2,
    batch_size: int = 1024,
    repeats: int = 3,
) -> Dict[str, dict]:
    """Run all hot-path benchmarks on one synthetic dataset.

    With no ``dataset_name`` the dedicated :data:`HOTPATH_CONFIG`
    dataset is used (``scale`` shrinks it for smoke runs); a Table I
    preset name measures the paths under that dataset's shape instead.

    Returns a JSON-safe payload: settings plus one entry per benchmark.
    """
    if dataset_name is None:
        config = HOTPATH_CONFIG
        if scale != 1.0:
            config = config.scaled(scale)
        dataset = generate(config, seed=seed)
        dataset_label = config.name
    else:
        dataset = generate_preset(dataset_name, scale=scale, seed=seed)
        dataset_label = dataset_name
    split = split_dataset(dataset, seed=split_seed)
    results = [
        bench_evaluator(split, repeats=repeats),
        bench_sampler(split.train, "user-item", batch_size, repeats),
        bench_sampler(dataset, "item-tag", batch_size, repeats),
        bench_propagate(dataset, split, "dgcf", repeats=repeats),
        bench_propagate(dataset, split, "kgin", repeats=repeats),
    ]
    return {
        "settings": {
            "dataset": dataset_label,
            "scale": scale,
            "seed": seed,
            "batch_size": batch_size,
            "repeats": repeats,
        },
        "results": {result.name: result.as_dict() for result in results},
    }


def save_hotpath_results(payload: Dict[str, dict], path: str) -> None:
    """Persist a suite payload as ``BENCH_hotpaths.json``-style JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_hotpath_results(path: str) -> Dict[str, dict]:
    """Read back a payload written by :func:`save_hotpath_results`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    current: Dict[str, dict],
    baseline: Dict[str, dict],
    max_regression: float = 2.0,
) -> List[str]:
    """Throughput regressions of ``current`` versus ``baseline``.

    Returns human-readable failure strings for every benchmark whose
    fast-path throughput fell below ``baseline / max_regression``
    (absolute wall-clock comparisons across machines are noisy, so the
    tolerance is deliberately loose — the check catches the fast path
    silently degrading to reference speed, not minor jitter).
    """
    failures: List[str] = []
    for name, base in baseline.get("results", {}).items():
        cur = current.get("results", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["fast_throughput"] / max_regression
        if cur["fast_throughput"] < floor:
            failures.append(
                f"{name}: throughput {cur['fast_throughput']:.0f}/s is below "
                f"{floor:.0f}/s (baseline {base['fast_throughput']:.0f}/s "
                f"/ {max_regression:g})"
            )
    return failures


def format_hotpath_table(payload: Dict[str, dict]) -> str:
    """Text table of a suite payload (mirrors the bench tables' style)."""
    from .tables import format_table

    rows = []
    for name, result in sorted(payload["results"].items()):
        rows.append(
            [
                name,
                result["units"],
                result["fast_throughput"],
                result["reference_throughput"],
                result["speedup"],
                result["max_abs_diff"],
            ]
        )
    settings = payload.get("settings", {})
    title = (
        f"hot paths ({settings.get('dataset', '?')} @ "
        f"scale={settings.get('scale', '?')})"
    )
    return format_table(
        ["path", "units", "fast/s", "ref/s", "speedup", "max |diff|"],
        rows,
        title=title,
    )
