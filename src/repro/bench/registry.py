"""Method registry: build-and-train recipes for every method in Table II.

Each entry maps a method name to a factory that, given a dataset split
and seed, constructs, trains, and returns the model together with its
training wall time.  Ablation variants (Table III) are registered with
``N-IMCAT w/o ...`` / ``L-IMCAT w/o ...`` names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from ..data.dataset import TagRecDataset
from ..data.split import Split
from ..models import BPRMF, LightGCN, NeuMF, TrainConfig, fit_bpr
from ..models import baselines as B


@dataclass
class TrainedMethod:
    """A trained model plus bookkeeping for the efficiency analysis."""

    name: str
    model: object
    wall_time: float
    epochs_run: int


#: Per-method epoch budgets at bench scale (the shared protocol trains
#: all methods to convergence with early stopping; these are ceilings).
DEFAULT_EPOCHS = 80


def _train_interactions(split: Split):
    return (split.train.user_ids, split.train.item_ids)


def _simple(builder: Callable) -> Callable:
    """Wrap a model builder into the standard fit_bpr training recipe.

    Extra keyword arguments (e.g. ``checkpoint_dir`` / ``resume_from``)
    are forwarded into :class:`~repro.models.TrainConfig`.
    """

    def recipe(
        dataset: TagRecDataset,
        split: Split,
        embed_dim: int,
        seed: int,
        epochs: int,
        batch_size: int,
        **train_overrides,
    ) -> TrainedMethod:
        rng = np.random.default_rng(seed)
        model = builder(dataset, split, embed_dim, rng)
        start = time.time()
        result = fit_bpr(
            model,
            split,
            TrainConfig(
                epochs=epochs, batch_size=batch_size, seed=seed,
                eval_every=5, patience=4, **train_overrides,
            ),
        )
        return TrainedMethod(
            name=builder.__name__,
            model=model,
            wall_time=time.time() - start,
            epochs_run=result.epochs_run,
        )

    return recipe


def _imcat(backbone_builder: Callable, config: Optional[IMCATConfig] = None) -> Callable:
    """Wrap a backbone builder into the IMCAT training recipe.

    Extra keyword arguments (e.g. ``checkpoint_dir`` / ``resume_from``)
    are forwarded into :class:`~repro.core.IMCATTrainConfig`.
    """

    def recipe(
        dataset: TagRecDataset,
        split: Split,
        embed_dim: int,
        seed: int,
        epochs: int,
        batch_size: int,
        **train_overrides,
    ) -> TrainedMethod:
        rng = np.random.default_rng(seed)
        backbone = backbone_builder(dataset, split, embed_dim, rng)
        imcat_config = config or IMCATConfig()
        model = IMCAT(backbone, dataset, split.train, imcat_config, rng=rng)
        trainer = IMCATTrainer(
            model,
            split,
            IMCATTrainConfig(
                epochs=epochs, batch_size=batch_size, seed=seed,
                eval_every=5, patience=4, **train_overrides,
            ),
        )
        start = time.time()
        result = trainer.fit()
        return TrainedMethod(
            name="imcat",
            model=model,
            wall_time=time.time() - start,
            epochs_run=result.epochs_run,
        )

    return recipe


# ---------------------------------------------------------------------------
# backbone builders
# ---------------------------------------------------------------------------

def _bprmf(dataset, split, embed_dim, rng):
    return BPRMF(dataset.num_users, dataset.num_items, embed_dim, rng)


def _neumf(dataset, split, embed_dim, rng):
    return NeuMF(dataset.num_users, dataset.num_items, embed_dim, rng=rng)


def _lightgcn(dataset, split, embed_dim, rng):
    return LightGCN(
        dataset.num_users, dataset.num_items, _train_interactions(split),
        embed_dim, rng=rng,
    )


def _cfa(dataset, split, embed_dim, rng):
    return B.CFA(split.train, embed_dim, rng)


def _dspr(dataset, split, embed_dim, rng):
    return B.DSPR(split.train, embed_dim, rng)


def _tgcn(dataset, split, embed_dim, rng):
    return B.TGCN(dataset, _train_interactions(split), embed_dim, rng=rng)


def _cke(dataset, split, embed_dim, rng):
    return B.CKE(dataset, embed_dim, rng=rng)


def _ripplenet(dataset, split, embed_dim, rng):
    return B.RippleNet(dataset, _train_interactions(split), embed_dim, rng=rng)


def _kgat(dataset, split, embed_dim, rng):
    return B.KGAT(dataset, _train_interactions(split), embed_dim, rng=rng)


def _kgin(dataset, split, embed_dim, rng):
    return B.KGIN(dataset, _train_interactions(split), embed_dim, rng=rng)


def _sgl(dataset, split, embed_dim, rng):
    return B.SGL(
        dataset.num_users, dataset.num_items, _train_interactions(split),
        embed_dim, rng=rng,
    )


def _kgcl(dataset, split, embed_dim, rng):
    return B.KGCL(dataset, _train_interactions(split), embed_dim, rng=rng)


#: Table II rows, in paper order.
METHODS: Dict[str, Callable] = {
    "BPRMF": _simple(_bprmf),
    "NeuMF": _simple(_neumf),
    "LightGCN": _simple(_lightgcn),
    "CFA": _simple(_cfa),
    "DSPR": _simple(_dspr),
    "TGCN": _simple(_tgcn),
    "CKE": _simple(_cke),
    "RippleNet": _simple(_ripplenet),
    "KGAT": _simple(_kgat),
    "KGIN": _simple(_kgin),
    "SGL": _simple(_sgl),
    "KGCL": _simple(_kgcl),
    "B-IMCAT": _imcat(_bprmf),
    "N-IMCAT": _imcat(_neumf),
    "L-IMCAT": _imcat(_lightgcn),
}

def _dgcf(dataset, split, embed_dim, rng):
    return B.DGCF(
        dataset.num_users, dataset.num_items, _train_interactions(split),
        embed_dim, rng=rng,
    )


def _fm(dataset, split, embed_dim, rng):
    return B.FM(dataset, embed_dim, rng=rng)


#: Extra baselines beyond the paper's Table II roster: DGCF (the
#: intent-disentanglement model IRM follows, ref [10]) and FM (the
#: classic feature-based route, ref [3]).
EXTRAS: Dict[str, Callable] = {
    "DGCF": _simple(_dgcf),
    "FM": _simple(_fm),
}

#: Every plain (non-IMCAT) model, name -> builder(dataset, split,
#: embed_dim, rng).  Used by the persistence round-trip tests and any
#: caller that needs an untrained instance outside the training recipes.
MODEL_BUILDERS: Dict[str, Callable] = {
    "BPRMF": _bprmf,
    "NeuMF": _neumf,
    "LightGCN": _lightgcn,
    "CFA": _cfa,
    "DSPR": _dspr,
    "TGCN": _tgcn,
    "CKE": _cke,
    "RippleNet": _ripplenet,
    "KGAT": _kgat,
    "KGIN": _kgin,
    "SGL": _sgl,
    "KGCL": _kgcl,
    "DGCF": _dgcf,
    "FM": _fm,
}

#: Table III ablation variants.
ABLATIONS: Dict[str, Callable] = {}
for _prefix, _builder in (("N", _neumf), ("L", _lightgcn)):
    ABLATIONS[f"{_prefix}-IMCAT"] = _imcat(_builder)
    ABLATIONS[f"{_prefix}-IMCAT w/o UIT"] = _imcat(
        _builder, IMCATConfig().without_uit()
    )
    ABLATIONS[f"{_prefix}-IMCAT w/o UT"] = _imcat(
        _builder, IMCATConfig().without_ut()
    )
    ABLATIONS[f"{_prefix}-IMCAT w/o UI"] = _imcat(
        _builder, IMCATConfig().without_ui()
    )
    ABLATIONS[f"{_prefix}-IMCAT w/o NLT"] = _imcat(
        _builder, IMCATConfig().without_nlt()
    )


def build_imcat_recipe(
    backbone: str, config: IMCATConfig
) -> Callable:
    """Custom IMCAT recipe for sweeps (Fig. 5 / Fig. 6).

    Args:
        backbone: "bprmf", "neumf", or "lightgcn".
        config: the IMCAT configuration to train with.
    """
    builders = {"bprmf": _bprmf, "neumf": _neumf, "lightgcn": _lightgcn}
    key = backbone.lower()
    if key not in builders:
        raise KeyError(f"unknown backbone {backbone!r}; choose from {sorted(builders)}")
    return _imcat(builders[key], config)
