"""Experiment harness: run (dataset, method) cells and collect metrics.

One :func:`run_method` call reproduces one cell of Table II: generate
the dataset, split it, train the method via its registry recipe, and
evaluate Recall@20 / NDCG@20 on the test set.  Results carry wall-clock
time for the Fig. 9 efficiency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .. import obs
from ..data import generate_preset, split_dataset
from ..data.split import Split
from ..eval import EvalResult, Evaluator
from .registry import ABLATIONS, EXTRAS, METHODS, TrainedMethod


@dataclass
class BenchSettings:
    """Scale and budget knobs shared by all benchmark runs.

    The defaults trade fidelity for CPU wall-clock: datasets are scaled
    to roughly a tenth of Table I and epochs are capped at 80 with early
    stopping.  EXPERIMENTS.md records the effect of this reduction.
    """

    scale: float = 0.1
    embed_dim: int = 32
    epochs: int = 80
    batch_size: int = 512
    data_seed: int = 1
    split_seed: int = 2
    train_seed: int = 7
    top_n: int = 20
    checkpoint_dir: Optional[str] = None
    """Snapshot training state under this directory (see
    :mod:`repro.ckpt`); ``None`` keeps checkpointing off."""
    checkpoint_every: int = 1
    """Epoch interval between snapshots when ``checkpoint_dir`` is set."""
    keep_last: int = 3
    """Rolling retention for snapshots (newest kept, plus the best)."""
    resume_from: Optional[str] = None
    """``"auto"`` or a checkpoint path/directory to resume from."""
    fused: bool = False
    """Train under :func:`repro.nn.fusion.fused_mode` (bit-identical to
    the eager tape; see the differential suite)."""
    dp_workers: int = 0
    """Data-parallel worker count (``0`` keeps the serial loops)."""
    dp_backend: str = "fork"
    """``"fork"`` or ``"inline"`` (see :mod:`repro.train.parallel`)."""

    def train_overrides(self) -> Dict[str, object]:
        """Checkpoint/resume and execution-mode keywords to forward
        into a recipe's train config (empty at the defaults)."""
        overrides: Dict[str, object] = {}
        if self.checkpoint_dir is not None:
            overrides.update(
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
                keep_last=self.keep_last,
            )
        if self.resume_from is not None:
            overrides["resume_from"] = self.resume_from
        if self.fused:
            overrides["fused"] = True
        if self.dp_workers:
            overrides["dp_workers"] = self.dp_workers
            overrides["dp_backend"] = self.dp_backend
        return overrides


@dataclass
class CellResult:
    """One (dataset, method) cell of a results table."""

    dataset: str
    method: str
    recall: float
    ndcg: float
    wall_time: float
    epochs_run: int
    per_user_recall: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))
    trained: Optional[TrainedMethod] = field(repr=False, default=None)


def prepare_split(dataset_name: str, settings: BenchSettings):
    """Generate a scaled preset dataset and split it 7:1:2."""
    dataset = generate_preset(
        dataset_name, scale=settings.scale, seed=settings.data_seed
    )
    split = split_dataset(dataset, seed=settings.split_seed)
    return dataset, split


def run_recipe(
    recipe: Callable,
    dataset,
    split: Split,
    method_name: str,
    settings: BenchSettings,
    keep_model: bool = False,
) -> CellResult:
    """Train one recipe and evaluate it on the test set."""
    tracer = obs.get_tracer()
    with tracer.span(
        "bench:cell", dataset=dataset.name, method=method_name
    ) as span:
        trained = recipe(
            dataset,
            split,
            settings.embed_dim,
            settings.train_seed,
            settings.epochs,
            settings.batch_size,
            **settings.train_overrides(),
        )
        evaluator = Evaluator(
            split.train, split.test,
            top_n=(settings.top_n,), metrics=("recall", "ndcg"),
        )
        with tracer.span("eval", stage="test"):
            result: EvalResult = evaluator.evaluate(
                trained.model, tracer=tracer
            )
        span.set_attributes(
            recall=result[f"recall@{settings.top_n}"],
            epochs_run=trained.epochs_run,
        )
    return CellResult(
        dataset=dataset.name,
        method=method_name,
        recall=result[f"recall@{settings.top_n}"],
        ndcg=result[f"ndcg@{settings.top_n}"],
        wall_time=trained.wall_time,
        epochs_run=trained.epochs_run,
        per_user_recall=result.per_user[f"recall@{settings.top_n}"],
        trained=trained if keep_model else None,
    )


def run_method(
    dataset_name: str,
    method_name: str,
    settings: Optional[BenchSettings] = None,
    keep_model: bool = False,
) -> CellResult:
    """Run one Table II cell end to end.

    Args:
        dataset_name: a Table I dataset name.
        method_name: a Table II method or Table III ablation name.
        settings: scale/budget knobs.
        keep_model: retain the trained model on the result (needed for
            the group analyses of Figs. 7-8).
    """
    settings = settings or BenchSettings()
    recipe = (
        METHODS.get(method_name)
        or ABLATIONS.get(method_name)
        or EXTRAS.get(method_name)
    )
    if recipe is None:
        raise KeyError(
            f"unknown method {method_name!r}; available: "
            f"{sorted(set(METHODS) | set(ABLATIONS) | set(EXTRAS))}"
        )
    dataset, split = prepare_split(dataset_name, settings)
    return run_recipe(recipe, dataset, split, method_name, settings, keep_model)


def run_method_seeds(
    dataset_name: str,
    method_name: str,
    seeds: Sequence[int],
    settings: Optional[BenchSettings] = None,
) -> CellResult:
    """Run one cell under several training seeds and average the metrics.

    Mirrors the paper's protocol (Section V.B): the data partition is
    fixed, parameter initialisation varies, and the mean is reported.
    Per-user recalls are averaged user-wise so significance tests remain
    valid on the averaged vector.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    settings = settings or BenchSettings()
    cells = []
    for seed in seeds:
        from dataclasses import replace

        cells.append(
            run_method(
                dataset_name, method_name,
                replace(settings, train_seed=seed),
            )
        )
    return CellResult(
        dataset=cells[0].dataset,
        method=method_name,
        recall=float(np.mean([c.recall for c in cells])),
        ndcg=float(np.mean([c.ndcg for c in cells])),
        wall_time=float(np.mean([c.wall_time for c in cells])),
        epochs_run=int(np.mean([c.epochs_run for c in cells])),
        per_user_recall=np.mean([c.per_user_recall for c in cells], axis=0),
    )


def run_table(
    dataset_names: Sequence[str],
    method_names: Sequence[str],
    settings: Optional[BenchSettings] = None,
) -> Dict[str, Dict[str, CellResult]]:
    """Run a grid of cells; returns ``results[dataset][method]``."""
    settings = settings or BenchSettings()
    results: Dict[str, Dict[str, CellResult]] = {}
    for dataset_name in dataset_names:
        dataset, split = prepare_split(dataset_name, settings)
        row: Dict[str, CellResult] = {}
        for method_name in method_names:
            recipe = (
                METHODS.get(method_name)
                or ABLATIONS.get(method_name)
                or EXTRAS.get(method_name)
            )
            if recipe is None:
                raise KeyError(f"unknown method {method_name!r}")
            row[method_name] = run_recipe(
                recipe, dataset, split, method_name, settings
            )
        results[dataset_name] = row
    return results
