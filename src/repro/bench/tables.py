"""Formatting helpers: render results in the layout of the paper's
tables and figures."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with aligned columns."""
    columns = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(row[i])) for row in columns) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table2(
    results: Mapping[str, Mapping[str, object]],
    method_order: Sequence[str],
    dataset_order: Sequence[str],
) -> str:
    """Render Table II: methods x datasets with R@20 / N@20 percent."""
    headers = ["Model"] + [
        part for name in dataset_order for part in (f"{name} R@20", f"{name} N@20")
    ]
    rows = []
    for method in method_order:
        row: list = [method]
        for dataset in dataset_order:
            cell = results.get(dataset, {}).get(method)
            if cell is None:
                row.extend(["-", "-"])
            else:
                row.extend([100.0 * cell.recall, 100.0 * cell.ndcg])
        rows.append(row)
    return format_table(headers, rows, title="Table II (reproduced, %)")


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render a figure as one row per series (for Figs. 5-9)."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = [[name] + list(values) for name, values in series.items()]
    return format_table(headers, rows, title=title)


def normalize_series(series: Mapping[str, Sequence[float]]) -> Dict[str, np.ndarray]:
    """Column-wise normalisation into [0, 1] (Figs. 7-8 presentation)."""
    names = list(series)
    matrix = np.asarray([series[name] for name in names], dtype=np.float64)
    best = matrix.max(axis=0)
    best = np.where(best > 0, best, 1.0)
    return {name: matrix[i] / best for i, name in enumerate(names)}
