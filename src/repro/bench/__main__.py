"""``python -m repro.bench`` — perf smoke targets for CI.

Commands::

    python -m repro.bench smoke            # tiny hot-path run + baseline gate
    python -m repro.bench smoke --update-baseline
    python -m repro.bench hotpaths         # full-size hot-path suite

``smoke`` runs the evaluator/sampler hot-path benchmarks on the tiny
(scaled-down) synthetic benchmark dataset and exits non-zero when the
fast-path evaluator or sampler throughput regresses more than the
tolerance (default 2x) versus the recorded baseline JSON
(``benchmarks/BENCH_hotpaths.json``).  It also fails when the fast and
reference paths disagree, so the gate catches correctness drift too.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .hotpaths import (
    compare_to_baseline,
    format_hotpath_table,
    load_hotpath_results,
    run_hotpath_suite,
    save_hotpath_results,
)

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))),
    "benchmarks",
    "BENCH_hotpaths.json",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="hot-path perf smoke runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for name, default_scale in (("smoke", 1.0), ("hotpaths", 1.0)):
        cmd = commands.add_parser(
            name,
            help=(
                "tiny hot-path run gated on the recorded baseline"
                if name == "smoke"
                else "full-size hot-path suite"
            ),
        )
        cmd.add_argument("--scale", type=float, default=default_scale)
        cmd.add_argument("--repeats", type=int, default=3)
        cmd.add_argument("--baseline", default=DEFAULT_BASELINE)
        cmd.add_argument(
            "--update-baseline", action="store_true",
            help="record this run as the new baseline JSON",
        )
        cmd.add_argument(
            "--tolerance", type=float, default=2.0,
            help="maximum allowed throughput regression factor",
        )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    payload = run_hotpath_suite(scale=args.scale, repeats=args.repeats)
    print(format_hotpath_table(payload))

    failures = []
    for name, result in payload["results"].items():
        if result["max_abs_diff"] > 1e-9:
            failures.append(
                f"{name}: fast/reference outputs diverge by "
                f"{result['max_abs_diff']:.2e}"
            )

    if args.update_baseline:
        save_hotpath_results(payload, args.baseline)
        print(f"baseline updated: {args.baseline}")
    elif args.command != "smoke":
        pass  # `hotpaths` measures without gating
    elif os.path.exists(args.baseline):
        baseline = load_hotpath_results(args.baseline)
        if baseline.get("settings", {}).get("scale") != args.scale:
            print(
                f"note: baseline scale "
                f"{baseline.get('settings', {}).get('scale')} differs from "
                f"current {args.scale}; throughput gate skipped"
            )
        else:
            failures.extend(
                compare_to_baseline(payload, baseline, args.tolerance)
            )
    else:
        print(f"note: no baseline at {args.baseline}; throughput gate skipped")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("hot-path smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
