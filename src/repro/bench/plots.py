"""Terminal plots: ASCII bar charts and sparklines for the figure benches.

The paper's Figs. 5-9 are bar/line charts; the benches print their data
as tables, and these helpers render the same series as quick visual
shapes directly in the terminal log — no plotting dependency needed.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a numeric series."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def bar_chart(
    series: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, one row per labelled value."""
    if not series:
        return ""
    peak = max(abs(v) for v in series.values())
    scale = width / peak if peak > 0 else 0.0
    label_width = max(len(str(k)) for k in series)
    lines = []
    for label, value in series.items():
        bar = "#" * max(int(abs(value) * scale), 0)
        lines.append(f"{str(label).ljust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def series_plot(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Multi-series summary: one sparkline per series with its range.

    Mirrors how the paper's line charts are read — shape first, exact
    values from the accompanying table.
    """
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(str(k)) for k in series), default=0)
    lines.append(
        f"{' ' * label_width}  x: {', '.join(str(x) for x in x_values)}"
    )
    for label, values in series.items():
        values = list(values)
        spark = sparkline(values)
        lines.append(
            f"{str(label).ljust(label_width)}  {spark}  "
            f"[{min(values):.3g} .. {max(values):.3g}]"
        )
    return "\n".join(lines)
