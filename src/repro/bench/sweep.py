"""Hyper-parameter grid search (the paper's Section V.D protocol).

"Grid search is applied to choose the scaling factors alpha, beta,
gamma ... tuned from {1e-3, 1e-2, 1e-1, 1, 5, 10}", the ISA threshold
from {0.1 .. 0.9}, and K from {1, 2, 4, 8, 16}.  This module runs that
search against validation Recall@20 for any backbone, returning every
trial for analysis plus the winning configuration.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from ..core import IMCATConfig
from ..data.dataset import TagRecDataset
from ..data.split import Split
from .registry import build_imcat_recipe

#: The paper's search spaces (Section V.D).
PAPER_GRID: Dict[str, Sequence] = {
    "alpha": (1e-3, 1e-2, 1e-1, 1.0, 5.0, 10.0),
    "beta": (1e-3, 1e-2, 1e-1, 1.0, 5.0, 10.0),
    "gamma": (1e-3, 1e-2, 1e-1, 1.0, 5.0, 10.0),
    "delta": (0.1, 0.3, 0.5, 0.7, 0.9),
    "num_intents": (1, 2, 4, 8, 16),
}


@dataclass(frozen=True)
class Trial:
    """One grid-search evaluation."""

    params: Dict[str, object]
    valid_metric: float
    wall_time: float


@dataclass
class SweepResult:
    """All trials plus the winner."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise ValueError("sweep produced no trials")
        return max(self.trials, key=lambda t: t.valid_metric)

    def best_config(self, base: Optional[IMCATConfig] = None) -> IMCATConfig:
        """The winning parameters applied onto ``base``."""
        return replace(base or IMCATConfig(), **self.best.params)

    def table(self) -> List[List[object]]:
        """Rows (params…, metric, seconds) sorted best-first."""
        ordered = sorted(self.trials, key=lambda t: -t.valid_metric)
        return [
            [*(trial.params.values()), trial.valid_metric, trial.wall_time]
            for trial in ordered
        ]


def grid_search(
    backbone: str,
    dataset: TagRecDataset,
    split: Split,
    param_grid: Mapping[str, Sequence],
    base_config: Optional[IMCATConfig] = None,
    embed_dim: int = 32,
    epochs: int = 30,
    batch_size: int = 512,
    seed: int = 0,
    max_trials: Optional[int] = None,
) -> SweepResult:
    """Exhaustive grid search over IMCAT hyper-parameters.

    Args:
        backbone: "bprmf", "neumf", or "lightgcn".
        dataset / split: the data (validation drives the selection).
        param_grid: mapping of :class:`IMCATConfig` field names to the
            candidate values (e.g. a subset of :data:`PAPER_GRID`).
        base_config: defaults for the fields not being searched.
        max_trials: optional cap on the number of combinations
            (combinations beyond it are skipped in grid order).

    Returns:
        A :class:`SweepResult` with every trial.
    """
    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    base = base_config or IMCATConfig()
    names = list(param_grid)
    result = SweepResult()
    for index, values in enumerate(itertools.product(*param_grid.values())):
        if max_trials is not None and index >= max_trials:
            break
        params = dict(zip(names, values))
        try:
            config = replace(base, **params)
        except ValueError:
            # e.g. num_intents not dividing embed_dim: skip invalid cells.
            continue
        if embed_dim % config.num_intents != 0:
            continue
        recipe = build_imcat_recipe(backbone, config)
        start = time.time()
        trained = recipe(dataset, split, embed_dim, seed, epochs, batch_size)
        from ..eval import Evaluator

        evaluator = Evaluator(
            split.train, split.valid, top_n=(20,), metrics=("recall",)
        )
        metric = evaluator.evaluate(trained.model)["recall@20"]
        result.trials.append(
            Trial(
                params=params,
                valid_metric=float(metric),
                wall_time=time.time() - start,
            )
        )
    return result
