"""Alias package so the linter runs as ``python -m repro.lint``.

The implementation lives in :mod:`repro.analysis`; this package only
re-exports the CLI entry point.
"""

from ..analysis.cli import main

__all__ = ["main"]
