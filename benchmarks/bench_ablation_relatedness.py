"""Ablation: relatedness re-weighting M (Eq. 9) on vs off.

The matrix ``M`` weights each item's contribution to the contrastive
loss by how strongly the item relates to each intent (softmax over the
per-cluster tag counts).  Turning it off weights every intent equally.
A design choice called out in DESIGN.md.
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.tables import format_table
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]


def test_ablation_relatedness_weighting(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        rows = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for label, config in (
                ("with M (Eq. 9)", IMCATConfig()),
                ("uniform weights", IMCATConfig(use_relatedness=False)),
            ):
                cell = run_recipe(
                    build_imcat_recipe("lightgcn", config),
                    dataset, split, label, settings,
                )
                rows.append(
                    [dataset_name, label, 100 * cell.recall, 100 * cell.ndcg]
                )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "weighting", "R@20 (%)", "N@20 (%)"],
            rows,
            title="Ablation: intent relatedness re-weighting (L-IMCAT)",
        )
    )
    recalls = [row[2] for row in rows]
    assert all(r > 0 for r in recalls)
