"""Cluster-routed retrieval: scored-item reduction vs ranking recall.

Not a paper table — this bench tracks the approximate-retrieval tier's
own acceptance contract: sweeping ``n_probe`` over a trained model's
index must yield at least one operating point that scores >= 5x fewer
items per query than brute force while keeping top-K overlap with the
exact ranking at >= 0.95, and the full-probe point must reproduce the
exact evaluation metrics bit-for-bit.  The sweep is persisted to
``BENCH_retrieval.json`` next to this file at the default full scale.

Knobs: ``REPRO_BENCH_SCALE`` shrinks the dataset (the file is only
written at the default scale so the recorded curve stays comparable
across runs).
"""

from __future__ import annotations

import os

from repro.retrieval import (
    format_retrieval_table,
    run_retrieval_suite,
    save_retrieval_results,
)

from .conftest import env_float, run_once

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_retrieval.json")

#: Acceptance contract (ISSUE 6): some probed operating point must cut
#: per-query scored items by >= 5x at >= 0.95 top-K agreement.
MIN_SCORED_REDUCTION = 5.0
MIN_OVERLAP = 0.95
#: Full-probe evaluation must agree with exact to FP roundoff.
MAX_FULL_PROBE_DELTA = 1e-12
#: The bench's own default scale (REPRO_BENCH_SCALE overrides).
DEFAULT_SCALE = 0.5


def test_retrieval_recall_speedup(benchmark):
    scale = env_float("REPRO_BENCH_SCALE", DEFAULT_SCALE)

    payload = run_once(benchmark, lambda: run_retrieval_suite(scale=scale))
    print()
    print(format_retrieval_table(payload))

    curve = payload["curve"]
    assert curve, "n_probe sweep produced no operating points"

    # Full probe == exact: the last point probes every partition.
    full = curve[-1]
    assert full["n_probe"] == payload["settings"]["num_partitions"]
    assert full["recall_at_k_vs_exact"] == 1.0
    assert abs(full["recall_delta"]) <= MAX_FULL_PROBE_DELTA
    assert abs(full["ndcg_delta"]) <= MAX_FULL_PROBE_DELTA

    # Overlap must be monotone in n_probe (wider shortlists only help).
    overlaps = [point["recall_at_k_vs_exact"] for point in curve]
    assert all(
        b >= a - 1e-12 for a, b in zip(overlaps, overlaps[1:])
    ), f"overlap not monotone in n_probe: {overlaps}"

    best = payload["best_qualifying"]
    assert best is not None, (
        f"no operating point reaches overlap >= {MIN_OVERLAP}; "
        f"curve: {[(p['n_probe'], p['recall_at_k_vs_exact']) for p in curve]}"
    )
    assert best["scored_reduction"] >= MIN_SCORED_REDUCTION, (
        f"best qualifying point scores only "
        f"{best['scored_reduction']:.2f}x fewer items "
        f"(floor {MIN_SCORED_REDUCTION}x) at n_probe={best['n_probe']}"
    )

    if scale == DEFAULT_SCALE:
        save_retrieval_results(payload, RESULTS_PATH)
        print(f"recorded: {RESULTS_PATH}")
