"""Hot-path throughput: vectorized evaluator and samplers vs reference.

Not a paper table — this bench tracks the repository's own perf
trajectory.  It times the vectorized full-ranking evaluator and the
searchsorted-based negative samplers against the original per-row
reference implementations on the dedicated ``hotpath-bench`` synthetic
dataset (user-heavy, item-light — the serving-shaped regime), asserts
the speedups that motivated the fast paths, and persists the
throughputs to ``BENCH_hotpaths.json`` next to this file.

Knobs: ``REPRO_BENCH_SCALE`` shrinks the benchmark dataset (the file is
only written at the default full scale so the recorded trajectory stays
comparable across runs).
"""

from __future__ import annotations

import os

from repro.bench import (
    format_hotpath_table,
    run_hotpath_suite,
    save_hotpath_results,
)

from .conftest import env_float, run_once

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_hotpaths.json")

#: Conservative floors — typical measurements are ~6x (evaluator) and
#: ~4x (samplers); see ISSUE 1's acceptance criteria.
MIN_EVALUATOR_SPEEDUP = 5.0
MIN_SAMPLER_SPEEDUP = 3.0
MAX_METRIC_DIFF = 1e-9


def test_hotpath_throughput(benchmark):
    scale = env_float("REPRO_BENCH_SCALE", 1.0)

    payload = run_once(
        benchmark, lambda: run_hotpath_suite(scale=scale, repeats=5)
    )
    print()
    print(format_hotpath_table(payload))

    results = payload["results"]
    evaluator = results["evaluator"]
    assert evaluator["max_abs_diff"] <= MAX_METRIC_DIFF, (
        f"vectorized evaluator diverges from reference by "
        f"{evaluator['max_abs_diff']:.2e}"
    )
    assert evaluator["speedup"] >= MIN_EVALUATOR_SPEEDUP, (
        f"evaluator speedup {evaluator['speedup']:.2f}x below "
        f"{MIN_EVALUATOR_SPEEDUP}x"
    )
    for kind in ("sampler/user-item", "sampler/item-tag"):
        sampler = results[kind]
        # Fast and reference consume the RNG identically, so the
        # sampled negatives must match bit for bit.
        assert sampler["max_abs_diff"] == 0.0, (
            f"{kind}: fast and reference negatives differ"
        )
        assert sampler["speedup"] >= MIN_SAMPLER_SPEEDUP, (
            f"{kind} speedup {sampler['speedup']:.2f}x below "
            f"{MIN_SAMPLER_SPEEDUP}x"
        )

    if scale == 1.0:
        save_hotpath_results(payload, RESULTS_PATH)
        print(f"recorded: {RESULTS_PATH}")
