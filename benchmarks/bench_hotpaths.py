"""Hot-path throughput: vectorized evaluator and samplers vs reference.

Not a paper table — this bench tracks the repository's own perf
trajectory.  It times the vectorized full-ranking evaluator and the
searchsorted-based negative samplers against the original per-row
reference implementations on the dedicated ``hotpath-bench`` synthetic
dataset (user-heavy, item-light — the serving-shaped regime), asserts
the speedups that motivated the fast paths, and persists the
throughputs to ``BENCH_hotpaths.json`` next to this file.

Knobs: ``REPRO_BENCH_SCALE`` shrinks the benchmark dataset (the file is
only written at the default full scale so the recorded trajectory stays
comparable across runs).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import obs
from repro.bench import (
    format_hotpath_table,
    run_hotpath_suite,
    save_hotpath_results,
)
from repro.data import generate_preset, split_dataset
from repro.eval import Evaluator
from repro.models import BPRMF

from .conftest import env_float, run_once

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_hotpaths.json")

#: Conservative floors — typical measurements are ~6x (evaluator) and
#: ~4x (samplers); see ISSUE 1's acceptance criteria.
MIN_EVALUATOR_SPEEDUP = 5.0
MIN_SAMPLER_SPEEDUP = 3.0
MAX_METRIC_DIFF = 1e-9
MAX_PROPAGATE_DIFF = 1e-9

#: Tracing instrumentation with the tracer disabled (the default) must
#: cost less than this fraction of an instrumented hot-path run.
MAX_DISABLED_TRACING_OVERHEAD = 0.03


def test_hotpath_throughput(benchmark):
    scale = env_float("REPRO_BENCH_SCALE", 1.0)

    payload = run_once(
        benchmark, lambda: run_hotpath_suite(scale=scale, repeats=5)
    )
    print()
    print(format_hotpath_table(payload))

    results = payload["results"]
    evaluator = results["evaluator"]
    assert evaluator["max_abs_diff"] <= MAX_METRIC_DIFF, (
        f"vectorized evaluator diverges from reference by "
        f"{evaluator['max_abs_diff']:.2e}"
    )
    assert evaluator["speedup"] >= MIN_EVALUATOR_SPEEDUP, (
        f"evaluator speedup {evaluator['speedup']:.2f}x below "
        f"{MIN_EVALUATOR_SPEEDUP}x"
    )
    for kind in ("sampler/user-item", "sampler/item-tag"):
        sampler = results[kind]
        # Fast and reference consume the RNG identically, so the
        # sampled negatives must match bit for bit.
        assert sampler["max_abs_diff"] == 0.0, (
            f"{kind}: fast and reference negatives differ"
        )
        assert sampler["speedup"] >= MIN_SAMPLER_SPEEDUP, (
            f"{kind} speedup {sampler['speedup']:.2f}x below "
            f"{MIN_SAMPLER_SPEEDUP}x"
        )
    for kind in ("propagate/dgcf", "propagate/kgin"):
        prop = results[kind]
        # Same math, different op order: FP-roundoff bound only (no
        # wall-clock floor — the win depends on K and graph density, and
        # correctness is what the reference path is kept to pin).
        assert prop["max_abs_diff"] <= MAX_PROPAGATE_DIFF, (
            f"{kind}: vectorized propagation diverges from the "
            f"per-intent reference by {prop['max_abs_diff']:.2e}"
        )

    if scale == 1.0:
        save_hotpath_results(payload, RESULTS_PATH)
        print(f"recorded: {RESULTS_PATH}")


def test_disabled_tracing_overhead():
    """The observability hooks must be ~free when tracing is off.

    The disabled path of every ``tracer.span(...)`` site is one enabled
    check returning a shared no-op span.  Bound its cost: (spans a real
    evaluation emits) x (measured per-span disabled cost) must stay
    under 3% of the evaluation's own wall time.
    """
    dataset = generate_preset("hetrec-del", scale=0.05, seed=0)
    split = split_dataset(dataset, seed=0)
    model = BPRMF(
        dataset.num_users, dataset.num_items, 16,
        rng=np.random.default_rng(0),
    )
    evaluator = Evaluator(split.train, split.valid)

    # How many spans one evaluation emits, from a real traced run.
    traced = obs.Tracer()
    evaluator.evaluate(model, tracer=traced)
    spans_per_eval = len(traced)
    assert spans_per_eval > 0

    disabled = obs.Tracer(enabled=False)
    probes = 100_000
    start = time.perf_counter()
    for _ in range(probes):
        with disabled.span("probe"):
            pass
    per_span = (time.perf_counter() - start) / probes

    repeats = 3
    start = time.perf_counter()
    for _ in range(repeats):
        evaluator.evaluate(model, tracer=disabled)
    eval_seconds = (time.perf_counter() - start) / repeats

    overhead = per_span * spans_per_eval / eval_seconds
    print(
        f"\ndisabled tracing: {spans_per_eval} spans/eval, "
        f"{per_span * 1e9:.0f} ns/span, overhead {overhead:.4%}"
    )
    assert overhead < MAX_DISABLED_TRACING_OVERHEAD, (
        f"disabled tracing costs {overhead:.2%} of an evaluation "
        f"(floor {MAX_DISABLED_TRACING_OVERHEAD:.0%})"
    )
