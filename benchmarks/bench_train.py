"""Training-at-speed: fused execution and data-parallel throughput.

Not a paper table — this bench tracks the repository's own training
performance trajectory.  It times the IMCAT loop (BPRMF backbone, K=8
intents, batch 256 — the regime where eager tape overhead dominates the
step) at three operating points:

- ``serial``    eager tape, single process (the baseline);
- ``fused``     :func:`repro.nn.fusion.fused_mode` kernels, single
  process;
- ``fused+dp``  fused kernels plus shared-memory data-parallel workers
  (``W = min(4, cpu_count)``) sharding each batch's gradient compute.

Floors: the fused point must beat serial by ``MIN_FUSED_SPEEDUP`` on
any machine; the combined point must clear ``MIN_DP_SPEEDUP`` (2x, the
ISSUE 10 acceptance bar) wherever the data-parallel lever actually has
cores to pull on (``cpu_count >= 4``) — on smaller machines the point
is still measured, recorded, and held to a no-pathology floor.
Correctness rides along: serial, fused, and single-worker dp histories
must be *bit-identical*; multi-worker dp must track serial within
float-reassociation tolerance.

Knobs: ``REPRO_BENCH_SCALE`` shrinks the benchmark dataset (the file is
only written at the default full scale so the recorded trajectory stays
comparable across runs).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.models import BPRMF

from .conftest import env_float, run_once

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_train.json")

#: Conservative floors — typical single-core measurements are ~1.6x
#: (fused) with the dp point matching or beating serial even at W=1;
#: see ISSUE 10's acceptance criteria for the 2x combined bar.
MIN_FUSED_SPEEDUP = 1.25
MIN_DP_SPEEDUP = 2.0
MIN_DP_SINGLE_CORE_SPEEDUP = 0.8
#: Multi-worker runs reassociate the sharded gradient sum; the loss
#: trajectory may differ from serial only at float-roundoff order.
TRAJECTORY_RTOL = 1e-6

DATASET_SCALE = 0.3
EPOCHS = 3
BATCH_SIZE = 256
EMBED_DIM = 64
NUM_INTENTS = 8


def _make_model(dataset, split):
    rng = np.random.default_rng(3)
    backbone = BPRMF(dataset.num_users, dataset.num_items, EMBED_DIM, rng)
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=NUM_INTENTS, pretrain_epochs=1),
        rng=rng,
    )


def _fit(dataset, split, **overrides):
    model = _make_model(dataset, split)
    config = IMCATTrainConfig(
        epochs=EPOCHS, batch_size=BATCH_SIZE, eval_every=10 * EPOCHS,
        patience=10 * EPOCHS, seed=5, **overrides,
    )
    start = time.perf_counter()
    result = IMCATTrainer(model, split, config).fit()
    seconds = time.perf_counter() - start
    return {
        "seconds_per_epoch": seconds / EPOCHS,
        "losses": [record["loss"] for record in result.history],
    }


def _run_suite(scale: float, workers: int) -> dict:
    dataset = generate_preset("hetrec-del", scale=DATASET_SCALE * scale, seed=7)
    split = split_dataset(dataset, seed=8)
    serial = _fit(dataset, split)
    fused = _fit(dataset, split, fused=True)
    fused_dp = _fit(
        dataset, split, fused=True, dp_workers=workers, dp_backend="fork"
    )
    baseline = serial["seconds_per_epoch"]
    results = {}
    for name, point in (
        ("imcat/serial", serial),
        ("imcat/fused", fused),
        ("imcat/fused-dp", fused_dp),
    ):
        results[name] = {
            "seconds_per_epoch": point["seconds_per_epoch"],
            "speedup": baseline / point["seconds_per_epoch"],
            "losses": point["losses"],
        }
    results["imcat/fused-dp"]["workers"] = workers
    return {
        "results": results,
        "settings": {
            "dataset": "hetrec-del",
            "dataset_scale": DATASET_SCALE * scale,
            "epochs": EPOCHS,
            "batch_size": BATCH_SIZE,
            "embed_dim": EMBED_DIM,
            "num_intents": NUM_INTENTS,
            "cpu_count": os.cpu_count(),
        },
    }


def test_train_throughput(benchmark):
    scale = env_float("REPRO_BENCH_SCALE", 1.0)
    workers = max(1, min(4, os.cpu_count() or 1))

    payload = run_once(benchmark, lambda: _run_suite(scale, workers))
    results = payload["results"]
    print()
    for name, point in results.items():
        print(
            f"{name:16s} {point['seconds_per_epoch']:8.3f} s/epoch "
            f"({point['speedup']:.2f}x)"
        )

    # Correctness ride-along: fusion never changes the bits, and a
    # single dp worker replays the exact serial epoch.
    serial_losses = results["imcat/serial"]["losses"]
    assert results["imcat/fused"]["losses"] == serial_losses, (
        "fused loss trajectory diverged from serial bits"
    )
    dp_losses = results["imcat/fused-dp"]["losses"]
    if workers == 1:
        assert dp_losses == serial_losses, (
            "single-worker dp loss trajectory diverged from serial bits"
        )
    else:
        np.testing.assert_allclose(
            dp_losses, serial_losses, rtol=TRAJECTORY_RTOL
        )

    fused_speedup = results["imcat/fused"]["speedup"]
    assert fused_speedup >= MIN_FUSED_SPEEDUP, (
        f"fused speedup {fused_speedup:.2f}x below {MIN_FUSED_SPEEDUP}x"
    )
    dp_speedup = results["imcat/fused-dp"]["speedup"]
    if (os.cpu_count() or 1) >= 4:
        assert dp_speedup >= MIN_DP_SPEEDUP, (
            f"fused+dp speedup {dp_speedup:.2f}x below {MIN_DP_SPEEDUP}x"
        )
    else:
        # Not enough cores for the parallel lever: hold the combined
        # point to a no-pathology floor instead of the 2x bar.
        assert dp_speedup >= MIN_DP_SINGLE_CORE_SPEEDUP, (
            f"fused+dp speedup {dp_speedup:.2f}x below the single-core "
            f"floor {MIN_DP_SINGLE_CORE_SPEEDUP}x"
        )
        print(
            f"note: {os.cpu_count()} core(s); the {MIN_DP_SPEEDUP}x "
            f"combined floor needs >= 4"
        )

    if scale == 1.0:
        with open(RESULTS_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded: {RESULTS_PATH}")
