"""Table II: overall performance comparison.

Trains all 15 methods (3 backbones, 3 tag-enhanced, 4 KG-enhanced,
2 SSL, 3 IMCAT variants) on scaled-down versions of the paper's
datasets and prints R@20 / N@20 in the paper's layout, plus the paired
t-test of L-IMCAT against the strongest baseline.

At bench scale we default to four datasets (the three HetRec presets
and CiteULike); set ``REPRO_BENCH_DATASETS`` to the full seven for the
complete grid.  The assertion encodes the reproduction target — the
*shape*, not absolute numbers: L-IMCAT beats its own backbone on
average, and the IMCAT family places at the top of the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench import METHODS, format_table2, run_table
from repro.eval import paired_t_test

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-mv", "hetrec-fm", "hetrec-del", "citeulike"]
METHOD_ORDER = list(METHODS)


def test_table2_overall_comparison(benchmark, settings):
    # The paper's ordering emerges once the backbones converge; at the
    # global smoke defaults (0.05 / 40) GNN methods are under-trained.
    settings = override_default(settings, scale=0.08, epochs=80)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        return run_table(datasets, METHOD_ORDER, settings)

    results = run_once(benchmark, run)
    print()
    print(format_table2(results, METHOD_ORDER, datasets))

    # Significance: L-IMCAT vs the best non-IMCAT baseline per dataset.
    print("\npaired t-test, L-IMCAT vs best baseline (per-user Recall@20):")
    gains = []
    for name in datasets:
        row = results[name]
        baselines = {
            m: c for m, c in row.items() if not m.endswith("IMCAT")
        }
        best_name = max(baselines, key=lambda m: baselines[m].recall)
        ours = row["L-IMCAT"]
        best = baselines[best_name]
        test = paired_t_test(ours.per_user_recall, best.per_user_recall)
        gains.append(ours.recall - row["LightGCN"].recall)
        print(
            f"  {name}: L-IMCAT={100 * ours.recall:.2f} vs "
            f"{best_name}={100 * best.recall:.2f} "
            f"(p={test.p_value:.3g})"
        )

    # Shape assertions: IMCAT must help its backbone on average, and the
    # IMCAT family must sit at the top of the mean ranking.
    assert np.mean(gains) > -0.01, "L-IMCAT fell behind LightGCN on average"
    mean_recall = {
        m: np.mean([results[d][m].recall for d in datasets])
        for m in METHOD_ORDER
    }
    top4 = sorted(mean_recall, key=mean_recall.get, reverse=True)[:4]
    assert any(m.endswith("IMCAT") for m in top4), (
        f"no IMCAT variant in the top-4 by mean recall: {top4}"
    )
