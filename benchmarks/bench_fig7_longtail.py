"""Fig. 7: performance on item groups of different interaction degrees.

Splits items into five equal groups G1 (long tail) .. G5 (head) by
training popularity and reports each GNN-based method's per-group
contribution to Recall@20, normalised into [0, 1] per group by the best
method — the paper's presentation.

The paper's shape: plain LightGCN dominates only on the head groups; the
auxiliary-information and SSL methods recover some of the tail; L-IMCAT
is strongest on the long-tail groups G1-G3.
"""

from __future__ import annotations

import numpy as np

from repro.bench import METHODS, prepare_split, run_recipe
from repro.bench.tables import format_series, normalize_series
from repro.eval import group_recall_contributions, popularity_groups

from .conftest import env_datasets, run_once

DEFAULT_DATASETS = ["citeulike"]
FIG7_METHODS = ["LightGCN", "KGAT", "KGIN", "SGL", "KGCL", "L-IMCAT"]


def test_fig7_longtail_groups(benchmark, settings):
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        all_series = {}
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            groups = popularity_groups(split.train, num_groups=5)
            for method in FIG7_METHODS:
                cell = run_recipe(
                    METHODS[method], dataset, split, method, settings,
                    keep_model=True,
                )
                contributions = group_recall_contributions(
                    cell.trained.model, split.train, split.test,
                    groups, top_n=settings.top_n,
                )
                all_series[f"{dataset_name}/{method}"] = contributions
        return all_series

    raw = run_once(benchmark, run)
    datasets_used = sorted({name.split("/")[0] for name in raw})
    print()
    for dataset_name in datasets_used:
        series = {
            name.split("/")[1]: values
            for name, values in raw.items()
            if name.startswith(f"{dataset_name}/")
        }
        normalized = normalize_series(series)
        print(
            format_series(
                "group", ["G1", "G2", "G3", "G4", "G5"],
                {k: list(v) for k, v in normalized.items()},
                title=f"Fig. 7 ({dataset_name}): normalised Recall@20 contribution",
            )
        )
        print()
        # Shape assertion: L-IMCAT leads (or ties) the long-tail groups.
        tail_ours = np.sum(series["L-IMCAT"][:3])
        tail_lightgcn = np.sum(series["LightGCN"][:3])
        assert tail_ours >= 0.8 * tail_lightgcn, (
            f"{dataset_name}: L-IMCAT lost the long tail "
            f"({tail_ours:.4f} vs {tail_lightgcn:.4f})"
        )
