"""Extension: mean vs attention user aggregation (Eq. 7 variants).

Section IV.B.1 calls the arithmetic average "the most intuitive way" to
aggregate the users who interacted with an item — implying alternatives.
This bench compares the paper's mean against item-conditioned attention
over the interacting users (``softmax(u . v / sqrt(d))`` weights).
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.tables import format_table
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]


def test_ext_user_aggregation(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        rows = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for label, config in (
                ("mean (Eq. 7)", IMCATConfig()),
                ("attention", IMCATConfig(user_aggregation="attention")),
            ):
                cell = run_recipe(
                    build_imcat_recipe("lightgcn", config),
                    dataset, split, label, settings,
                )
                rows.append(
                    [dataset_name, label, 100 * cell.recall, 100 * cell.ndcg,
                     cell.wall_time]
                )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "aggregation", "R@20 (%)", "N@20 (%)", "time (s)"],
            rows,
            title="Extension: Eq. 7 user aggregation (L-IMCAT)",
        )
    )
    assert all(row[2] > 0 for row in rows)
