"""Extension: beyond-accuracy comparison (coverage / ILD / novelty).

Not a paper table — the paper's introduction motivates "accurate and
diverse" recommendation but evaluates accuracy only.  This bench
completes the story: it compares LightGCN and L-IMCAT on catalogue
coverage, intra-list diversity over tag vectors, novelty, and tag
entropy.  Expectation: the set-to-set alignment pushes long-tail items
into lists, so L-IMCAT should cover more catalogue and recommend more
novel items without collapsing accuracy.
"""

from __future__ import annotations

from repro.bench import METHODS, prepare_split, run_recipe
from repro.bench.tables import format_table
from repro.eval import evaluate_diversity

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]
EXT_METHODS = ["LightGCN", "L-IMCAT"]


def test_ext_beyond_accuracy(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        rows = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for method in EXT_METHODS:
                cell = run_recipe(
                    METHODS[method], dataset, split, method, settings,
                    keep_model=True,
                )
                report = evaluate_diversity(
                    cell.trained.model, split.train, split.test,
                    top_n=settings.top_n,
                )
                rows.append([
                    dataset_name, method, 100 * cell.recall,
                    report.coverage, report.intra_list_diversity,
                    report.novelty, report.tag_entropy,
                ])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "method", "R@20 (%)", "coverage", "ILD",
             "novelty", "tag entropy"],
            rows,
            title="Extension: beyond-accuracy metrics @ top-20",
        )
    )
    # Sanity: all metrics within their ranges.
    for row in rows:
        assert 0.0 <= row[3] <= 1.0
        assert 0.0 <= row[4] <= 1.0 + 1e-9
        assert row[5] >= 0.0
