"""Fig. 6: the ISA Jaccard threshold delta.

Sweeps delta over {0.1, 0.3, 0.5, 0.7, 0.9} and reports each setting's
Recall@20 as a *proportion of the no-ISA result* — exactly the paper's
presentation.  The paper's shape: small thresholds (0.1, 0.3) admit
dissimilar items as positives and fall below 1.0; larger thresholds
(0.7, 0.9) help.
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.plots import series_plot
from repro.bench.tables import format_series
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del", "citeulike"]
DELTAS = [0.1, 0.3, 0.5, 0.7, 0.9]


def test_fig6_isa_threshold(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        series = {}
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            base_config = IMCATConfig(use_isa=False)
            base = run_recipe(
                build_imcat_recipe("lightgcn", base_config),
                dataset, split, "no-ISA", settings,
            )
            ratios = []
            for delta in DELTAS:
                config = IMCATConfig(delta=delta, use_isa=True)
                cell = run_recipe(
                    build_imcat_recipe("lightgcn", config),
                    dataset, split, f"delta={delta}", settings,
                )
                ratios.append(
                    cell.recall / base.recall if base.recall > 0 else 0.0
                )
            series[dataset_name] = ratios
        return series

    series = run_once(benchmark, run)
    print()
    print(
        format_series(
            "delta", DELTAS, series,
            title="Fig. 6: Recall@20 relative to no-ISA (1.0 = parity)",
        )
    )
    print()
    print(series_plot(DELTAS, series, title="shape (per series):"))
    # Shape assertion: high thresholds must not collapse below the
    # permissive ones on average (similar items are better positives).
    for name, ratios in series.items():
        assert max(ratios[2:]) >= 0.9 * max(ratios[:2]), (
            f"{name}: strict thresholds collapsed: {ratios}"
        )
