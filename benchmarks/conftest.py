"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at reduced
scale.  Scale/budget can be tuned through environment variables so a CI
smoke run and a full reproduction share the same code:

- ``REPRO_BENCH_SCALE``    dataset scale factor (default 0.05)
- ``REPRO_BENCH_EPOCHS``   epoch ceiling per method (default 40)
- ``REPRO_BENCH_DIM``      embedding size (default 32)
- ``REPRO_BENCH_DATASETS`` comma-separated dataset subset (default: the
  three HetRec datasets + citeulike for the big tables; each bench
  documents its own default)
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchSettings


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def env_datasets(default: list[str]) -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DATASETS")
    if not raw:
        return default
    return [name.strip() for name in raw.split(",") if name.strip()]


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    """Bench-wide scale/budget settings."""
    return BenchSettings(
        scale=env_float("REPRO_BENCH_SCALE", 0.05),
        embed_dim=env_int("REPRO_BENCH_DIM", 32),
        epochs=env_int("REPRO_BENCH_EPOCHS", 40),
        batch_size=512,
    )


def override_default(settings: BenchSettings, **overrides) -> BenchSettings:
    """Per-bench defaults that yield to explicit environment overrides.

    A bench that needs a different regime (e.g. Table II converges into
    the paper's ordering at scale 0.08 / 80 epochs) passes its preferred
    values here; any field the user pinned via ``REPRO_BENCH_*`` wins.
    """
    from dataclasses import replace

    env_pins = {
        "scale": "REPRO_BENCH_SCALE" in os.environ,
        "epochs": "REPRO_BENCH_EPOCHS" in os.environ,
        "embed_dim": "REPRO_BENCH_DIM" in os.environ,
    }
    effective = {
        key: value
        for key, value in overrides.items()
        if not env_pins.get(key, False)
    }
    return replace(settings, **effective) if effective else settings


def run_once(benchmark, func):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
