"""Extension: contrastive vs non-contrastive alignment objective.

The paper's related work surveys both contrastive SSL (InfoNCE, used by
IMCAT) and non-contrastive methods (BYOL/SimSiam, refs [35, 36]) but
only evaluates the contrastive form.  This bench runs L-IMCAT with both
objectives: the paper's bidirectional InfoNCE (Eqs. 11-13) against a
positive-pairs-only predictor + stop-gradient variant.

Expected: InfoNCE wins — the in-batch negatives carry the ranking
signal that the BYOL form lacks — but the non-contrastive variant must
stay well above the no-alignment baseline, showing the positive pairs
alone carry signal.
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.tables import format_table
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]


def test_ext_alignment_objective(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        rows = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for label, config in (
                ("InfoNCE (paper)", IMCATConfig()),
                ("BYOL-style", IMCATConfig(alignment_objective="byol")),
                ("no alignment", IMCATConfig().without_uit()),
            ):
                cell = run_recipe(
                    build_imcat_recipe("lightgcn", config),
                    dataset, split, label, settings,
                )
                rows.append(
                    [dataset_name, label, 100 * cell.recall, 100 * cell.ndcg]
                )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "objective", "R@20 (%)", "N@20 (%)"],
            rows,
            title="Extension: alignment objective (L-IMCAT)",
        )
    )
    recalls = {row[1]: row[2] for row in rows}
    # Both objectives must produce functional models.
    assert recalls["InfoNCE (paper)"] > 0
    assert recalls["BYOL-style"] > 0
