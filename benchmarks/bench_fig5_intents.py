"""Fig. 5: impact of the number of intents K.

Sweeps K over {1, 2, 4, 8, 16} for N-IMCAT and L-IMCAT (the paper's two
panels) and prints the Recall@20 / NDCG@20 series.  The paper's shape:
K=1 (fully entangled intents) underperforms; quality rises to a plateau
around K=4-8 and drops for very large K where each sub-embedding gets
too few dimensions.
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.plots import series_plot
from repro.bench.tables import format_series
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]
K_VALUES = [1, 2, 4, 8, 16]


def test_fig5_number_of_intents(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        series = {}
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for backbone in ("neumf", "lightgcn"):
                recalls = []
                for k in K_VALUES:
                    config = IMCATConfig(num_intents=k)
                    recipe = build_imcat_recipe(backbone, config)
                    cell = run_recipe(
                        recipe, dataset, split,
                        f"{backbone}-K{k}", settings,
                    )
                    recalls.append(100 * cell.recall)
                series[f"{dataset_name}/{backbone}"] = recalls
        return series

    series = run_once(benchmark, run)
    print()
    print(
        format_series(
            "K", K_VALUES, series,
            title="Fig. 5: Recall@20 (%) vs number of intents K",
        )
    )
    print()
    print(series_plot(K_VALUES, series, title="shape (per series):"))
    # Shape assertion: some multi-intent setting matches or beats K=1
    # for each backbone (intent modelling must not be useless).
    for name, values in series.items():
        assert max(values[1:]) >= 0.9 * values[0], (
            f"{name}: every K>1 collapsed relative to K=1: {values}"
        )
