"""Fig. 9: training efficiency versus recommendation quality.

Trains a representative method set and prints (training seconds,
Recall@20) pairs — the scatter the paper plots.  The paper's claim:
N-IMCAT reaches GNN-competitive quality at a fraction of the training
time of the heavyweight graph methods, because the alignment avoids
multi-layer message passing and neighbourhood sampling.

On this substrate the absolute times are CPU-NumPy, but the relative
ordering (alignment cheaper than attentive graph convolution) is driven
by the same per-epoch operation counts.
"""

from __future__ import annotations

from repro.bench import METHODS, prepare_split, run_recipe
from repro.bench.tables import format_table

from .conftest import env_datasets, run_once

DEFAULT_DATASETS = ["hetrec-del", "citeulike"]
FIG9_METHODS = [
    "BPRMF", "LightGCN", "TGCN", "KGAT", "KGIN", "SGL", "KGCL",
    "B-IMCAT", "N-IMCAT", "L-IMCAT",
]


def test_fig9_efficiency_vs_quality(benchmark, settings):
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        results = {}
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for method in FIG9_METHODS:
                cell = run_recipe(
                    METHODS[method], dataset, split, method, settings
                )
                results[(dataset_name, method)] = cell
        return results

    results = run_once(benchmark, run)
    print()
    for dataset_name in datasets:
        rows = [
            [
                method,
                results[(dataset_name, method)].wall_time,
                100 * results[(dataset_name, method)].recall,
                results[(dataset_name, method)].epochs_run,
            ]
            for method in FIG9_METHODS
        ]
        print(
            format_table(
                ["method", "train time (s)", "R@20 (%)", "epochs"],
                rows,
                title=f"Fig. 9 ({dataset_name}): efficiency vs quality",
            )
        )
        print()

    # Shape assertion — the quality side of Fig. 9: an IMCAT variant is
    # the best model on every dataset (the paper's frontier point).
    #
    # The *time* side does not transfer to this substrate: at ~5% scale
    # the message-passing graphs are tiny, so GNN epochs cost almost
    # nothing and IMCAT's per-step Python overhead dominates — the
    # opposite regime from the paper's V100 + full-size graphs, where
    # multi-layer propagation and neighbourhood sampling are the
    # bottleneck.  The table above still reports the wall-clock numbers
    # so the trade-off is visible; EXPERIMENTS.md discusses the caveat.
    for dataset_name in datasets:
        best = max(FIG9_METHODS, key=lambda m: results[(dataset_name, m)].recall)
        imcat_best = max(
            (m for m in FIG9_METHODS if m.endswith("IMCAT")),
            key=lambda m: results[(dataset_name, m)].recall,
        )
        gap = (
            results[(dataset_name, imcat_best)].recall
            / max(results[(dataset_name, best)].recall, 1e-9)
        )
        assert gap >= 0.9, (
            f"{dataset_name}: no IMCAT variant within 90% of the best "
            f"({imcat_best}={gap:.2f} of {best})"
        )
