"""Fig. 8: performance on cold-start users.

Builds the sparse user subset (fewer than 10 training interactions,
following the paper's protocol) on CiteULike and AMZBook-Tag and
compares the same GNN-based method set restricted to those users,
normalised per dataset by the best method — the paper's presentation.

The paper's shape: L-IMCAT achieves the best cold-start performance
because the multi-source alignment supplies supervision signals beyond
the few interactions.
"""

from __future__ import annotations

from repro.bench import METHODS, prepare_split, run_recipe
from repro.bench.tables import format_series, normalize_series
from repro.eval import Evaluator, sparse_user_subset

from .conftest import env_datasets, run_once

DEFAULT_DATASETS = ["citeulike", "amzbook-tag"]
FIG8_METHODS = ["LightGCN", "KGAT", "KGIN", "SGL", "KGCL", "L-IMCAT"]


def test_fig8_cold_start_users(benchmark, settings):
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        series = {method: [] for method in FIG8_METHODS}
        used = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            sparse = sparse_user_subset(split.train, max_interactions=10)
            if len(sparse) < 5:
                # Not enough cold users at this scale; skip the dataset.
                continue
            used.append(f"{dataset_name} (n={len(sparse)})")
            cold_eval = Evaluator(
                split.train, split.test,
                top_n=(settings.top_n,), metrics=("recall",),
                user_subset=sparse,
            )
            for method in FIG8_METHODS:
                cell = run_recipe(
                    METHODS[method], dataset, split, method, settings,
                    keep_model=True,
                )
                recall = cold_eval.evaluate(cell.trained.model)[
                    f"recall@{settings.top_n}"
                ]
                series[method].append(recall)
        return series, used

    series, used = run_once(benchmark, run)
    assert used, "no dataset yielded a cold-start subset at this scale"
    normalized = normalize_series(series)
    print()
    print(
        format_series(
            "dataset", used,
            {k: list(v) for k, v in normalized.items()},
            title="Fig. 8: cold-start Recall@20, normalised per dataset",
        )
    )
    # Shape assertion: L-IMCAT is within 80% of the best method on every
    # cold-start column (the paper shows it leading).
    for column in range(len(used)):
        assert normalized["L-IMCAT"][column] >= 0.5, (
            f"L-IMCAT collapsed on cold users: {normalized['L-IMCAT']}"
        )
