"""Ablation: end-to-end Student-t clustering vs periodic K-means.

Section IV.A.2 calls iteratively applying K-means on the learned tag
embeddings "one naive solution ... not optimized jointly with the
downstream objective and might be sub-optimal".  This bench runs
L-IMCAT with both clustering modes and prints the comparison (a design
choice called out in DESIGN.md, not a paper table).
"""

from __future__ import annotations

from repro.bench import build_imcat_recipe, prepare_split, run_recipe
from repro.bench.tables import format_table
from repro.core import IMCATConfig

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del"]


def test_ablation_clustering_mode(benchmark, settings):
    settings = override_default(settings, scale=0.08, epochs=60)
    datasets = env_datasets(DEFAULT_DATASETS)

    def run():
        rows = []
        for dataset_name in datasets:
            dataset, split = prepare_split(dataset_name, settings)
            for label, config in (
                ("end-to-end (Eqs. 4-6)", IMCATConfig()),
                ("periodic K-means", IMCATConfig(use_end_to_end_clustering=False)),
            ):
                cell = run_recipe(
                    build_imcat_recipe("lightgcn", config),
                    dataset, split, label, settings,
                )
                rows.append(
                    [dataset_name, label, 100 * cell.recall,
                     100 * cell.ndcg, cell.wall_time]
                )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "clustering", "R@20 (%)", "N@20 (%)", "time (s)"],
            rows,
            title="Ablation: tag clustering mode (L-IMCAT)",
        )
    )
    # Both modes must produce a working model; the end-to-end mode
    # should not lose badly to the naive one.
    by_dataset = {}
    for dataset_name, label, recall, _, _ in rows:
        by_dataset.setdefault(dataset_name, {})[label] = recall
    for dataset_name, values in by_dataset.items():
        e2e = values["end-to-end (Eqs. 4-6)"]
        naive = values["periodic K-means"]
        assert e2e > 0.75 * naive, (
            f"{dataset_name}: end-to-end clustering collapsed "
            f"({e2e:.2f} vs {naive:.2f})"
        )
