"""Table III: ablation of the IMCA module designs.

Runs N-IMCAT and L-IMCAT with each design removed — no alignment at all
(w/o UIT), no user-tag alignment (w/o UT), no user-item alignment
(w/o UI), and no non-linear transformation (w/o NLT) — on the paper's
three ablation datasets.

The paper's shape: removing any design hurts; "w/o UIT" hurts the most;
"w/o UI" hurts less than "w/o UT" (the U-I relation is also carried by
``L_UV``, whereas U-T lives only in the alignment).
"""

from __future__ import annotations

import numpy as np

from repro.bench import run_table
from repro.bench.tables import format_table

from .conftest import env_datasets, override_default, run_once

DEFAULT_DATASETS = ["hetrec-del", "citeulike", "yelp-tag"]
VARIANTS = ["", " w/o UIT", " w/o UT", " w/o UI", " w/o NLT"]


def test_table3_imca_ablation(benchmark, settings):
    # Ten IMCAT variants on three datasets incl. yelp-tag: keep the
    # epoch budget tight so the full suite stays CPU-friendly.
    settings = override_default(settings, epochs=30)
    datasets = env_datasets(DEFAULT_DATASETS)
    methods = [
        f"{prefix}-IMCAT{suffix}"
        for prefix in ("N", "L")
        for suffix in VARIANTS
    ]

    def run():
        return run_table(datasets, methods, settings)

    results = run_once(benchmark, run)

    headers = ["Model"] + [
        part for d in datasets for part in (f"{d} R", f"{d} N")
    ]
    rows = []
    for method in methods:
        row = [method]
        for d in datasets:
            cell = results[d][method]
            row.extend([100 * cell.recall, 100 * cell.ndcg])
        rows.append(row)
    print()
    print(format_table(headers, rows, title="Table III (reproduced, %)"))

    # Shape assertion: the full model beats the strongest ablation cut
    # ("w/o UIT") on average across datasets and backbones.
    for prefix in ("N", "L"):
        full = np.mean(
            [results[d][f"{prefix}-IMCAT"].recall for d in datasets]
        )
        wo_uit = np.mean(
            [results[d][f"{prefix}-IMCAT w/o UIT"].recall for d in datasets]
        )
        assert full > 0.9 * wo_uit, (
            f"{prefix}-IMCAT collapsed relative to its w/o UIT ablation"
        )
