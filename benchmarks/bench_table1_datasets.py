"""Table I: dataset statistics.

Generates every preset through the synthetic pipeline and prints the
nine Table I statistics next to the paper's published values.  At
``scale < 1`` the entity counts shrink proportionally while the average
degrees (the generator's calibration targets) stay close to the paper.
"""

from __future__ import annotations

from repro.bench.tables import format_table
from repro.data import (
    DATASET_ORDER,
    PAPER_STATISTICS,
    compute_statistics,
    generate_preset,
)

from .conftest import run_once


def test_table1_dataset_statistics(benchmark, settings):
    def run():
        rows = []
        for name in DATASET_ORDER:
            dataset = generate_preset(name, scale=settings.scale, seed=1)
            stats = compute_statistics(dataset)
            paper = PAPER_STATISTICS[name]
            rows.append([
                name,
                stats.num_users, stats.num_items, stats.num_tags,
                stats.num_interactions,
                f"{stats.interaction_avg_degree:.1f}",
                f"{paper['ui_avg_degree']:.1f}",
                f"{stats.tag_avg_degree:.1f}",
                f"{paper['it_avg_degree']:.1f}",
            ])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["dataset", "#U", "#V", "#T", "#UI",
             "UI deg", "paper", "IT deg", "paper"],
            rows,
            title=f"Table I (synthetic @ scale={settings.scale})",
        )
    )
    # The generator must hit the paper's average degrees within 2x.
    for row in rows:
        ours, paper = float(row[5]), float(row[6])
        assert 0.4 * paper < ours < 2.5 * paper, row[0]
