"""Serving capacity: 1-worker vs 4-worker pool under Zipf load + chaos.

Not a paper table — this bench tracks the scale-out serving layer's own
acceptance contract (ISSUE 8) with three operating points persisted to
``BENCH_serve.json`` next to this file:

- ``workers-1``        single worker, clean run (the capacity baseline);
- ``workers-4``        4-worker pool, clean run — must deliver **>= 2x**
                       the single worker's closed-loop throughput;
- ``workers-4-chaos``  the same pool while a worker crashes and another
                       shard runs 2x slow mid-trace — must answer
                       **every** request (zero errors) inside the SLO;
- ``workers-4-hotcache`` the pool with the front-door hot-key cache on
                       (250 ms TTL) — the Zipf head answers from cache,
                       so hits must register and throughput must stay
                       within 10% of the plain pooled point (it should
                       beat it; the soft floor keeps 1-core CI honest).

The scoring cost is a per-batch sleep (``EmulatedLatencyModel``), which
releases the GIL the way a real BLAS/remote backend would — so the
speedup measured here is genuine thread-level scale-out plus batch
amortisation, not a Python artifact.  The measured speedup lands well
under 4x by design honesty: the Zipf head pins the hottest users to
single shards, and the chaos segments drain the pipeline at their
boundaries.

Knobs: ``REPRO_BENCH_SERVE_REQUESTS`` (trace length per point) and
``REPRO_BENCH_SERVE_MS`` (emulated scoring milliseconds) shrink the run;
the file is only written at the defaults so recorded points stay
comparable across commits.
"""

from __future__ import annotations

import os

import numpy as np

from repro.models import BPRMF
from repro.obs import MetricsRegistry
from repro.serve import (
    SLO,
    EmulatedLatencyModel,
    FaultWindow,
    MicroBatcher,
    RecommendationService,
    ShardedService,
    StaticModelProvider,
    ZipfTraffic,
    run_load,
    write_bench,
)

from .conftest import env_float, env_int, run_once

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

NUM_USERS, NUM_ITEMS, DIM = 2000, 500, 32
DEFAULT_REQUESTS = 480
DEFAULT_SERVICE_MS = 16.0
#: Closed-loop client threads — well past max_batch * workers so every
#: batcher keeps a full queue (a shard goes idle the moment its queue
#: depth drops below the batch size).
CONCURRENCY = 96
MAX_BATCH = 8
#: Acceptance contract (ISSUE 8).
MIN_SPEEDUP = 2.0
SERVE_SLO = SLO(p99_seconds=0.5, max_errors=0,
                min_live_fraction=0.9, max_popularity_fraction=0.05)


def build_pool(num_workers: int, service_seconds: float,
               hot_ttl: float = 0.0, metrics=None) -> ShardedService:
    model = BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(0))
    popularity = np.arange(NUM_ITEMS, dtype=np.float64)
    workers = []
    for wid in range(num_workers):
        provider = StaticModelProvider(
            EmulatedLatencyModel(model, service_seconds),
            version=f"bench-w{wid}",
        )
        workers.append(
            RecommendationService(
                provider,
                popularity=popularity,
                default_top_n=10,
                batcher=MicroBatcher(
                    provider.model, max_batch=MAX_BATCH, max_wait=0.002
                ),
            )
        )
    return ShardedService(workers, popularity=popularity,
                          down_cooldown=0.05, hot_ttl=hot_ttl,
                          metrics=metrics)


def chaos_schedule(requests: int, service_seconds: float):
    """Crash worker 0 for 15% of the trace, slow shard 1 for 10%."""
    return (
        FaultWindow(int(requests * 0.20), int(requests * 0.35),
                    "worker-crash", worker=0),
        FaultWindow(int(requests * 0.50), int(requests * 0.60),
                    "worker-slow", worker=1, seconds=service_seconds * 2),
    )


def measure(num_workers: int, requests: int, service_seconds: float,
            with_chaos: bool, hot_ttl: float = 0.0) -> dict:
    metrics = MetricsRegistry()
    pool = build_pool(num_workers, service_seconds, hot_ttl=hot_ttl,
                      metrics=metrics)
    traffic = ZipfTraffic(NUM_USERS, requests, rps=1000.0, skew=1.1, seed=0)
    faults = (
        chaos_schedule(requests, service_seconds) if with_chaos else ()
    )
    report = run_load(
        pool, traffic, concurrency=CONCURRENCY, pace=False,
        faults=faults, top_n=10, metrics=metrics,
    )
    report.assert_slo(SERVE_SLO)
    suffix = ("-chaos" if with_chaos else "") + (
        "-hotcache" if hot_ttl > 0 else ""
    )
    return {
        "label": f"workers-{num_workers}{suffix}",
        "chaos": with_chaos,
        "max_batch": MAX_BATCH,
        "concurrency": CONCURRENCY,
        "service_time_seconds": service_seconds,
        "hot_ttl_seconds": hot_ttl,
        "hotkey_hits": metrics.get("serve.pool.hotkey.hits"),
        **report.summary(),
    }


def test_pool_throughput_scales_and_survives_chaos(benchmark):
    requests = env_int("REPRO_BENCH_SERVE_REQUESTS", DEFAULT_REQUESTS)
    service_seconds = (
        env_float("REPRO_BENCH_SERVE_MS", DEFAULT_SERVICE_MS) / 1000.0
    )

    def run() -> list:
        return [
            measure(1, requests, service_seconds, with_chaos=False),
            measure(4, requests, service_seconds, with_chaos=False),
            measure(4, requests, service_seconds, with_chaos=True),
            measure(4, requests, service_seconds, with_chaos=False,
                    hot_ttl=0.25),
        ]

    points = run_once(benchmark, run)
    single, pooled, chaos, hotcache = points
    print()
    for point in points:
        print(
            f"{point['label']:>16}: "
            f"{point['throughput_rps']:8.1f} rps  "
            f"p50 {point['latency_p50_seconds'] * 1e3:6.2f} ms  "
            f"p99 {point['latency_p99_seconds'] * 1e3:6.2f} ms  "
            f"errors {point['errors']}  "
            f"levels {point['responses_by_level']}"
        )

    # Zero errors on every point — chaos included — is the contract.
    assert all(point["errors"] == 0 for point in points)
    # Chaos really happened: worker 0 lost traffic to reroutes.
    assert chaos["rerouted"] >= 1
    # The hot-key cache absorbed part of the Zipf head and at worst
    # cost 10% throughput (soft floor — single-core CI runners jitter).
    assert hotcache["hotkey_hits"] > 0
    assert (hotcache["throughput_rps"]
            >= 0.9 * pooled["throughput_rps"]), (
        f"hot-key cache slowed the pool: {hotcache['throughput_rps']:.1f} "
        f"vs {pooled['throughput_rps']:.1f} rps"
    )
    speedup = pooled["throughput_rps"] / single["throughput_rps"]
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker pool is only {speedup:.2f}x a single worker "
        f"(floor {MIN_SPEEDUP}x): "
        f"{pooled['throughput_rps']:.1f} vs {single['throughput_rps']:.1f} rps"
    )

    if (requests == DEFAULT_REQUESTS
            and service_seconds == DEFAULT_SERVICE_MS / 1000.0):
        write_bench(
            RESULTS_PATH, points,
            meta={
                "num_users": NUM_USERS,
                "num_items": NUM_ITEMS,
                "min_speedup": MIN_SPEEDUP,
                "slo_p99_seconds": SERVE_SLO.p99_seconds,
                "measured_speedup": round(speedup, 3),
            },
        )
        print(f"recorded: {RESULTS_PATH}")
