"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_dataset_and_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "hetrec-del"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "netflix", "--method", "BPRMF"]
            )

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "hetrec-del", "--method", "SVD++"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "hetrec-del", "--method", "BPRMF"]
        )
        assert args.scale == 0.05
        assert args.epochs == 40
        assert args.fused is False
        assert args.dp_workers == 0
        assert args.dp_backend == "fork"

    def test_rejects_unknown_dp_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "hetrec-del", "--method", "BPRMF",
                 "--dp-backend", "threads"]
            )


class TestCommands:
    def test_list_prints_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "L-IMCAT" in out
        assert "hetrec-del" in out
        assert "w/o UIT" in out

    def test_stats_prints_table(self, capsys):
        assert main(["stats", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "yelp-tag" in out

    def test_run_executes_cell(self, capsys):
        code = main([
            "run", "--dataset", "hetrec-del", "--method", "BPRMF",
            "--scale", "0.04", "--epochs", "2", "--embed-dim", "16",
            "--batch-size", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BPRMF" in out
        assert "R@20" in out

    def test_run_fused_dp_executes_cell(self, capsys):
        code = main([
            "run", "--dataset", "hetrec-del", "--method", "BPRMF",
            "--scale", "0.04", "--epochs", "2", "--embed-dim", "16",
            "--batch-size", "128", "--fused", "--dp-workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BPRMF" in out
        assert "R@20" in out
